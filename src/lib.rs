//! Performability-driven configuration of distributed workflow management
//! systems — the top-level crate of this workspace.
//!
//! Everything lives in [`wfms_core`]; this crate re-exports it so that
//! `use wfms::...` works from the examples and integration tests.
//!
//! See the repository `README.md` for a tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-reproduction results.

#![warn(missing_docs)]

pub use wfms_core::*;
