//! `Deserialize` implementations for std types, the error type, and the
//! helper functions the derive macros expand to.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::value::{Map, Value};
use crate::Deserialize;

/// A deserialization error: what was expected, what was found, and the
/// container path it happened in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
    path: Vec<String>,
}

impl DeError {
    /// A free-form error.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
            path: Vec::new(),
        }
    }

    /// "expected X, found Y" while deserializing `container`.
    pub fn expected(expected: &str, found: &Value, container: &str) -> Self {
        DeError {
            message: format!("expected {expected}, found {}", found.type_name()),
            path: vec![container.to_string()],
        }
    }

    /// A required field was absent.
    pub fn missing(container: &str, field: &str) -> Self {
        DeError {
            message: format!("missing field `{field}`"),
            path: vec![container.to_string()],
        }
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(tag: &str, container: &str) -> Self {
        DeError {
            message: format!("unknown variant `{tag}`"),
            path: vec![container.to_string()],
        }
    }

    /// Wraps the error with the field it occurred in.
    #[must_use]
    pub fn in_field(mut self, container: &str, field: &str) -> Self {
        self.path.insert(0, format!("{container}.{field}"));
        self
    }

    /// Wraps the error with the container it occurred in.
    #[must_use]
    pub fn in_container(mut self, container: &str) -> Self {
        self.path.insert(0, container.to_string());
        self
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.message)
        } else {
            write!(f, "{} (at {})", self.message, self.path.join(" -> "))
        }
    }
}

impl std::error::Error for DeError {}

// -------------------------------------------------------- derive helpers

/// Looks `v` up as an object or fails with a typed error.
///
/// # Errors
/// [`DeError`] when `v` is not an object.
pub fn as_object<'a>(v: &'a Value, container: &str) -> Result<&'a Map, DeError> {
    v.as_object()
        .ok_or_else(|| DeError::expected("object", v, container))
}

/// Looks `v` up as an array of exactly `len` elements.
///
/// # Errors
/// [`DeError`] when `v` is not an array of that length.
pub fn as_array<'a>(v: &'a Value, len: usize, container: &str) -> Result<&'a [Value], DeError> {
    let arr = v
        .as_array()
        .ok_or_else(|| DeError::expected("array", v, container))?;
    if arr.len() != len {
        return Err(DeError::custom(format!(
            "expected array of {len} elements, found {}",
            arr.len()
        ))
        .in_container(container));
    }
    Ok(arr)
}

/// Deserializes one named field, honouring `missing_field` defaults.
///
/// # Errors
/// [`DeError`] on a missing required field or a failing nested value.
pub fn field<T: for<'d> Deserialize<'d>>(
    obj: &Map,
    key: &str,
    container: &str,
) -> Result<T, DeError> {
    match obj.get(key) {
        Some(v) => T::from_value(v).map_err(|e| e.in_field(container, key)),
        None => T::missing_field().ok_or_else(|| DeError::missing(container, key)),
    }
}

/// Deserializes one positional element of a fixed-arity array.
///
/// # Errors
/// [`DeError`] on a failing nested value.
pub fn index<T: for<'d> Deserialize<'d>>(
    arr: &[Value],
    i: usize,
    container: &str,
) -> Result<T, DeError> {
    T::from_value(&arr[i]).map_err(|e| e.in_field(container, &i.to_string()))
}

/// Splits an externally-tagged enum value `{"Tag": payload}` into its tag
/// and payload.
///
/// # Errors
/// [`DeError`] when `v` is not a single-key object.
pub fn variant<'a>(v: &'a Value, container: &str) -> Result<(&'a str, &'a Value), DeError> {
    let obj = v
        .as_object()
        .ok_or_else(|| DeError::expected("string or single-key object", v, container))?;
    if obj.len() != 1 {
        return Err(DeError::custom(format!(
            "expected single-key enum object, found {} keys",
            obj.len()
        ))
        .in_container(container));
    }
    let (tag, payload) = obj.iter().next().expect("len checked above");
    Ok((tag.as_str(), payload))
}

// ---------------------------------------------------------------- impls

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| DeError::expected(
                        concat!("unsigned integer (", stringify!($t), ")"), v, "number"))
            }
        }
    )*};
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| DeError::expected(
                        concat!("integer (", stringify!($t), ")"), v, "number"))
            }
        }
    )*};
}

impl_de_uint!(u8, u16, u32, u64, usize);
impl_de_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // A lenient reader: our writer degrades NaN/Infinity to null.
        if v.is_null() {
            return Ok(f64::NAN);
        }
        v.as_f64()
            .ok_or_else(|| DeError::expected("number", v, "f64"))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::expected("bool", v, "bool"))
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", v, "String"))
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::expected("string", v, "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl<'de, T: for<'d> Deserialize<'d>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }

    fn missing_field() -> Option<Self> {
        Some(None)
    }
}

impl<'de, T: for<'d> Deserialize<'d>> Deserialize<'de> for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<'de, T: for<'d> Deserialize<'d>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::expected("array", v, "Vec"))?;
        arr.iter()
            .enumerate()
            .map(|(i, item)| T::from_value(item).map_err(|e| e.in_field("Vec", &i.to_string())))
            .collect()
    }
}

impl<'de, V: for<'d> Deserialize<'d>> Deserialize<'de> for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v, "map"))?;
        obj.iter()
            .map(|(k, item)| {
                V::from_value(item)
                    .map(|x| (k.clone(), x))
                    .map_err(|e| e.in_field("map", k))
            })
            .collect()
    }
}

impl<'de, V: for<'d> Deserialize<'d>> Deserialize<'de> for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        BTreeMap::<String, V>::from_value(v).map(|m| m.into_iter().collect())
    }
}

impl<'de, A: for<'d> Deserialize<'d>, B: for<'d> Deserialize<'d>> Deserialize<'de> for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = as_array(v, 2, "tuple")?;
        Ok((index(arr, 0, "tuple")?, index(arr, 1, "tuple")?))
    }
}

impl<'de, A, B, C> Deserialize<'de> for (A, B, C)
where
    A: for<'d> Deserialize<'d>,
    B: for<'d> Deserialize<'d>,
    C: for<'d> Deserialize<'d>,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = as_array(v, 3, "tuple")?;
        Ok((
            index(arr, 0, "tuple")?,
            index(arr, 1, "tuple")?,
            index(arr, 2, "tuple")?,
        ))
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
