//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so this workspace vendors
//! a minimal serialization framework under the `serde` name: a JSON value
//! data model ([`Value`]), [`Serialize`]/[`Deserialize`] traits over it,
//! and (behind the `derive` feature) derive macros from the sibling
//! `serde_derive` stand-in. The API intentionally covers exactly what
//! this workspace uses — it is not a drop-in replacement for the real
//! crates beyond that surface.

pub mod de;
pub mod ser;
pub mod value;

pub use de::DeError;
pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` into the JSON data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
///
/// The lifetime parameter exists so that bounds written against the real
/// serde (`for<'de> Deserialize<'de>`) keep compiling; this stand-in
/// never borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from the JSON data model.
    ///
    /// # Errors
    /// [`DeError`] describing the first mismatch, with a container path.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// The value to use when a field of this type is absent from an
    /// object (`None` means "absence is an error"). `Option<T>`
    /// overrides this to default to `None`, matching serde's behaviour.
    #[must_use]
    fn missing_field() -> Option<Self> {
        None
    }
}
