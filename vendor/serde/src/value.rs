//! The JSON data model shared by the vendored `serde` and `serde_json`.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Map),
}

/// A JSON number, kept in the widest lossless representation.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A float.
    F(f64),
}

impl Number {
    /// The number as an `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// The number as a `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) => u64::try_from(i).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            Number::F(_) => None,
        }
    }

    /// The number as an `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            Number::F(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::U(a), Number::U(b)) => a == b,
            (Number::I(a), Number::I(b)) => a == b,
            (Number::F(a), Number::F(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// An insertion-ordered string-keyed map (JSON object).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Inserts (or replaces) a key.
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Builds the externally-tagged enum representation
/// `{"VariantName": payload}` (used by the derive macros).
pub fn tagged(variant: &str, payload: Value) -> Value {
    let mut m = Map::new();
    m.insert(variant.to_string(), payload);
    Value::Object(m)
}

static NULL: Value = Value::Null;

impl Value {
    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a lossless non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is a lossless integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (`None` when not an object / key absent).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// A one-word description of the value's JSON type, for errors.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Like `serde_json`: indexing a non-object or a missing key yields
    /// `Null` rather than panicking.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::ser::to_json_string(self, false))
    }
}
