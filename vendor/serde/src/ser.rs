//! `Serialize` implementations for std types, plus the JSON writer.

use std::collections::{BTreeMap, HashMap};

use crate::value::{Map, Number, Value};
use crate::Serialize;

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
    )*};
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U(v as u64))
                } else {
                    Value::Number(Number::I(v))
                }
            }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(f64::from(*self)))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(&String, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        let mut m = Map::new();
        for (k, v) in pairs {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<A: Serialize> Serialize for (A,) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value()])
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------- writing

/// Renders a value as JSON text; `pretty` uses two-space indentation.
pub fn to_json_string(v: &Value, pretty: bool) -> String {
    let mut out = String::new();
    write_value(&mut out, v, pretty, 0);
    out
}

fn write_value(out: &mut String, v: &Value, pretty: bool, indent: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    newline_indent(out, indent + 1);
                }
                write_value(out, item, pretty, indent + 1);
            }
            if pretty {
                newline_indent(out, indent);
            }
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    newline_indent(out, indent + 1);
                }
                write_string(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, pretty, indent + 1);
            }
            if pretty {
                newline_indent(out, indent);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) if f.is_finite() => {
            // Rust's shortest-round-trip float formatting; force a `.0`
            // so the value re-parses as a float-typed number.
            let s = format!("{f}");
            out.push_str(&s);
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
        // JSON has no NaN/Infinity; degrade to null like a lenient writer.
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
