//! Offline stand-in for `serde_json`.
//!
//! Text ⇄ [`Value`] ⇄ typed conversions over the vendored `serde` data
//! model. Covers the surface this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and [`Value`] inspection.

use std::fmt;

use serde::{DeError, Deserialize, Serialize};

pub use serde::value::{Map, Number};
pub use serde::Value;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    line: usize,
    column: usize,
}

impl Error {
    fn parse(message: impl Into<String>, line: usize, column: usize) -> Self {
        Error {
            message: message.into(),
            line,
            column,
        }
    }

    fn data(e: DeError) -> Self {
        Error {
            message: e.to_string(),
            line: 0,
            column: 0,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} at line {} column {}",
                self.message, self.line, self.column
            )
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
///
/// # Errors
/// Infallible for this stand-in; `Result` kept for API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::ser::to_json_string(&value.to_value(), false))
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
/// Infallible for this stand-in; `Result` kept for API compatibility.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::ser::to_json_string(&value.to_value(), true))
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
/// [`Error`] with line/column on malformed JSON, or a data-model mismatch.
pub fn from_str<'a, T: Deserialize<'a>>(text: &'a str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(Error::data)
}

/// Converts a [`Value`] into any deserializable type.
///
/// # Errors
/// [`Error`] on a data-model mismatch.
pub fn from_value<T: for<'d> Deserialize<'d>>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(Error::data)
}

/// Converts any serializable value into a [`Value`].
///
/// # Errors
/// Infallible for this stand-in; `Result` kept for API compatibility.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> Error {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::parse(message, line, col)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Value::String),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let s = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += s.len();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        // self.pos is at the `u`.
        let hex4 = |p: &Self, at: usize| -> Result<u32, Error> {
            let slice = p
                .bytes
                .get(at..at + 4)
                .ok_or_else(|| p.error("truncated \\u escape"))?;
            let s = std::str::from_utf8(slice).map_err(|_| p.error("invalid \\u escape"))?;
            u32::from_str_radix(s, 16).map_err(|_| p.error("invalid \\u escape"))
        };
        let high = hex4(self, self.pos + 1)?;
        self.pos += 5;
        if (0xD800..0xDC00).contains(&high) {
            // Surrogate pair.
            if self.bytes.get(self.pos) == Some(&b'\\')
                && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                let low = hex4(self, self.pos + 2)?;
                self.pos += 6;
                let cp = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                return char::from_u32(cp).ok_or_else(|| self.error("invalid surrogate pair"));
            }
            return Err(self.error("unpaired surrogate"));
        }
        char::from_u32(high).ok_or_else(|| self.error("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        for text in [
            "null",
            "true",
            "false",
            "42",
            "-17",
            "3.25",
            "1e3",
            "\"hi \\\"there\\\"\"",
            "[1,2,3]",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v: Value = from_str(text).expect(text);
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).expect(&back);
            assert_eq!(v, v2, "{text} -> {back}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{ not json").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Value = from_str("{\"a\":{\"b\":[1,2]},\"c\":\"x\"}").unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let v2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn float_round_trip_is_exact() {
        let xs = [0.1, 1.0 / 3.0, 1236.8765432, f64::MIN_POSITIVE, 1e300];
        for x in xs {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x, back, "{s}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
    }
}
