//! Offline stand-in for `proptest` 1.x.
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range and tuple strategies, [`Just`],
//! [`collection::vec`], [`ProptestConfig`], and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros. Case generation is
//! deterministic per test name (seeded from an FNV hash of the name), so
//! failures reproduce across runs. There is no shrinking: a failing case
//! panics with the case index and assertion message.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

pub use rand::rngs::StdRng as TestRng;
/// Re-exported so the `proptest!` macro can name the generator type.
pub use rand::SeedableRng;

/// A failed property-test assertion, carried out of the case body by the
/// `prop_assert!` family.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a over the test name: a stable per-test seed.
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A generator of random values (no shrinking in this stand-in).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
    {
        FlatMapStrategy { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMapStrategy<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Float ranges: half-open only, like the real crate's common usage.
impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<char> {
    type Value = char;

    fn generate(&self, rng: &mut StdRng) -> char {
        let lo = self.start as u32;
        let hi = self.end as u32;
        char::from_u32(rng.gen_range(lo..hi)).unwrap_or(self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $v:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A / a, B / b)
    (A / a, B / b, C / c)
    (A / a, B / b, C / c, D / d)
    (A / a, B / b, C / c, D / d, E / e)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A `Vec` of values drawn from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..=self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs, mirroring the real prelude.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports an optional leading `#![proptest_config(expr)]` and any number
/// of `fn name(pat in strategy, ...) { body }` items, each carrying its own
/// outer attributes (typically `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Internal: expands each `fn` item inside `proptest!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg_pat:pat_param in $arg_strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = <$crate::TestRng as $crate::SeedableRng>::seed_from_u64(
                $crate::seed_for(stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg_pat = $crate::Strategy::generate(&($arg_strat), &mut rng);)*
                // The immediately-invoked closure gives `$body` its own scope
                // for `?` and early returns.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest `{}` failed at case {case}: {e}", stringify!($name));
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current property-test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Fails the current property-test case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `left == right`\n  left: {l:?}\n right: {r:?}"
            )));
        }
    }};
}

/// Fails the current property-test case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `left != right`\n  both: {l:?}"
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 0.5f64..2.0, n in 3usize..9) {
            prop_assert!((0.5..2.0).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn vec_strategy_obeys_size(v in collection::vec(0.0f64..1.0, 5), w in collection::vec(1u32..9, 2..6)) {
            prop_assert_eq!(v.len(), 5);
            prop_assert!((2..6).contains(&w.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn map_and_tuples_compose((a, b) in (1i64..4, 10i64..14).prop_map(|(a, b)| (b, a))) {
            prop_assert!((10..14).contains(&a));
            prop_assert!((1..4).contains(&b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_cases_is_honoured(_x in 0u32..10) {
            // Body runs; the runner loop length is the config under test.
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        use crate::{SeedableRng, Strategy, TestRng};
        let strat = (2usize..5).prop_flat_map(|n| collection::vec(0.0f64..1.0, n));
        let mut rng = TestRng::seed_from_u64(9);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
