//! Offline stand-in for `criterion` 0.5.
//!
//! Keeps the API this workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! `criterion_group!` / `criterion_main!` macros — but replaces the
//! statistical machinery with a plain wall-clock loop: warm up once, run
//! `sample_size` timed batches, print min/mean per iteration. Good enough
//! to compare solver variants offline; not a substitute for real Criterion
//! when publishing numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-exported for `b.iter(|| black_box(...))`-style benches.
pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const BATCH_ITERS: u64 = 10;

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id, e.g. `lu/k3_y2_27states`.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_id.into()),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    samples: u64,
    /// Mean wall-clock time per iteration over all timed batches.
    elapsed_per_iter: Duration,
    min_per_iter: Duration,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher {
            samples,
            elapsed_per_iter: Duration::ZERO,
            min_per_iter: Duration::MAX,
        }
    }

    /// Times `routine`, discarding its output via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..BATCH_ITERS {
                black_box(routine());
            }
            let batch = start.elapsed() / u32::try_from(BATCH_ITERS).expect("small constant");
            total += batch;
            self.min_per_iter = self.min_per_iter.min(batch);
        }
        self.elapsed_per_iter = total / u32::try_from(self.samples.max(1)).unwrap_or(1);
    }
}

fn run_one(label: &str, samples: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher::new(samples);
    f(&mut b);
    println!(
        "bench {label:<60} mean {:>12?}  min {:>12?}  ({samples} samples)",
        b.elapsed_per_iter, b.min_per_iter
    );
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.samples, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `group_name/id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.samples, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op here; real Criterion emits summaries).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into().id, 10, f);
        self
    }
}

/// Bundles benchmark functions under one name, mirroring real Criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("lu", "k3_y2").id, "lu/k3_y2");
        assert_eq!(BenchmarkId::from_parameter(4).id, "4");
    }

    #[test]
    fn bencher_times_a_routine() {
        let mut b = Bencher::new(2);
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(17));
        });
        assert!(b.elapsed_per_iter >= Duration::ZERO);
        assert!(acc > 0);
    }

    criterion_group!(smoke, smoke_target);

    fn smoke_target(c: &mut Criterion) {
        c.benchmark_group("g")
            .sample_size(1)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        smoke();
    }
}
