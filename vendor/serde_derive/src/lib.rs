//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde`'s `Serialize` / `Deserialize` traits (a
//! JSON-value data model, see `vendor/serde`) for the item shapes this
//! workspace actually uses: non-generic structs (named, tuple, unit) and
//! non-generic enums (unit, tuple, and struct variants, externally
//! tagged). Written against the bare `proc_macro` API because the build
//! environment has no network access to fetch `syn`/`quote`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives `serde::Serialize` (vendored data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_serialize(&name, &shape)
        .parse()
        .expect("serde_derive: generated invalid Rust")
}

/// Derives `serde::Deserialize` (vendored data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_deserialize(&name, &shape)
        .parse()
        .expect("serde_derive: generated invalid Rust")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic type `{name}` is not supported");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match iter.next() {
            None => Shape::UnitStruct,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            other => panic!("serde_derive: unexpected token after struct name: {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    };
    (name, shape)
}

/// Parses `name: Type, ...` field lists; skips attributes and visibility,
/// and skips type tokens (tracking `<`/`>` depth so commas inside generic
/// arguments do not split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes / visibility in front of the field name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&mut iter);
        fields.push(name);
    }
    fields
}

/// Consumes one type (until a top-level `,` or the end of the stream).
fn skip_type(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut angle_depth = 0usize;
    for tt in iter.by_ref() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle_depth = 0usize;
    let mut saw_tokens = false;
    for tt in stream {
        match tt {
            TokenTree::Punct(ref p) if p.as_char() == '<' => {
                angle_depth += 1;
                saw_tokens = true;
            }
            TokenTree::Punct(ref p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(ref p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens = false;
            }
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes (e.g. `#[default]`) in front of the variant.
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '#' {
                iter.next();
                iter.next();
            } else {
                break;
            }
        }
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let k = VariantKind::Tuple(count_tuple_fields(g.stream()));
                iter.next();
                k
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let k = VariantKind::Named(parse_named_fields(g.stream()));
                iter.next();
                k
            }
            _ => VariantKind::Unit,
        };
        // Optional trailing comma.
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::NamedStruct(fields) => {
            let mut s = String::from("let mut __m = ::serde::value::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.insert(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(__m)");
            s
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::value::tagged(\"{vn}\", \
                         ::serde::Serialize::to_value(__f0)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::value::tagged(\"{vn}\", \
                             ::serde::Value::Array(vec![{}])),\n",
                            pats.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let pats = fields.join(", ");
                        let mut inserts = String::new();
                        for f in fields {
                            inserts.push_str(&format!(
                                "__m.insert(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pats} }} => {{ \
                             let mut __m = ::serde::value::Map::new();\n{inserts}\
                             ::serde::value::tagged(\"{vn}\", ::serde::Value::Object(__m)) }},\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)\
             .map_err(|e| e.in_container(\"{name}\"))?))"
        ),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de::index(__arr, {i}, \"{name}\")?"))
                .collect();
            format!(
                "let __arr = ::serde::de::as_array(__v, {n}, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(__obj, \"{f}\", \"{name}\")?,"))
                .collect();
            format!(
                "let __obj = ::serde::de::as_object(__v, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{\n{}\n}})",
                items.join("\n")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(__payload)\
                         .map_err(|e| e.in_container(\"{name}::{vn}\"))?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::de::index(__arr, {i}, \"{name}::{vn}\")?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ \
                             let __arr = ::serde::de::as_array(__payload, {n}, \"{name}::{vn}\")?;\n\
                             ::std::result::Result::Ok({name}::{vn}({})) }},\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::de::field(__obj, \"{f}\", \"{name}::{vn}\")?,"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ \
                             let __obj = ::serde::de::as_object(__payload, \"{name}::{vn}\")?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{}\n}}) }},\n",
                            items.join("\n")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                 }},\n\
                 _ => {{\n\
                 let (__tag, __payload) = ::serde::de::variant(__v, \"{name}\")?;\n\
                 match __tag {{\n\
                 {data_arms}\
                 __other => ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                 }}\n\
                 }}\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
