//! Offline stand-in for the `rayon` data-parallelism crate.
//!
//! Implements exactly the API surface this workspace uses:
//!
//! - [`prelude`] with `par_iter()` / `into_par_iter()` on slices,
//!   vectors, and `Range<usize>`, plus `.map(...).collect()` into
//!   `Vec<R>` or `Result<Vec<T>, E>`;
//! - [`ThreadPoolBuilder`] / [`ThreadPool::install`] with the same
//!   `num_threads(0)`-means-automatic convention as real rayon, and
//!   [`current_num_threads`] honouring `RAYON_NUM_THREADS`.
//!
//! Unlike real rayon (work-stealing deque), this stand-in distributes
//! items to scoped worker threads through a shared queue and then
//! reassembles results **in input order**, so `collect()` is always
//! deterministic. When only one thread is available (or the pool is
//! sized to one), the map runs inline on the calling thread. Collecting
//! into `Result<Vec<T>, E>` evaluates every item and returns the
//! **first** error in input order — a deterministic refinement of
//! rayon's "some error" contract.

use std::cell::Cell;
use std::fmt;
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Thread-count resolution
// ---------------------------------------------------------------------------

thread_local! {
    /// Pool size installed by [`ThreadPool::install`] for the duration
    /// of the closure, mirroring rayon's implicit-pool behaviour.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads parallel operations use on this thread: the
/// installed pool's size if inside [`ThreadPool::install`], else
/// `RAYON_NUM_THREADS` when set to a positive integer, else the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALLED_THREADS.with(Cell::get) {
        return n;
    }
    default_num_threads()
}

fn default_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

// ---------------------------------------------------------------------------
// Thread pool
// ---------------------------------------------------------------------------

/// Error building a [`ThreadPool`]. The stand-in builder cannot
/// actually fail; the type exists for signature parity.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with automatic thread-count selection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool size; `0` selects automatically (environment, then
    /// available parallelism), as in real rayon.
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool. Infallible in the stand-in.
    ///
    /// # Errors
    /// Never fails; the `Result` mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A sized pool. The stand-in keeps no persistent workers: `install`
/// records the size thread-locally and parallel operations spawn scoped
/// threads up to that size.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool's size governing nested parallel
    /// operations on the calling thread.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let previous = INSTALLED_THREADS.with(|c| c.replace(Some(self.threads)));
        // Restore on unwind too, so a panicking closure does not leak
        // the installed size into unrelated work on this thread.
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(previous);
        op()
    }
}

// ---------------------------------------------------------------------------
// Parallel iterators
// ---------------------------------------------------------------------------

/// Order-preserving parallel map over owned items.
fn run_ordered<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n).max(1);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue = Mutex::new(items.into_iter().enumerate());
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let next = queue.lock().expect("queue poisoned").next();
                        match next {
                            Some((idx, item)) => local.push((idx, f(item))),
                            None => break,
                        }
                    }
                    local
                })
            })
            .collect();
        for worker in workers {
            for (idx, value) in worker.join().expect("parallel worker panicked") {
                slots[idx] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index produced"))
        .collect()
}

/// A parallel iterator over owned items (already materialised).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f`; the result preserves input order.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on each item (order of execution unspecified across
    /// threads; all items complete before returning).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let _: Vec<()> = run_ordered(self.items, f);
    }
}

/// The result of [`ParIter::map`], awaiting a `collect`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> ParMap<T, F>
where
    T: Send,
{
    /// Evaluates the map in parallel and collects in input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromParallelIterator<R>,
    {
        C::from_ordered(run_ordered(self.items, self.f))
    }
}

/// Collection from an order-preserving parallel map.
pub trait FromParallelIterator<R> {
    /// Builds the collection from results already in input order.
    fn from_ordered(results: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered(results: Vec<R>) -> Self {
        results
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    /// Returns the first error in **input order**, or all values.
    fn from_ordered(results: Vec<Result<T, E>>) -> Self {
        results.into_iter().collect()
    }
}

/// Conversion into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// The item type produced.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing conversion: `par_iter()` yielding `&T`.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Send + 'a;
    /// A parallel iterator over borrowed items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The traits a caller needs in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_input_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<usize> = pool.install(|| (0..100).into_par_iter().map(|i| i * 2).collect());
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows_items() {
        let items = vec![1.5_f64, 2.5, 3.5];
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let out: Vec<f64> = pool.install(|| items.par_iter().map(|x| x + 1.0).collect());
        assert_eq!(out, vec![2.5, 3.5, 4.5]);
    }

    #[test]
    fn result_collect_returns_first_error_in_order() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let out: Result<Vec<usize>, String> = pool.install(|| {
            (0..10)
                .into_par_iter()
                .map(|i| {
                    if i % 4 == 3 {
                        Err(format!("bad {i}"))
                    } else {
                        Ok(i)
                    }
                })
                .collect()
        });
        assert_eq!(out, Err("bad 3".to_string()));

        let ok: Result<Vec<usize>, String> =
            pool.install(|| (0..5).into_par_iter().map(Ok).collect());
        assert_eq!(ok, Ok(vec![0, 1, 2, 3, 4]));
    }

    #[test]
    fn install_scopes_thread_count_and_restores() {
        let before = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 7);
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caller = std::thread::current().id();
        let ids: Vec<std::thread::ThreadId> = pool.install(|| {
            (0..4)
                .into_par_iter()
                .map(|_| std::thread::current().id())
                .collect()
        });
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn builder_zero_threads_selects_automatically() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }
}
