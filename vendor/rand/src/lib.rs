//! Offline stand-in for `rand` 0.8.
//!
//! Provides the API surface this workspace uses — `Rng::{gen, gen_range,
//! gen_bool}`, `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `seq::SliceRandom::{shuffle, choose}` — backed by xoshiro256++ seeded
//! via splitmix64. Streams are deterministic per seed but *not*
//! bit-compatible with the real crate; all in-repo consumers only rely
//! on determinism and statistical quality, not on exact streams.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly over their whole domain (the stand-in for
/// `rand`'s `Standard` distribution).
pub trait Random: Sized {
    /// Draws one value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for usize {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly (the stand-in for `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        self.start + (self.end - self.start) * f64::random(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty f32 range");
        self.start + (self.end - self.start) * f32::random(rng)
    }
}

/// Unbiased integer sampling in `[0, bound)` via Lemire rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "gen_range: empty integer range");
    loop {
        let x = rng.next_u64();
        let (hi, lo) = {
            let wide = u128::from(x) * u128::from(bound);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= bound.wrapping_neg() % bound {
            return hi;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty integer range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing random-number API (auto-implemented for every
/// [`RngCore`], like the real crate).
pub trait Rng: RngCore {
    /// Draws a value of any [`Random`] type.
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (the subset of the real trait this repo uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-number generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the stand-in for `rand`'s `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; splitmix64 never
            // yields four zeros for any seed, but keep the guard cheap.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and choosing (the subset this repo uses).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes_and_choose_picks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
