//! Cross-crate property tests: invariants that must hold for *randomly
//! generated* workflow specifications and architectures, tying the
//! mapping, performance, availability, and performability layers
//! together.

use proptest::prelude::*;

use wfms::avail::closed_form_unavailability;
use wfms::config::{assess, Goals};
use wfms::markov::TruncationOptions;
use wfms::perf::{
    aggregate_load, analyze_workflow, waiting_times, AnalysisOptions, RequestMethod, WorkloadItem,
};
use wfms::statechart::{
    validate_spec, ActivityKind, ActivitySpec, ChartBuilder, Configuration, EcaRule, ServerType,
    ServerTypeKind, ServerTypeRegistry, WorkflowSpec,
};

/// Standard 3-type registry with tunable service time.
fn registry(service_mean: f64) -> ServerTypeRegistry {
    let mut reg = ServerTypeRegistry::new();
    for (name, kind, mttf) in [
        ("comm", ServerTypeKind::Communication, 43_200.0),
        ("engine", ServerTypeKind::WorkflowEngine, 10_080.0),
        ("app", ServerTypeKind::ApplicationServer, 1_440.0),
    ] {
        reg.register(ServerType::with_exponential_service(
            name,
            kind,
            1.0 / mttf,
            0.1,
            service_mean,
        ))
        .unwrap();
    }
    reg
}

/// Strategy: a random linear-with-branches workflow of 2..5 activities,
/// where each non-final activity either proceeds to the next or exits.
fn random_workflow() -> impl Strategy<Value = WorkflowSpec> {
    let n_activities = 2usize..5;
    n_activities
        .prop_flat_map(|n| {
            let continues = proptest::collection::vec(0.05f64..0.95, n - 1);
            let durations = proptest::collection::vec(0.5f64..30.0, n);
            let loads = proptest::collection::vec(0.5f64..4.0, n * 3);
            (Just(n), continues, durations, loads)
        })
        .prop_map(|(n, continues, durations, loads)| {
            let mut b = ChartBuilder::new("Rand").initial("init");
            for i in 0..n {
                b = b.activity_state(format!("s{i}"), format!("A{i}"));
            }
            b = b
                .final_state("fin")
                .transition("init", "s0", 1.0, EcaRule::default());
            #[allow(clippy::needless_range_loop)] // index mirrors state naming
            for i in 0..n {
                if i + 1 < n {
                    let p = continues[i];
                    b = b
                        .transition(
                            format!("s{i}"),
                            format!("s{}", i + 1),
                            p,
                            EcaRule::default(),
                        )
                        .transition(format!("s{i}"), "fin", 1.0 - p, EcaRule::default());
                } else {
                    b = b.transition(format!("s{i}"), "fin", 1.0, EcaRule::default());
                }
            }
            let chart = b.build().expect("structurally valid");
            let activities = (0..n).map(|i| {
                ActivitySpec::new(
                    format!("A{i}"),
                    ActivityKind::Automated,
                    durations[i],
                    loads[i * 3..(i + 1) * 3].to_vec(),
                )
            });
            WorkflowSpec::new("Rand", chart, activities)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_workflows_validate_and_analyze(spec in random_workflow()) {
        let reg = registry(0.01);
        validate_spec(&spec, &reg).expect("generated specs are valid");
        let a = analyze_workflow(&spec, &reg, &AnalysisOptions::default()).unwrap();
        // Turnaround is at least the first activity's duration and finite.
        prop_assert!(a.mean_turnaround.is_finite());
        prop_assert!(a.mean_turnaround >= spec.activity("A0").unwrap().mean_duration - 1e-9);
        // Requests are non-negative and at least activity A0's contribution.
        for (x, &r) in a.expected_requests.iter().enumerate() {
            prop_assert!(r >= spec.activity("A0").unwrap().load[x] - 1e-9);
        }
    }

    #[test]
    fn uniformized_load_never_exceeds_exact(spec in random_workflow()) {
        let reg = registry(0.01);
        let exact = analyze_workflow(&spec, &reg, &AnalysisOptions::default()).unwrap();
        let truncated = analyze_workflow(
            &spec,
            &reg,
            &AnalysisOptions {
                request_method: RequestMethod::Uniformized(TruncationOptions {
                    quantile: 0.99,
                    hard_cap: 200_000,
                }),
            },
        )
        .unwrap();
        for (e, t) in exact.expected_requests.iter().zip(&truncated.expected_requests) {
            prop_assert!(t <= &(e + 1e-9), "truncated {t} > exact {e}");
            prop_assert!(t >= &(e * 0.8), "99% quantile should capture most load");
        }
    }

    #[test]
    fn waiting_times_are_monotone_in_replicas_and_load(
        spec in random_workflow(),
        xi in 0.05f64..0.5,
    ) {
        let reg = registry(0.05);
        let analysis = analyze_workflow(&spec, &reg, &AnalysisOptions::default()).unwrap();
        let load1 = aggregate_load(
            &[WorkloadItem { analysis: analysis.clone(), arrival_rate: xi }],
            &reg,
        ).unwrap();
        let load2 = aggregate_load(
            &[WorkloadItem { analysis, arrival_rate: xi * 2.0 }],
            &reg,
        ).unwrap();
        let w_1rep = waiting_times(&load1, &reg, &[4, 4, 4]).unwrap();
        let w_2rep = waiting_times(&load1, &reg, &[8, 8, 8]).unwrap();
        let w_heavy = waiting_times(&load2, &reg, &[4, 4, 4]).unwrap();
        for x in 0..3 {
            let base = w_1rep[x].waiting_time().unwrap();
            prop_assert!(w_2rep[x].waiting_time().unwrap() <= base + 1e-12);
            prop_assert!(w_heavy[x].waiting_time().unwrap() >= base - 1e-12);
        }
    }

    #[test]
    fn assessment_availability_matches_closed_form(
        y in proptest::collection::vec(1usize..4, 3),
    ) {
        let reg = registry(0.001);
        let spec = {
            let chart = ChartBuilder::new("T")
                .initial("i")
                .activity_state("a", "A")
                .final_state("f")
                .transition("i", "a", 1.0, EcaRule::default())
                .transition("a", "f", 1.0, EcaRule::default())
                .build()
                .unwrap();
            WorkflowSpec::new(
                "T",
                chart,
                [ActivitySpec::new("A", ActivityKind::Automated, 1.0, vec![1.0; 3])],
            )
        };
        let analysis = analyze_workflow(&spec, &reg, &AnalysisOptions::default()).unwrap();
        let load = aggregate_load(
            &[WorkloadItem { analysis, arrival_rate: 0.1 }],
            &reg,
        ).unwrap();
        let config = Configuration::new(&reg, y).unwrap();
        let goals = Goals::availability_only(0.5).unwrap();
        let a = assess(&reg, &config, &load, &goals).unwrap();
        let closed = 1.0 - closed_form_unavailability(&reg, &config).unwrap();
        prop_assert!((a.availability - closed).abs() < 1e-9,
            "assessment {} vs closed form {closed}", a.availability);
        // Cost bookkeeping.
        prop_assert_eq!(a.cost, config.total_servers());
    }
}
