//! Validation of the availability model against the discrete-event
//! simulator: with failures enabled, the measured system uptime fraction
//! on the EP workload must match the product-form (independent-repair)
//! prediction within the tolerance of the seeded run.

use wfms::avail::closed_form_unavailability;
use wfms::sim::{run, SimOptions};
use wfms::statechart::paper_section52_registry;
use wfms::workloads::ep_workflow;
use wfms::{AvailBackend, Configuration, ConfigurationTool, Goals, SearchOptions};

#[test]
fn simulated_unavailability_matches_product_form_prediction() {
    let reg = paper_section52_registry();
    // The unreplicated configuration has the largest unavailability
    // (≈ 71 h/year, Sec. 5.2), giving the strongest signal per simulated
    // failure episode.
    let config = Configuration::minimal(&reg);
    let spec = ep_workflow();
    // A long horizon with a sparse arrival stream: availability depends
    // only on the failure/repair processes, so the workload is kept tiny
    // to spend the event budget on failure episodes.
    let opts = SimOptions {
        duration_minutes: 500_000.0,
        warmup_minutes: 5_000.0,
        seed: 20_000_806,
        failures_enabled: true,
        ..SimOptions::default()
    };
    let report = run(&reg, &config, &[(&spec, 0.001)], &opts).unwrap();

    let predicted = closed_form_unavailability(&reg, &config).unwrap();
    let measured = 1.0 - report.availability.system_uptime_fraction;

    assert!(
        report.availability.failures > 50,
        "horizon too short to observe failures: {}",
        report.availability.failures
    );
    assert!(report.availability.repairs > 50);
    assert!(
        (measured - predicted).abs() < 0.25 * predicted,
        "measured unavailability {measured} vs product-form {predicted}"
    );

    // The same prediction through the assessment stack's product-form
    // backend: exact agreement with the closed form ties the simulator,
    // the backend, and the formula together.
    let mut tool = ConfigurationTool::new(reg);
    tool.add_workflow(ep_workflow(), 0.001).unwrap();
    let goals = Goals::availability_only(0.5).unwrap();
    let product_opts = SearchOptions::builder()
        .avail_backend(AvailBackend::Product)
        .epsilon(1e-9)
        .build();
    let assessed = tool
        .engine(&goals, product_opts)
        .unwrap()
        .assess(&config)
        .unwrap();
    assert!((assessed.availability - (1.0 - predicted)).abs() < 1e-12);
}
