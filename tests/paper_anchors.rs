//! The paper's explicitly stated numbers, asserted end-to-end through the
//! public facade — the headline reproduction claims of EXPERIMENTS.md.

use wfms::statechart::paper_section52_registry;
use wfms::workloads::{ep_workflow, EP_DEFAULT_ARRIVAL_RATE};
use wfms::{Configuration, ConfigurationTool};

fn downtime_hours_per_year(tool: &ConfigurationTool, replicas: Vec<usize>) -> f64 {
    let config = Configuration::new(tool.registry(), replicas).unwrap();
    tool.availability(&config)
        .unwrap()
        .downtime_minutes_per_year
        / 60.0
}

#[test]
fn section_5_2_downtime_anchors() {
    let tool = ConfigurationTool::new(paper_section52_registry());

    // "an expected downtime of 71 hours per year if there is only one
    // server of each server type"
    let unreplicated = downtime_hours_per_year(&tool, vec![1, 1, 1]);
    assert!((unreplicated - 71.0).abs() < 1.0, "{unreplicated} h/year");

    // "By 3-way replication of each server type, the system downtime can
    // be brought down to 10 seconds per year."
    let three_way_seconds = downtime_hours_per_year(&tool, vec![3, 3, 3]) * 3600.0;
    assert!(
        three_way_seconds > 5.0 && three_way_seconds < 15.0,
        "{three_way_seconds} s/year"
    );

    // "replicating the most unreliable server type three times and having
    // two replicas of each of the other two is already sufficient to bound
    // the unavailability by less than a minute"
    let asymmetric_seconds = downtime_hours_per_year(&tool, vec![2, 2, 3]) * 3600.0;
    assert!(asymmetric_seconds < 60.0, "{asymmetric_seconds} s/year");
}

#[test]
fn figure_4_structure() {
    // "Besides the absorbing state s_A, the CTMC consists of seven further
    // states, each representing the seven states of the workflow's
    // top-level state chart."
    let mut tool = ConfigurationTool::new(paper_section52_registry());
    tool.add_workflow(ep_workflow(), EP_DEFAULT_ARRIVAL_RATE)
        .unwrap();
    let analysis = tool.workflow_analysis("EP").unwrap();
    assert_eq!(analysis.ctmc.n(), 8, "seven execution states plus s_A");
    assert_eq!(analysis.ctmc.absorbing_states(), vec![7]);
    assert_eq!(analysis.ctmc.labels()[7], "s_A");
    // The chain starts in the NewOrder state with probability one.
    assert_eq!(analysis.ctmc.labels()[analysis.start], "NewOrder_S");
}

#[test]
fn figure_1_load_profile() {
    // Fig. 1's request counts: an automated activity induces 3 requests at
    // the workflow engine, 2 at the communication server, and 3 at the
    // application server; an interactive activity involves no application
    // server.
    let spec = ep_workflow();
    let automated = spec.activity("CreditCardCheck").unwrap();
    assert_eq!(automated.load, vec![2.0, 3.0, 3.0]);
    let interactive = spec.activity("NewOrder").unwrap();
    assert_eq!(interactive.load, vec![2.0, 3.0, 0.0]);
}
