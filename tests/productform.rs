//! Acceptance tests for the product-form availability backend and the
//! ε-truncated performability fold, mirroring the assertions of the
//! `exp_e2_productform` benchmark at test scale:
//!
//! * product + ε = 1e-9 must be ≥ 10× faster than the exhaustive path
//!   on a state space with `∏(Y_x + 1) ≥ 10_000`;
//! * every per-type waiting-time delta must lie within the truncation
//!   report's own error bound;
//! * ε = 0 must be bit-identical to the default dense path.

use std::time::Instant;

use wfms::avail::AvailBackend;
use wfms::statechart::Configuration;
use wfms::workloads::{enterprise_mix, enterprise_registry};
use wfms::{AssessmentEngine, ConfigurationTool, Goals, SearchOptions};

fn enterprise_tool() -> (ConfigurationTool, Goals) {
    let mut tool = ConfigurationTool::new(enterprise_registry());
    for (spec, rate) in enterprise_mix() {
        tool.add_workflow(spec, rate).unwrap();
    }
    (tool, Goals::new(0.01, 0.9999).unwrap())
}

#[test]
fn truncated_product_form_is_fast_and_within_its_error_bound() {
    let (tool, goals) = enterprise_tool();
    let replicas = vec![6usize; tool.registry().len()];
    let full_states: usize = replicas.iter().map(|y| y + 1).product();
    assert!(full_states >= 10_000, "scenario too small: {full_states}");
    let config = Configuration::new(tool.registry(), replicas).unwrap();

    let full_engine = tool.engine(&goals, SearchOptions::default()).unwrap();
    let t0 = Instant::now();
    let full = full_engine.assess(&config).unwrap();
    let full_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(
        full.truncation.is_none(),
        "exhaustive path must not truncate"
    );

    let product_engine = tool
        .engine(&goals, SearchOptions::builder().epsilon(1e-9).build())
        .unwrap();
    let t0 = Instant::now();
    let truncated = product_engine.assess(&config).unwrap();
    let product_ms = t0.elapsed().as_secs_f64() * 1e3;

    let report = truncated.truncation.clone().expect("truncation report");
    assert!(report.covered_mass >= 1.0 - 1e-9, "{}", report.covered_mass);
    assert!(
        report.states_skipped > full_states / 2,
        "only {} of {full_states} states skipped",
        report.states_skipped
    );
    assert!(
        (full.availability - truncated.availability).abs() < 1e-9,
        "availability: full {} vs product {}",
        full.availability,
        truncated.availability
    );
    let full_w = full.expected_waiting.as_ref().unwrap();
    let trunc_w = truncated.expected_waiting.as_ref().unwrap();
    for (x, (a, b)) in full_w.iter().zip(trunc_w).enumerate() {
        assert!(
            (a - b).abs() <= report.waiting_error_bounds[x] + 1e-9,
            "type {x}: full {a} vs truncated {b}, bound {}",
            report.waiting_error_bounds[x]
        );
    }
    let speedup = full_ms / product_ms;
    assert!(
        speedup >= 10.0,
        "product path must be >= 10x faster: full {full_ms:.2} ms vs product {product_ms:.2} ms \
         ({}/{full_states} states evaluated)",
        full_states - report.states_skipped
    );
}

#[test]
fn zero_epsilon_is_bit_identical_to_the_default_dense_path() {
    let (tool, goals) = enterprise_tool();
    let config = Configuration::uniform(tool.registry(), 2).unwrap();
    let default_engine = tool.engine(&goals, SearchOptions::default()).unwrap();
    let zero_engine = tool
        .engine(
            &goals,
            SearchOptions::builder()
                .epsilon(0.0)
                .avail_backend(AvailBackend::Auto)
                .build(),
        )
        .unwrap();
    assert_eq!(
        default_engine.assess(&config).unwrap(),
        zero_engine.assess(&config).unwrap()
    );
}

#[test]
fn explicit_product_backend_with_zero_epsilon_covers_every_state() {
    let (tool, goals) = enterprise_tool();
    let config = Configuration::uniform(tool.registry(), 2).unwrap();
    let engine = tool
        .engine(
            &goals,
            SearchOptions::builder()
                .epsilon(0.0)
                .avail_backend(AvailBackend::Product)
                .build(),
        )
        .unwrap();
    let a = engine.assess(&config).unwrap();
    let t = a.truncation.expect("product path reports truncation");
    assert_eq!(t.states_skipped, 0);
    assert_eq!(t.skipped_mass, 0.0);
    assert!(t.waiting_error_bounds.iter().all(|&b| b == 0.0));

    // And the conditional expectations agree with the dense fold to
    // accumulation round-off.
    let dense = tool
        .engine(&goals, SearchOptions::default())
        .unwrap()
        .assess(&config)
        .unwrap();
    let (dw, pw) = (
        dense.expected_waiting.unwrap(),
        a.expected_waiting.clone().unwrap(),
    );
    for (a, b) in dw.iter().zip(&pw) {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }
}

#[test]
fn greedy_search_accepts_truncated_evaluation() {
    // An adaptive ε in the greedy search is future work (see ROADMAP);
    // today a fixed tight ε must at least recommend the same winner.
    let (tool, goals) = enterprise_tool();
    let exact = tool.recommend(&goals, &SearchOptions::default()).unwrap();
    let truncated = tool
        .recommend(&goals, &SearchOptions::builder().epsilon(1e-9).build())
        .unwrap();
    assert_eq!(exact.replicas(), truncated.replicas());
    assert_eq!(exact.cost(), truncated.cost());
}

#[test]
fn engine_module_has_a_test_for_the_engine_level_contract() {
    // The engine-level contracts (cache keying by backend, InvalidOption
    // rejection, sparse/dense agreement) live in `wfms-config`'s unit
    // tests; this test pins the public surface needed to write them.
    let opts = SearchOptions::builder()
        .epsilon(1e-6)
        .avail_backend(AvailBackend::Sparse)
        .build();
    assert_eq!(opts.epsilon, 1e-6);
    assert_eq!(opts.avail_backend, AvailBackend::Sparse);
    assert_eq!(
        "product".parse::<AvailBackend>().unwrap(),
        AvailBackend::Product
    );
    assert!("quantum".parse::<AvailBackend>().is_err());
    let (tool, goals) = enterprise_tool();
    let bad = SearchOptions::builder().epsilon(1.0).build();
    assert!(matches!(
        AssessmentEngine::new(tool.registry(), &tool.system_load().unwrap(), &goals, bad),
        Err(wfms::ConfigError::InvalidOption { .. })
    ));
}
