//! Property tests for the static diagnostics engine: a system that lints
//! clean must be solvable by the full assessment pipeline without panics
//! or errors, and a perturbed (invalid) spec must be caught by the lint
//! rather than surfacing as a deep model failure.

use proptest::prelude::*;

use wfms::analysis::{analyze, GoalTargets, SystemUnderAnalysis};
use wfms::config::{assess, Goals};
use wfms::perf::{aggregate_load, analyze_workflow, AnalysisOptions, WorkloadItem};
use wfms::statechart::{
    ActivityKind, ActivitySpec, ChartBuilder, Configuration, EcaRule, ServerType, ServerTypeKind,
    ServerTypeRegistry, WorkflowSpec,
};

fn registry(service_mean: f64) -> ServerTypeRegistry {
    let mut reg = ServerTypeRegistry::new();
    for (name, kind, mttf) in [
        ("comm", ServerTypeKind::Communication, 43_200.0),
        ("engine", ServerTypeKind::WorkflowEngine, 10_080.0),
        ("app", ServerTypeKind::ApplicationServer, 1_440.0),
    ] {
        reg.register(ServerType::with_exponential_service(
            name,
            kind,
            1.0 / mttf,
            0.1,
            service_mean,
        ))
        .unwrap();
    }
    reg
}

/// A random linear-with-branches workflow of 2..5 activities; `scale`
/// multiplies every branch probability, so `scale == 1.0` yields a valid
/// spec and any other value breaks the probability sums (W007).
fn random_workflow(scale: f64) -> impl Strategy<Value = WorkflowSpec> {
    let n_activities = 2usize..5;
    n_activities
        .prop_flat_map(|n| {
            let continues = proptest::collection::vec(0.05f64..0.95, n - 1);
            let durations = proptest::collection::vec(0.5f64..30.0, n);
            let loads = proptest::collection::vec(0.5f64..4.0, n * 3);
            (Just(n), continues, durations, loads)
        })
        .prop_map(move |(n, continues, durations, loads)| {
            let mut b = ChartBuilder::new("Rand").initial("init");
            for i in 0..n {
                b = b.activity_state(format!("s{i}"), format!("A{i}"));
            }
            b = b
                .final_state("fin")
                .transition("init", "s0", 1.0, EcaRule::default());
            #[allow(clippy::needless_range_loop)] // index mirrors state naming
            for i in 0..n {
                if i + 1 < n {
                    let p = continues[i] * scale;
                    b = b
                        .transition(
                            format!("s{i}"),
                            format!("s{}", i + 1),
                            p,
                            EcaRule::default(),
                        )
                        .transition(
                            format!("s{i}"),
                            "fin",
                            (1.0 - continues[i]) * scale,
                            EcaRule::default(),
                        );
                } else {
                    b = b.transition(format!("s{i}"), "fin", scale, EcaRule::default());
                }
            }
            let chart = b.build().expect("structurally valid");
            let activities = (0..n).map(|i| {
                ActivitySpec::new(
                    format!("A{i}"),
                    ActivityKind::Automated,
                    durations[i],
                    loads[i * 3..(i + 1) * 3].to_vec(),
                )
            });
            WorkflowSpec::new("Rand", chart, activities)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The central contract of the engine: a lint-clean system is
    /// solvable end to end — workflow analysis, load aggregation, and
    /// goal assessment all succeed without panicking.
    #[test]
    fn lint_clean_systems_assess_without_panic(
        spec in random_workflow(1.0),
        rate in 0.01f64..2.0,
        reps in proptest::collection::vec(1usize..4, 3),
    ) {
        let reg = registry(0.01);
        let workload = vec![(spec, rate)];
        let goal_targets =
            GoalTargets { max_waiting_time: Some(1.0), min_availability: Some(0.99) };
        let sys = SystemUnderAnalysis {
            registry: &reg,
            workload: &workload,
            replicas: Some(&reps),
            goals: Some(&goal_targets),
            max_total_servers: Some(64),
        };
        let findings = analyze(&sys);
        if !findings.has_errors() {
            let items: Vec<WorkloadItem> = workload
                .iter()
                .map(|(s, r)| WorkloadItem {
                    analysis: analyze_workflow(s, &reg, &AnalysisOptions::default())
                        .expect("lint-clean spec analyzes"),
                    arrival_rate: *r,
                })
                .collect();
            let load = aggregate_load(&items, &reg).expect("lint-clean load aggregates");
            let config = Configuration::new(&reg, reps.clone()).unwrap();
            let goals = Goals::new(1.0, 0.99).unwrap();
            let a = assess(&reg, &config, &load, &goals).expect("lint-clean system assesses");
            prop_assert!(a.availability > 0.0 && a.availability <= 1.0);
        }
    }

    /// Broken probability sums never slip past the lint: the engine
    /// reports W007 instead of letting the CTMC construction fail deep
    /// inside the performance model.
    #[test]
    fn perturbed_probabilities_are_always_caught(
        spec in random_workflow(0.5),
        rate in 0.01f64..2.0,
    ) {
        let reg = registry(0.01);
        let workload = vec![(spec, rate)];
        let sys = SystemUnderAnalysis {
            registry: &reg,
            workload: &workload,
            replicas: None,
            goals: None,
            max_total_servers: None,
        };
        let findings = analyze(&sys);
        prop_assert!(findings.has_errors(), "{findings}");
        prop_assert!(
            findings.distinct_codes().iter().any(|c| c == "W007"),
            "{findings}"
        );
    }
}
