//! Fault-injection acceptance tests for the graceful-degradation layer:
//! forced solver failures must escalate down the fallback ladder, failed
//! state evaluations must be charged pessimistically, irrecoverable
//! candidates must be quarantined rather than aborting a search, and a
//! disabled registry must leave every result bit-identical.
//!
//! The failpoint registry is process-global, so every test serializes on
//! [`FAULTS`] and clears the registry on entry and exit.

use std::sync::Mutex;
use std::time::Duration;

use wfms::fault;
use wfms::statechart::paper_section52_registry;
use wfms::workloads::{enterprise_mix, enterprise_registry, ep_workflow, EP_DEFAULT_ARRIVAL_RATE};
use wfms::{AvailBackend, ConfigError, Configuration, ConfigurationTool, Goals, SearchOptions};

static FAULTS: Mutex<()> = Mutex::new(());

/// Serializes a test against the global failpoint registry and leaves the
/// registry clean for whoever runs next, even on panic.
struct FaultGuard<'a> {
    _lock: std::sync::MutexGuard<'a, ()>,
}

impl Drop for FaultGuard<'_> {
    fn drop(&mut self) {
        fault::clear();
    }
}

fn faults() -> FaultGuard<'static> {
    let lock = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear();
    fault::set_seed(42);
    FaultGuard { _lock: lock }
}

fn ep_tool() -> ConfigurationTool {
    let mut tool = ConfigurationTool::new(paper_section52_registry());
    tool.add_workflow(ep_workflow(), EP_DEFAULT_ARRIVAL_RATE)
        .unwrap();
    tool
}

fn enterprise_tool() -> ConfigurationTool {
    let mut tool = ConfigurationTool::new(enterprise_registry());
    for (spec, rate) in enterprise_mix() {
        tool.add_workflow(spec, rate).unwrap();
    }
    tool
}

/// The headline acceptance criterion: with the sparse Gauss–Seidel site
/// failing at a 100 % rate, a greedy search over the enterprise workload
/// still completes — every solve escalates to dense LU — and returns the
/// same winner as the clean sparse run, with the degradation reported.
#[test]
fn forced_gs_failure_still_recommends_the_same_enterprise_winner() {
    let _g = faults();
    let tool = enterprise_tool();
    let goals = Goals::new(0.01, 0.9999).unwrap();
    let opts = SearchOptions::builder()
        .avail_backend(AvailBackend::Sparse)
        .max_total_servers(64)
        .build();

    let clean = tool.engine(&goals, opts).unwrap().greedy().unwrap();
    assert!(clean.assessment.degradation.is_none(), "clean run degraded");

    fault::configure("linalg.sparse-gs", fault::FaultMode::Error, 1.0);
    let degraded = tool.engine(&goals, opts).unwrap().greedy().unwrap();

    assert!(
        fault::fired("linalg.sparse-gs") > 0,
        "failpoint never fired"
    );
    assert_eq!(
        degraded.assessment.replicas, clean.assessment.replicas,
        "dense fallback must find the same winner"
    );
    assert!(degraded.quarantined.is_empty());
    let report = degraded
        .assessment
        .degradation
        .expect("solver fallback must be reported");
    assert!(report.solver_fallbacks >= 1);
    assert_eq!(report.failed_states, 0);
}

/// Per-state kernel failures are charged at their pessimistic caps: the
/// assessment completes, reports every failed state, and the charged mass
/// covers the whole distribution when every state fails.
#[test]
fn failed_state_evaluations_are_charged_with_pessimistic_caps() {
    let _g = faults();
    let tool = ep_tool();
    let goals = Goals::new(0.05, 0.9999).unwrap();
    let config = Configuration::new(tool.registry(), vec![2, 2, 2]).unwrap();

    let clean = tool
        .engine(&goals, SearchOptions::default())
        .unwrap()
        .assess(&config)
        .unwrap();

    fault::configure(
        "performability.evaluate-state",
        fault::FaultMode::Error,
        1.0,
    );
    let degraded = tool
        .engine(&goals, SearchOptions::default())
        .unwrap()
        .assess(&config)
        .unwrap();

    let report = degraded
        .degradation
        .clone()
        .expect("failed states must be reported");
    assert_eq!(report.failed_states, 27, "every state of [2,2,2] fails");
    assert!((report.charged_mass - 1.0).abs() < 1e-9);
    assert_eq!(report.solver_fallbacks, 0);
    assert!(!report.details.is_empty());
    assert!(report.details.iter().all(|r| !r.error.is_empty()));
    // Availability comes from the (unaffected) chain solve.
    assert_eq!(degraded.availability, clean.availability);
    // The substituted caps are pessimistic: waits can only grow.
    let (d, c) = (
        degraded.expected_waiting.as_ref().unwrap(),
        clean.expected_waiting.as_ref().unwrap(),
    );
    for (x, (dw, cw)) in d.iter().zip(c).enumerate() {
        assert!(dw >= cw, "type {x}: degraded wait {dw} below clean {cw}");
    }
}

/// Candidates whose assessment fails irrecoverably are quarantined and the
/// search keeps going: with the solution-cache fill failing at 100 %, only
/// the pre-warmed winner survives — every earlier candidate lands in the
/// quarantine list instead of aborting the exhaustive search.
#[test]
fn irrecoverable_candidates_are_quarantined_not_fatal() {
    let _g = faults();
    let tool = ep_tool();
    let goals = Goals::new(0.05, 0.9999).unwrap();

    let clean = tool
        .engine(&goals, SearchOptions::default())
        .unwrap()
        .exhaustive()
        .unwrap();

    // Pre-warm one engine with the winner, then poison every further
    // solution-cache fill: the winner replays from the cache, everything
    // else is quarantined.
    let engine = tool.engine(&goals, SearchOptions::default()).unwrap();
    let winner = Configuration::new(tool.registry(), clean.assessment.replicas.clone()).unwrap();
    engine.assess(&winner).unwrap();
    fault::configure("engine.solution-cache-fill", fault::FaultMode::Error, 1.0);

    let survived = engine.exhaustive().unwrap();
    assert_eq!(survived.assessment, clean.assessment);
    assert_eq!(survived.evaluations, 1, "only the cached winner evaluates");
    assert_eq!(survived.quarantined.len(), clean.evaluations - 1);
    assert!(survived
        .quarantined
        .iter()
        .all(|q| !q.error.is_empty() && !q.replicas.is_empty()));
}

/// `strict` restores fail-fast: the first injected failure aborts the
/// search with the underlying error instead of degrading or quarantining.
#[test]
fn strict_mode_aborts_on_the_first_injected_failure() {
    let _g = faults();
    let tool = ep_tool();
    let goals = Goals::new(0.05, 0.9999).unwrap();
    fault::configure(
        "performability.evaluate-state",
        fault::FaultMode::Error,
        1.0,
    );
    let opts = SearchOptions::builder().strict(true).build();
    let err = tool.engine(&goals, opts).unwrap().greedy().unwrap_err();
    assert!(
        matches!(err, ConfigError::Performability(_)),
        "expected the injected performability error, got {err:?}"
    );
}

/// NaN injection is repaired by the non-finite guard: the poisoned
/// candidate is rejected as `NonFiniteAssessment`, which searches treat
/// as candidate-local.
#[test]
fn nan_injection_is_caught_by_the_non_finite_guard() {
    let _g = faults();
    let tool = ep_tool();
    let goals = Goals::new(0.05, 0.9999).unwrap();
    let config = Configuration::new(tool.registry(), vec![2, 2, 2]).unwrap();
    fault::configure("avail.steady-state", fault::FaultMode::Nan, 1.0);
    let err = tool
        .engine(&goals, SearchOptions::default())
        .unwrap()
        .assess(&config)
        .unwrap_err();
    match &err {
        ConfigError::NonFiniteAssessment { replicas, .. } => {
            assert_eq!(replicas, &vec![2, 2, 2]);
        }
        other => panic!("expected NonFiniteAssessment, got {other:?}"),
    }
    assert!(err.is_candidate_local());
}

/// Delay injection only adds latency: results are bit-identical to a
/// clean run, and a disabled registry (sites configured, master switch
/// off) costs one atomic load and changes nothing.
#[test]
fn delay_and_disabled_faults_leave_results_bit_identical() {
    let _g = faults();
    let tool = ep_tool();
    let goals = Goals::new(0.05, 0.9999).unwrap();
    let config = Configuration::new(tool.registry(), vec![2, 2, 2]).unwrap();
    let baseline = tool
        .engine(&goals, SearchOptions::default())
        .unwrap()
        .assess(&config)
        .unwrap();

    fault::configure(
        "avail.steady-state",
        fault::FaultMode::Delay(Duration::from_millis(1)),
        1.0,
    );
    let delayed = tool
        .engine(&goals, SearchOptions::default())
        .unwrap()
        .assess(&config)
        .unwrap();
    assert!(fault::fired("avail.steady-state") > 0);
    assert_eq!(delayed, baseline);

    // Error faults everywhere, but the registry is disabled: nothing may
    // fire and every number must be untouched.
    for site in [
        "linalg.dense-lu",
        "avail.steady-state",
        "performability.evaluate-state",
        "performability.fold",
        "engine.state-cache-fill",
        "engine.solution-cache-fill",
    ] {
        fault::configure(site, fault::FaultMode::Error, 1.0);
    }
    fault::disable();
    let disabled = tool
        .engine(&goals, SearchOptions::default())
        .unwrap()
        .assess(&config)
        .unwrap();
    assert_eq!(disabled, baseline);
    assert_eq!(fault::fired("linalg.dense-lu"), 0);
}
