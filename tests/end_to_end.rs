//! Cross-crate integration tests: the full pipeline from specification
//! to recommendation, exercised through the `wfms` facade.

use wfms::config::{ApplyOptions, StateVisit, WorkflowTrace};
use wfms::statechart::paper_section52_registry;
use wfms::workloads::{enterprise_mix, enterprise_registry, ep_workflow, EP_DEFAULT_ARRIVAL_RATE};
use wfms::{Configuration, ConfigurationTool, DegradedPolicy, Goals, SearchOptions};

#[test]
fn ep_pipeline_from_spec_to_recommendation() {
    let mut tool = ConfigurationTool::new(paper_section52_registry());
    tool.add_workflow(ep_workflow(), EP_DEFAULT_ARRIVAL_RATE)
        .unwrap();

    // Analysis: turnaround dominated by the invoice-payment wait.
    let analysis = tool.workflow_analysis("EP").unwrap();
    assert!(analysis.mean_turnaround > 1_000.0 && analysis.mean_turnaround < 2_000.0);
    // The engine sees the most requests (it participates in every activity).
    assert!(analysis.expected_requests[1] > analysis.expected_requests[0]);
    assert!(analysis.expected_requests[1] > analysis.expected_requests[2]);

    // Recommendation meets both goals at minimum cost.
    let goals = Goals::new(0.05, 0.9999).unwrap();
    let rec = tool.recommend(&goals, &SearchOptions::default()).unwrap();
    assert!(rec.assessment.meets_goals());
    let optimal = tool
        .recommend_optimal(&goals, &SearchOptions::default())
        .unwrap();
    assert_eq!(
        rec.cost(),
        optimal.cost(),
        "greedy is optimal on the EP scenario"
    );

    // One fewer server of any type must violate a goal (minimality).
    let replicas = rec.replicas().to_vec();
    for x in 0..replicas.len() {
        if replicas[x] == 1 {
            continue;
        }
        let mut smaller = replicas.clone();
        smaller[x] -= 1;
        let config = Configuration::new(tool.registry(), smaller).unwrap();
        let a = tool.assess(&config, &goals).unwrap();
        assert!(
            !a.meets_goals(),
            "removing a type-{x} replica should break a goal"
        );
    }
}

#[test]
fn enterprise_pipeline_handles_five_types_and_three_workflows() {
    let mut tool = ConfigurationTool::new(enterprise_registry());
    for (spec, rate) in enterprise_mix() {
        tool.add_workflow(spec, rate).unwrap();
    }
    let load = tool.system_load().unwrap();
    assert_eq!(load.request_rates.len(), 5);
    assert!(load.request_rates.iter().all(|&r| r > 0.0));

    let goals = Goals::new(0.05, 0.9999).unwrap();
    let rec = tool.recommend(&goals, &SearchOptions::default()).unwrap();
    assert!(rec.assessment.meets_goals());
    // The ERP app server carries the most demand per replica; it must be
    // replicated at least as much as the idle CRM server.
    let y = rec.replicas();
    assert!(y[4] >= y[3], "ERP {} vs CRM {}", y[4], y[3]);
}

#[test]
fn performability_is_consistent_with_assessment() {
    let mut tool = ConfigurationTool::new(paper_section52_registry());
    tool.add_workflow(ep_workflow(), EP_DEFAULT_ARRIVAL_RATE)
        .unwrap();
    let config = Configuration::uniform(tool.registry(), 2).unwrap();
    let report = tool
        .performability(&config, DegradedPolicy::Conditional)
        .unwrap();
    let goals = Goals::new(10.0, 0.5).unwrap(); // trivially met
    let assessment = tool.assess(&config, &goals).unwrap();
    // The assessment embeds the same performability numbers.
    let w = assessment.max_expected_waiting.unwrap();
    assert!((w - report.max_expected_waiting()).abs() < 1e-12);
    // And the availability figures agree with the availability-only path.
    let avail = tool.availability(&config).unwrap();
    assert!((assessment.availability - avail.availability).abs() < 1e-12);
}

#[test]
fn calibration_round_trip_through_the_facade() {
    let mut tool = ConfigurationTool::new(paper_section52_registry());
    tool.add_workflow(ep_workflow(), EP_DEFAULT_ARRIVAL_RATE)
        .unwrap();
    let before = tool.workflow_analysis("EP").unwrap().mean_turnaround;

    // Hand-written trails: every order pays by card and ships instantly —
    // shifting NewOrder's branch away from the designer's 0.75.
    let trace = WorkflowTrace {
        workflow_type: "EP".into(),
        visits: vec![
            StateVisit {
                state: "NewOrder_S".into(),
                duration_minutes: 5.0,
            },
            StateVisit {
                state: "CreditCardCheck_S".into(),
                duration_minutes: 1.0,
            },
            StateVisit {
                state: "Shipment_S".into(),
                duration_minutes: 30.0,
            },
            StateVisit {
                state: "CreditCardPayment_S".into(),
                duration_minutes: 1.0,
            },
            StateVisit {
                state: "Archive_S".into(),
                duration_minutes: 0.5,
            },
        ],
    };
    let traces = vec![trace; 100];
    let report = tool
        .calibrate_workflow("EP", &traces, &ApplyOptions::default())
        .unwrap();
    assert!(report.transitions_updated > 0);
    let after = tool.workflow_analysis("EP").unwrap().mean_turnaround;
    // All-card traffic never waits on invoices: turnaround collapses.
    assert!(after < before / 10.0, "before {before}, after {after}");
}

#[test]
fn arrival_rate_growth_never_cheapens_the_recommendation() {
    let mut tool = ConfigurationTool::new(paper_section52_registry());
    tool.add_workflow(ep_workflow(), 1.0).unwrap();
    let goals = Goals::new(0.05, 0.9999).unwrap();
    let opts = SearchOptions::builder().max_total_servers(128).build();
    let mut last_cost = 0;
    for xi in [1.0, 10.0, 40.0, 80.0, 160.0] {
        tool.set_arrival_rate("EP", xi);
        let rec = tool.recommend(&goals, &opts).unwrap();
        assert!(
            rec.cost() >= last_cost,
            "ξ={xi}: cost {} < previous {last_cost}",
            rec.cost()
        );
        last_cost = rec.cost();
    }
    assert!(last_cost > 6, "high load must eventually force growth");
}

#[test]
fn stricter_goals_cost_at_least_as_much() {
    let mut tool = ConfigurationTool::new(paper_section52_registry());
    tool.add_workflow(ep_workflow(), EP_DEFAULT_ARRIVAL_RATE * 3.0)
        .unwrap();
    let opts = SearchOptions::default();
    let mut last_cost = 0;
    for nines in [0.99, 0.999, 0.9999, 0.99999, 0.999999] {
        let goals = Goals::new(0.05, nines).unwrap();
        let rec = tool.recommend(&goals, &opts).unwrap();
        assert!(
            rec.cost() >= last_cost,
            "availability {nines}: cost {} < previous {last_cost}",
            rec.cost()
        );
        last_cost = rec.cost();
    }
}
