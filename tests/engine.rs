//! Integration tests for the assessment engine's determinism contract:
//! every search result must be bit-identical to the serial free-function
//! path for any `jobs` value, on both example workloads.

use wfms::config::{branch_and_bound_search, exhaustive_search, greedy_search};
use wfms::statechart::paper_section52_registry;
use wfms::workloads::{enterprise_mix, enterprise_registry, ep_workflow, EP_DEFAULT_ARRIVAL_RATE};
use wfms::{ConfigurationTool, Goals, SearchOptions};

/// The two example workloads as ready-to-search tools.
fn scenarios() -> Vec<(&'static str, ConfigurationTool, Goals)> {
    let mut ep = ConfigurationTool::new(paper_section52_registry());
    ep.add_workflow(ep_workflow(), EP_DEFAULT_ARRIVAL_RATE)
        .unwrap();
    let mut enterprise = ConfigurationTool::new(enterprise_registry());
    for (spec, rate) in enterprise_mix() {
        enterprise.add_workflow(spec, rate).unwrap();
    }
    vec![
        ("ep", ep, Goals::new(0.05, 0.9999).unwrap()),
        ("enterprise", enterprise, Goals::new(0.01, 0.9999).unwrap()),
    ]
}

fn options(jobs: usize) -> SearchOptions {
    SearchOptions::builder()
        .max_total_servers(64)
        .jobs(jobs)
        .build()
}

#[test]
fn parallel_searches_are_bit_identical_to_serial() {
    for (name, tool, goals) in scenarios() {
        let serial = tool.engine(&goals, options(1)).unwrap();
        let parallel = tool.engine(&goals, options(8)).unwrap();
        for (method, a, b) in [
            (
                "greedy",
                serial.greedy().unwrap(),
                parallel.greedy().unwrap(),
            ),
            (
                "exhaustive",
                serial.exhaustive().unwrap(),
                parallel.exhaustive().unwrap(),
            ),
            (
                "branch-and-bound",
                serial.branch_and_bound().unwrap(),
                parallel.branch_and_bound().unwrap(),
            ),
        ] {
            assert_eq!(
                a.assessment, b.assessment,
                "{name}/{method}: winner diverges between jobs=1 and jobs=8"
            );
            assert_eq!(
                a.trace, b.trace,
                "{name}/{method}: trace diverges between jobs=1 and jobs=8"
            );
            assert_eq!(
                a.evaluations, b.evaluations,
                "{name}/{method}: evaluation count diverges"
            );
        }
    }
}

#[test]
fn engine_searches_match_deprecated_free_functions() {
    for (name, tool, goals) in scenarios() {
        let registry = tool.registry().clone();
        let load = tool.system_load().unwrap();
        let opts = options(1);
        let engine = tool.engine(&goals, opts).unwrap();
        let free_greedy = greedy_search(&registry, &load, &goals, &opts).unwrap();
        assert_eq!(
            engine.greedy().unwrap().assessment,
            free_greedy.assessment,
            "{name}: engine greedy diverges from free function"
        );
        let free_bnb = branch_and_bound_search(&registry, &load, &goals, &opts).unwrap();
        assert_eq!(
            engine.branch_and_bound().unwrap().assessment,
            free_bnb.assessment,
            "{name}: engine B&B diverges from free function"
        );
        if name == "ep" {
            let free_opt = exhaustive_search(&registry, &load, &goals, &opts).unwrap();
            assert_eq!(
                engine.exhaustive().unwrap().assessment,
                free_opt.assessment,
                "{name}: engine exhaustive diverges from free function"
            );
        }
    }
}

#[test]
fn warm_engine_replays_searches_from_its_caches() {
    let (_, tool, goals) = scenarios().remove(0);
    let engine = tool.engine(&goals, options(2)).unwrap();
    let cold = engine.greedy().unwrap();
    let after_cold = engine.cache_stats();
    assert!(after_cold.misses > 0, "cold run must populate the caches");
    let warm = engine.greedy().unwrap();
    let after_warm = engine.cache_stats();
    assert_eq!(cold.assessment, warm.assessment);
    assert_eq!(cold.trace, warm.trace);
    assert_eq!(
        after_cold.misses, after_warm.misses,
        "warm greedy must not compute anything new"
    );
    assert!(after_warm.hits > after_cold.hits);
}
