//! System-level performance: load aggregation over the workload mix,
//! maximum sustainable throughput, and per-server waiting times
//! (stages 3 and 4 of Sec. 4).

use serde::{Deserialize, Serialize};

use wfms_queueing::{merge_streams, Mg1, ServiceMoments, Stream};
use wfms_statechart::{Configuration, ServerTypeId, ServerTypeRegistry};

use crate::error::PerfError;
use crate::workflow::WorkflowAnalysis;

/// One workflow type in the system's workload mix: its analysis plus the
/// user-initiated arrival rate `ξ_t` (instances per minute).
#[derive(Debug, Clone)]
pub struct WorkloadItem {
    /// Per-type analysis (turnaround, expected requests).
    pub analysis: WorkflowAnalysis,
    /// Arrival rate `ξ_t` of new instances, per minute.
    pub arrival_rate: f64,
}

/// Aggregated load of the whole workload mix (Sec. 4.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemLoad {
    /// Request arrival rate `l_x = Σ_t ξ_t · r_{x,t}` per server type.
    pub request_rates: Vec<f64>,
    /// Total workflow arrival rate `Σ_t ξ_t` (instances per minute).
    pub total_arrival_rate: f64,
    /// Mean number of concurrently active instances per workflow type
    /// (`N_active = ξ_t · R_t`, Little's law), keyed by type name.
    pub active_instances: Vec<(String, f64)>,
}

/// Aggregates the load of all workflow types over all server types.
///
/// # Errors
/// * [`PerfError::EmptyWorkload`] for an empty mix.
/// * [`PerfError::InvalidArrivalRate`] for negative/non-finite rates.
/// * [`PerfError::LengthMismatch`] when an analysis does not match the
///   registry's server-type count.
pub fn aggregate_load(
    mix: &[WorkloadItem],
    registry: &ServerTypeRegistry,
) -> Result<SystemLoad, PerfError> {
    if mix.is_empty() {
        return Err(PerfError::EmptyWorkload);
    }
    let k = registry.len();
    let mut request_rates = vec![0.0; k];
    let mut total_arrival_rate = 0.0;
    let mut active_instances = Vec::with_capacity(mix.len());
    for item in mix {
        if !(item.arrival_rate.is_finite() && item.arrival_rate >= 0.0) {
            return Err(PerfError::InvalidArrivalRate {
                workflow: item.analysis.name.clone(),
                rate: item.arrival_rate,
            });
        }
        if item.analysis.expected_requests.len() != k {
            return Err(PerfError::LengthMismatch {
                what: "expected request vector",
                expected: k,
                actual: item.analysis.expected_requests.len(),
            });
        }
        total_arrival_rate += item.arrival_rate;
        for (x, rate) in request_rates.iter_mut().enumerate() {
            *rate += item.arrival_rate * item.analysis.expected_requests[x];
        }
        active_instances.push((
            item.analysis.name.clone(),
            item.arrival_rate * item.analysis.mean_turnaround,
        ));
    }
    Ok(SystemLoad {
        request_rates,
        total_arrival_rate,
        active_instances,
    })
}

/// Waiting-time outcome for one server type under a given system state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WaitingOutcome {
    /// The type's replicas sustain the load; the mean waiting time per
    /// request is reported alongside the per-replica utilization.
    Stable {
        /// Mean waiting time `w_x` in minutes.
        waiting_time: f64,
        /// Per-replica utilization `ρ_x`.
        utilization: f64,
    },
    /// The type is saturated (`ρ ≥ 1`): waiting time diverges.
    Saturated {
        /// The offered per-replica utilization.
        utilization: f64,
    },
    /// No replica of the type is running — the WFMS is down.
    Down,
}

impl WaitingOutcome {
    /// The finite waiting time, if the type is stable.
    pub fn waiting_time(&self) -> Option<f64> {
        match self {
            WaitingOutcome::Stable { waiting_time, .. } => Some(*waiting_time),
            _ => None,
        }
    }

    /// True when stable *and* the waiting time is within `threshold`.
    pub fn meets(&self, threshold: f64) -> bool {
        matches!(self, WaitingOutcome::Stable { waiting_time, .. } if *waiting_time <= threshold)
    }
}

/// Mean waiting time of service requests per server type, for a given
/// replica vector (a configuration `Y` or a degraded system state `X`):
/// each of the `replicas[x]` servers of type `x` is an M/G/1 queue fed
/// with `l_x / replicas[x]` requests per minute (Sec. 4.4).
///
/// # Errors
/// [`PerfError::LengthMismatch`] when the replica vector does not cover
/// every server type.
pub fn waiting_times(
    load: &SystemLoad,
    registry: &ServerTypeRegistry,
    replicas: &[usize],
) -> Result<Vec<WaitingOutcome>, PerfError> {
    let k = registry.len();
    if replicas.len() != k || load.request_rates.len() != k {
        return Err(PerfError::LengthMismatch {
            what: "replica vector",
            expected: k,
            actual: replicas.len(),
        });
    }
    let _obs_span = wfms_obs::span!("mg1-waiting", types = k);
    wfms_obs::counter("perf.mg1.evaluations", k as u64);
    let mut out = Vec::with_capacity(k);
    for (x, (&reps, &l_x)) in replicas.iter().zip(&load.request_rates).enumerate() {
        if reps == 0 {
            out.push(WaitingOutcome::Down);
            continue;
        }
        let server_type = registry.get(ServerTypeId(x))?;
        let per_server_rate = l_x / reps as f64;
        let service = ServiceMoments::new(
            server_type.service_time_mean,
            server_type.service_time_second_moment,
        )?;
        let queue = Mg1::new(per_server_rate, service)?;
        match queue.mean_waiting_time() {
            Ok(w) => out.push(WaitingOutcome::Stable {
                waiting_time: w,
                utilization: queue.utilization(),
            }),
            Err(_) => out.push(WaitingOutcome::Saturated {
                utilization: queue.utilization(),
            }),
        }
    }
    Ok(out)
}

/// Maximum sustainable throughput of a configuration (Sec. 4.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// The factor by which the *current* workload mix can be scaled before
    /// the first server type saturates.
    pub max_scale_factor: f64,
    /// Maximum workflow completion rate (instances per minute) at that
    /// scale: `max_scale_factor × Σ ξ_t`.
    pub max_throughput: f64,
    /// The server type that saturates first — the bottleneck.
    pub bottleneck: ServerTypeId,
    /// Per-type maximum sustainable request rates `Y_x / b_x`.
    pub capacity: Vec<f64>,
}

/// Computes the maximum sustainable throughput for configuration `config`
/// under the mix proportions captured in `load`.
///
/// # Errors
/// [`PerfError::LengthMismatch`] on a registry/config mismatch;
/// [`PerfError::EmptyWorkload`] when the load carries no requests at all
/// (the scale factor would be unbounded).
pub fn max_sustainable_throughput(
    load: &SystemLoad,
    registry: &ServerTypeRegistry,
    config: &Configuration,
) -> Result<ThroughputReport, PerfError> {
    let k = registry.len();
    if config.k() != k || load.request_rates.len() != k {
        return Err(PerfError::LengthMismatch {
            what: "configuration",
            expected: k,
            actual: config.k(),
        });
    }
    let mut best: Option<(f64, ServerTypeId)> = None;
    let mut capacity = Vec::with_capacity(k);
    for x in 0..k {
        let server_type = registry.get(ServerTypeId(x))?;
        let y_x = config.replicas(ServerTypeId(x))? as f64;
        let cap = y_x / server_type.service_time_mean;
        capacity.push(cap);
        let l_x = load.request_rates[x];
        if l_x > 0.0 {
            let scale = cap / l_x;
            if best.is_none_or(|(s, _)| scale < s) {
                best = Some((scale, ServerTypeId(x)));
            }
        }
    }
    let (max_scale_factor, bottleneck) = best.ok_or(PerfError::EmptyWorkload)?;
    Ok(ThroughputReport {
        max_scale_factor,
        max_throughput: max_scale_factor * load.total_arrival_rate,
        bottleneck,
        capacity,
    })
}

/// Mean waiting times when the replicas of a server type run on
/// *heterogeneous* computers — the extension the paper sketches at the
/// end of Sec. 4.4 ("could be extended to the heterogeneous case by
/// adjusting the service times on a per computer basis").
///
/// `speeds[x][r]` is the speed factor of replica `r` of type `x`
/// (`1.0` = the registry's nominal machine; `2.0` = twice as fast).
/// Load is routed proportionally to capacity, which equalizes the
/// per-replica utilization at `ρ_x = l_x · b_x / Σ_r s_r`; each replica
/// is then an M/G/1 queue with its service moments scaled by its speed,
/// and the type's reported waiting time is the load-weighted mean.
///
/// # Errors
/// [`PerfError::LengthMismatch`] on shape mismatches, and
/// [`PerfError::Queue`] on non-positive speed factors.
pub fn waiting_times_heterogeneous(
    load: &SystemLoad,
    registry: &ServerTypeRegistry,
    speeds: &[Vec<f64>],
) -> Result<Vec<WaitingOutcome>, PerfError> {
    let k = registry.len();
    if speeds.len() != k || load.request_rates.len() != k {
        return Err(PerfError::LengthMismatch {
            what: "speed matrix",
            expected: k,
            actual: speeds.len(),
        });
    }
    let mut out = Vec::with_capacity(k);
    for (x, replica_speeds) in speeds.iter().enumerate() {
        if replica_speeds.is_empty() {
            out.push(WaitingOutcome::Down);
            continue;
        }
        for &s in replica_speeds {
            if !(s.is_finite() && s > 0.0) {
                return Err(PerfError::Queue(
                    wfms_queueing::QueueError::InvalidParameter {
                        what: "replica speed factor",
                        value: s,
                    },
                ));
            }
        }
        let server_type = registry.get(ServerTypeId(x))?;
        let l_x = load.request_rates[x];
        let total_speed: f64 = replica_speeds.iter().sum();
        let mut weighted_wait = 0.0;
        let mut worst_util = 0.0f64;
        let mut saturated = false;
        for &s in replica_speeds {
            let lambda_r = l_x * s / total_speed;
            let service = ServiceMoments::new(
                server_type.service_time_mean / s,
                server_type.service_time_second_moment / (s * s),
            )?;
            let queue = Mg1::new(lambda_r, service)?;
            worst_util = worst_util.max(queue.utilization());
            match queue.mean_waiting_time() {
                Ok(w) => {
                    let share = if l_x > 0.0 {
                        lambda_r / l_x
                    } else {
                        1.0 / replica_speeds.len() as f64
                    };
                    weighted_wait += share * w;
                }
                Err(_) => saturated = true,
            }
        }
        if saturated {
            out.push(WaitingOutcome::Saturated {
                utilization: worst_util,
            });
        } else {
            out.push(WaitingOutcome::Stable {
                waiting_time: weighted_wait,
                utilization: worst_util,
            });
        }
    }
    Ok(out)
}

/// A group of server types co-located on the same (replicated) computer,
/// for the generalized shared-machine case of Sec. 4.4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColocationGroup {
    /// The server types sharing the machine.
    pub types: Vec<ServerTypeId>,
    /// Number of identical machines the group is replicated on.
    pub replicas: usize,
}

/// Mean waiting time common to all server types of each co-location
/// group: per machine, the types' per-server arrival streams are merged
/// into one M/G/1 queue with mixture service moments.
///
/// # Errors
/// [`PerfError::LengthMismatch`] / [`PerfError::Arch`] on malformed
/// groups; a group with zero replicas reports [`WaitingOutcome::Down`].
pub fn waiting_times_colocated(
    load: &SystemLoad,
    registry: &ServerTypeRegistry,
    groups: &[ColocationGroup],
) -> Result<Vec<WaitingOutcome>, PerfError> {
    let mut out = Vec::with_capacity(groups.len());
    for group in groups {
        if group.replicas == 0 {
            out.push(WaitingOutcome::Down);
            continue;
        }
        let mut streams = Vec::with_capacity(group.types.len());
        for &id in &group.types {
            let server_type = registry.get(id)?;
            let l_x = *load
                .request_rates
                .get(id.0)
                .ok_or(PerfError::LengthMismatch {
                    what: "request rates",
                    expected: id.0 + 1,
                    actual: load.request_rates.len(),
                })?;
            streams.push(Stream {
                arrival_rate: l_x / group.replicas as f64,
                service: ServiceMoments::new(
                    server_type.service_time_mean,
                    server_type.service_time_second_moment,
                )?,
            });
        }
        let merged = merge_streams(&streams)?;
        match merged.mean_waiting_time() {
            Ok(w) => out.push(WaitingOutcome::Stable {
                waiting_time: w,
                utilization: merged.utilization(),
            }),
            Err(_) => out.push(WaitingOutcome::Saturated {
                utilization: merged.utilization(),
            }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{analyze_workflow, AnalysisOptions};
    use wfms_statechart::{
        paper_section52_registry, ActivityKind, ActivitySpec, ChartBuilder, EcaRule, WorkflowSpec,
    };

    fn registry() -> ServerTypeRegistry {
        paper_section52_registry()
    }

    fn simple_item(arrival_rate: f64) -> WorkloadItem {
        let chart = ChartBuilder::new("W")
            .initial("i")
            .activity_state("a", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        let spec = WorkflowSpec::new(
            "W",
            chart,
            [ActivitySpec::new(
                "A",
                ActivityKind::Automated,
                10.0,
                vec![2.0, 3.0, 3.0],
            )],
        );
        let analysis = analyze_workflow(&spec, &registry(), &AnalysisOptions::default()).unwrap();
        WorkloadItem {
            analysis,
            arrival_rate,
        }
    }

    #[test]
    fn aggregate_load_sums_requests_and_applies_littles_law() {
        let load = aggregate_load(&[simple_item(0.5), simple_item(0.25)], &registry()).unwrap();
        // l_x = (0.5 + 0.25) * r_x.
        assert!((load.request_rates[0] - 0.75 * 2.0).abs() < 1e-10);
        assert!((load.request_rates[1] - 0.75 * 3.0).abs() < 1e-10);
        assert!((load.total_arrival_rate - 0.75).abs() < 1e-12);
        // N_active = ξ · R = 0.5 · 10.
        assert!((load.active_instances[0].1 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_load_validates_input() {
        assert!(matches!(
            aggregate_load(&[], &registry()),
            Err(PerfError::EmptyWorkload)
        ));
        let mut item = simple_item(1.0);
        item.arrival_rate = -1.0;
        assert!(matches!(
            aggregate_load(&[item], &registry()),
            Err(PerfError::InvalidArrivalRate { .. })
        ));
    }

    #[test]
    fn waiting_times_improve_with_replication() {
        // Service time mean is 100ms = 1/600 min; pick a rate that loads a
        // single server to ~90%.
        let reg = registry();
        let b = reg.get(ServerTypeId(0)).unwrap().service_time_mean;
        let rate = 0.9 / b;
        let load = SystemLoad {
            request_rates: vec![rate, rate, rate],
            total_arrival_rate: 1.0,
            active_instances: vec![],
        };
        let w1 = waiting_times(&load, &reg, &[1, 1, 1]).unwrap();
        let w2 = waiting_times(&load, &reg, &[2, 2, 2]).unwrap();
        for x in 0..3 {
            let a = w1[x].waiting_time().unwrap();
            let b = w2[x].waiting_time().unwrap();
            assert!(b < a, "type {x}: {b} !< {a}");
        }
    }

    #[test]
    fn waiting_times_report_saturation_and_down() {
        let reg = registry();
        let b = reg.get(ServerTypeId(0)).unwrap().service_time_mean;
        let load = SystemLoad {
            request_rates: vec![1.5 / b, 0.5 / b, 0.5 / b],
            total_arrival_rate: 1.0,
            active_instances: vec![],
        };
        let w = waiting_times(&load, &reg, &[1, 1, 0]).unwrap();
        assert!(matches!(w[0], WaitingOutcome::Saturated { utilization } if utilization > 1.0));
        assert!(matches!(w[1], WaitingOutcome::Stable { .. }));
        assert!(matches!(w[2], WaitingOutcome::Down));
        assert_eq!(w[0].waiting_time(), None);
        assert!(!w[0].meets(1.0));
        assert!(!w[2].meets(f64::INFINITY));
    }

    #[test]
    fn waiting_outcome_meets_threshold() {
        let ok = WaitingOutcome::Stable {
            waiting_time: 0.5,
            utilization: 0.5,
        };
        assert!(ok.meets(1.0));
        assert!(!ok.meets(0.1));
    }

    #[test]
    fn saturated_type_two_replicas_becomes_stable() {
        let reg = registry();
        let b = reg.get(ServerTypeId(0)).unwrap().service_time_mean;
        let load = SystemLoad {
            request_rates: vec![1.5 / b, 0.1 / b, 0.1 / b],
            total_arrival_rate: 1.0,
            active_instances: vec![],
        };
        let w = waiting_times(&load, &reg, &[2, 1, 1]).unwrap();
        assert!(
            matches!(w[0], WaitingOutcome::Stable { utilization, .. } if (utilization - 0.75).abs() < 1e-9)
        );
    }

    #[test]
    fn throughput_identifies_bottleneck() {
        let reg = registry();
        let item = simple_item(1.0);
        let load = aggregate_load(&[item], &reg).unwrap();
        let config = Configuration::new(&reg, vec![1, 1, 1]).unwrap();
        let report = max_sustainable_throughput(&load, &reg, &config).unwrap();
        // Engine and app have r = 3 per instance; app and engine tie but the
        // first minimum wins: engine (index 1) has l_x = 3, same as app? app
        // r = 3 too -> first strict minimum is engine (scanned first).
        assert_eq!(report.bottleneck, ServerTypeId(1));
        // Capacity of type x = Y_x / b_x.
        let b = reg.get(ServerTypeId(0)).unwrap().service_time_mean;
        assert!((report.capacity[0] - 1.0 / b).abs() < 1e-9);
        // Max throughput = scale * total arrival rate; scale = (1/b)/3.
        assert!((report.max_scale_factor - 1.0 / (b * 3.0)).abs() < 1e-6);
        assert!((report.max_throughput - report.max_scale_factor).abs() < 1e-9);
    }

    #[test]
    fn throughput_scales_linearly_with_bottleneck_replicas() {
        let reg = registry();
        let load = aggregate_load(&[simple_item(1.0)], &reg).unwrap();
        let one = max_sustainable_throughput(
            &load,
            &reg,
            &Configuration::new(&reg, vec![1, 1, 1]).unwrap(),
        )
        .unwrap();
        let doubled = max_sustainable_throughput(
            &load,
            &reg,
            &Configuration::new(&reg, vec![2, 2, 2]).unwrap(),
        )
        .unwrap();
        assert!((doubled.max_throughput - 2.0 * one.max_throughput).abs() < 1e-9);
    }

    #[test]
    fn colocation_increases_waiting_over_dedicated() {
        let reg = registry();
        let b = reg.get(ServerTypeId(0)).unwrap().service_time_mean;
        let rate = 0.4 / b;
        let load = SystemLoad {
            request_rates: vec![rate, rate, rate],
            total_arrival_rate: 1.0,
            active_instances: vec![],
        };
        let dedicated = waiting_times(&load, &reg, &[1, 1, 1]).unwrap();
        let shared = waiting_times_colocated(
            &load,
            &reg,
            &[ColocationGroup {
                types: vec![ServerTypeId(0), ServerTypeId(1)],
                replicas: 1,
            }],
        )
        .unwrap();
        let w_shared = shared[0].waiting_time().unwrap();
        let w_dedicated = dedicated[0].waiting_time().unwrap();
        assert!(w_shared > w_dedicated);
    }

    #[test]
    fn colocation_zero_replicas_is_down() {
        let reg = registry();
        let load = SystemLoad {
            request_rates: vec![1.0, 1.0, 1.0],
            total_arrival_rate: 1.0,
            active_instances: vec![],
        };
        let out = waiting_times_colocated(
            &load,
            &reg,
            &[ColocationGroup {
                types: vec![ServerTypeId(0)],
                replicas: 0,
            }],
        )
        .unwrap();
        assert_eq!(out, vec![WaitingOutcome::Down]);
    }

    #[test]
    fn heterogeneous_with_unit_speeds_matches_homogeneous() {
        let reg = registry();
        let b = reg.get(ServerTypeId(0)).unwrap().service_time_mean;
        let rate = 0.8 / b;
        let load = SystemLoad {
            request_rates: vec![rate, rate, rate],
            total_arrival_rate: 1.0,
            active_instances: vec![],
        };
        let homo = waiting_times(&load, &reg, &[2, 2, 2]).unwrap();
        let hetero =
            waiting_times_heterogeneous(&load, &reg, &[vec![1.0; 2], vec![1.0; 2], vec![1.0; 2]])
                .unwrap();
        for (h, g) in homo.iter().zip(&hetero) {
            let (wh, wg) = (h.waiting_time().unwrap(), g.waiting_time().unwrap());
            assert!((wh - wg).abs() < 1e-12, "{wh} vs {wg}");
        }
    }

    #[test]
    fn faster_replica_reduces_type_waiting() {
        let reg = registry();
        let b = reg.get(ServerTypeId(0)).unwrap().service_time_mean;
        let rate = 1.2 / b;
        let load = SystemLoad {
            request_rates: vec![rate, 0.01, 0.01],
            total_arrival_rate: 1.0,
            active_instances: vec![],
        };
        let even =
            waiting_times_heterogeneous(&load, &reg, &[vec![1.0, 1.0], vec![1.0], vec![1.0]])
                .unwrap();
        let upgraded =
            waiting_times_heterogeneous(&load, &reg, &[vec![2.0, 1.0], vec![1.0], vec![1.0]])
                .unwrap();
        assert!(
            upgraded[0].waiting_time().unwrap() < even[0].waiting_time().unwrap(),
            "upgrading one machine must help"
        );
        // Proportional routing equalizes utilization below saturation.
        if let WaitingOutcome::Stable { utilization, .. } = upgraded[0] {
            assert!((utilization - 1.2 / 3.0).abs() < 1e-9, "util {utilization}");
        } else {
            panic!("expected stable");
        }
    }

    #[test]
    fn heterogeneous_edge_cases() {
        let reg = registry();
        let load = SystemLoad {
            request_rates: vec![1.0, 1.0, 1.0],
            total_arrival_rate: 1.0,
            active_instances: vec![],
        };
        // Empty replica list = type down.
        let out =
            waiting_times_heterogeneous(&load, &reg, &[vec![], vec![1.0], vec![1.0]]).unwrap();
        assert!(matches!(out[0], WaitingOutcome::Down));
        // Bad speed factor rejected.
        assert!(
            waiting_times_heterogeneous(&load, &reg, &[vec![0.0], vec![1.0], vec![1.0]]).is_err()
        );
        // Shape mismatch rejected.
        assert!(matches!(
            waiting_times_heterogeneous(&load, &reg, &[vec![1.0]]),
            Err(PerfError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn length_mismatches_are_reported() {
        let reg = registry();
        let load = SystemLoad {
            request_rates: vec![1.0, 1.0, 1.0],
            total_arrival_rate: 1.0,
            active_instances: vec![],
        };
        assert!(matches!(
            waiting_times(&load, &reg, &[1, 1]),
            Err(PerfError::LengthMismatch { .. })
        ));
    }
}
