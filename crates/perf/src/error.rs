//! Performance-model errors.

use std::fmt;

use wfms_markov::ChainError;
use wfms_queueing::QueueError;
use wfms_statechart::{ArchError, SpecError};

/// Errors raised by the performance model.
#[derive(Debug, Clone, PartialEq)]
pub enum PerfError {
    /// A specification error surfaced during analysis.
    Spec(SpecError),
    /// A Markov-chain analysis failed.
    Chain(ChainError),
    /// A queueing computation failed (other than saturation, which is
    /// reported in-band as [`crate::system::WaitingOutcome::Saturated`]).
    Queue(QueueError),
    /// An architectural-model error.
    Arch(ArchError),
    /// The workload mix is empty; nothing to aggregate.
    EmptyWorkload,
    /// An arrival rate is negative or non-finite.
    InvalidArrivalRate {
        /// Workflow type name.
        workflow: String,
        /// Offending rate.
        rate: f64,
    },
    /// A load/rate vector length does not match the registry.
    LengthMismatch {
        /// What the vector described.
        what: &'static str,
        /// Expected (number of server types).
        expected: usize,
        /// Actual.
        actual: usize,
    },
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::Spec(e) => write!(f, "specification error: {e}"),
            PerfError::Chain(e) => write!(f, "Markov analysis error: {e}"),
            PerfError::Queue(e) => write!(f, "queueing error: {e}"),
            PerfError::Arch(e) => write!(f, "architecture error: {e}"),
            PerfError::EmptyWorkload => write!(f, "the workload mix contains no workflow types"),
            PerfError::InvalidArrivalRate { workflow, rate } => {
                write!(
                    f,
                    "invalid arrival rate {rate} for workflow type {workflow:?}"
                )
            }
            PerfError::LengthMismatch {
                what,
                expected,
                actual,
            } => {
                write!(f, "{what} has length {actual}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for PerfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PerfError::Spec(e) => Some(e),
            PerfError::Chain(e) => Some(e),
            PerfError::Queue(e) => Some(e),
            PerfError::Arch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for PerfError {
    fn from(e: SpecError) -> Self {
        PerfError::Spec(e)
    }
}

impl From<ChainError> for PerfError {
    fn from(e: ChainError) -> Self {
        PerfError::Chain(e)
    }
}

impl From<QueueError> for PerfError {
    fn from(e: QueueError) -> Self {
        PerfError::Queue(e)
    }
}

impl From<ArchError> for PerfError {
    fn from(e: ArchError) -> Self {
        PerfError::Arch(e)
    }
}
