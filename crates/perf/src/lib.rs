//! The WFMS performance model (Sec. 4 of the EDBT 2000 paper).
//!
//! Four stages:
//!
//! 1. **Turnaround time** `R_t` of each workflow type by first-passage
//!    analysis of its CTMC ([`workflow::analyze_workflow`]).
//! 2. **Load per instance** `r_{x,t}` — expected service requests per
//!    server type — by a Markov reward model (same entry point; choose
//!    exact or the paper's truncated uniformization via
//!    [`workflow::RequestMethod`]).
//! 3. **Total load and maximum sustainable throughput** over the whole
//!    workload mix ([`system::aggregate_load`],
//!    [`system::max_sustainable_throughput`]).
//! 4. **Waiting times** per server replica via M/G/1
//!    ([`system::waiting_times`], including degraded system states and
//!    the shared-machine generalization
//!    [`system::waiting_times_colocated`]).

#![warn(missing_docs)]

pub mod distribution;
pub mod error;
pub mod system;
pub mod workflow;

pub use distribution::TurnaroundDistribution;
pub use error::PerfError;
pub use system::{
    aggregate_load, max_sustainable_throughput, waiting_times, waiting_times_colocated,
    waiting_times_heterogeneous, ColocationGroup, SystemLoad, ThroughputReport, WaitingOutcome,
    WorkloadItem,
};
pub use workflow::{
    analyze_chart, analyze_workflow, AnalysisOptions, RequestMethod, WorkflowAnalysis,
};
