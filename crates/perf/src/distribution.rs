//! Turnaround-time *distributions* (an extension beyond the paper's
//! means-only analysis).
//!
//! The paper's Sec. 4.1 derives the mean turnaround `R_t`; the same
//! uniformized transient analysis also yields the full distribution of
//! the time to absorption — `P(T ≤ t)` — and hence percentiles such as
//! "90 % of purchases finish within two days", which is how service-level
//! agreements are usually phrased. This module wraps
//! [`wfms_markov::Uniformized::absorption_cdf`] behind a
//! workflow-centric API with a bisection percentile solver.

use wfms_markov::transient::Uniformized;

use crate::error::PerfError;
use crate::workflow::WorkflowAnalysis;

/// Turnaround-time distribution of one workflow type.
#[derive(Debug, Clone)]
pub struct TurnaroundDistribution {
    uniformized: Uniformized,
    start: usize,
    mean: f64,
    epsilon: f64,
}

impl TurnaroundDistribution {
    /// Builds the distribution from a workflow analysis.
    ///
    /// `epsilon` bounds the truncation error of each CDF evaluation
    /// (`1e-9` is plenty; the paper's 99 %-quantile spirit corresponds to
    /// `1e-2`).
    ///
    /// # Errors
    /// [`PerfError::Chain`] when the workflow CTMC cannot be uniformized.
    pub fn new(analysis: &WorkflowAnalysis, epsilon: f64) -> Result<Self, PerfError> {
        let _obs_span = wfms_obs::span!(
            "turnaround-distribution",
            states = analysis.ctmc.n(),
            epsilon = epsilon
        );
        let uniformized = Uniformized::new(&analysis.ctmc)?;
        Ok(TurnaroundDistribution {
            uniformized,
            start: analysis.start,
            mean: analysis.mean_turnaround,
            epsilon,
        })
    }

    /// Mean turnaround (from the first-passage analysis).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// `P(turnaround ≤ t)`.
    ///
    /// # Errors
    /// [`PerfError::Chain`] on internal failures.
    pub fn cdf(&self, t: f64) -> Result<f64, PerfError> {
        if t <= 0.0 {
            return Ok(0.0);
        }
        Ok(self
            .uniformized
            .absorption_cdf(self.start, t, self.epsilon)?)
    }

    /// The `q`-percentile of the turnaround time (`0 < q < 1`), found by
    /// exponential bracketing plus bisection to a relative tolerance of
    /// `1e-4`.
    ///
    /// # Errors
    /// [`PerfError::LengthMismatch`] is never returned here;
    /// [`PerfError::Chain`] on internal failures, and
    /// [`PerfError::InvalidArrivalRate`]-style domain errors are mapped to
    /// [`PerfError::Chain`] — out-of-range `q` panics in debug and
    /// saturates in release is avoided by an explicit error:
    pub fn percentile(&self, q: f64) -> Result<f64, PerfError> {
        if !(q > 0.0 && q < 1.0) {
            return Err(PerfError::LengthMismatch {
                what: "percentile (must be in (0,1))",
                expected: 0,
                actual: 1,
            });
        }
        // Bracket: the mean is a natural starting scale.
        let mut hi = self.mean.max(1e-9);
        let mut guard = 0;
        while self.cdf(hi)? < q {
            hi *= 2.0;
            guard += 1;
            if guard > 60 {
                // Absurd target; the CDF numerically saturates below q.
                return Err(PerfError::Chain(
                    wfms_markov::ChainError::AbsorptionNotCertain { state: self.start },
                ));
            }
        }
        let mut lo = 0.0;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid)? < q {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo) <= 1e-4 * hi {
                break;
            }
        }
        Ok(0.5 * (lo + hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{analyze_workflow, AnalysisOptions};
    use wfms_statechart::{
        paper_section52_registry, ActivityKind, ActivitySpec, ChartBuilder, EcaRule, WorkflowSpec,
    };

    fn exponential_workflow(mean: f64) -> WorkflowSpec {
        let chart = ChartBuilder::new("E")
            .initial("i")
            .activity_state("a", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        WorkflowSpec::new(
            "E",
            chart,
            [ActivitySpec::new(
                "A",
                ActivityKind::Automated,
                mean,
                vec![1.0, 1.0, 1.0],
            )],
        )
    }

    fn distribution_of(spec: &WorkflowSpec) -> TurnaroundDistribution {
        let reg = paper_section52_registry();
        let analysis = analyze_workflow(spec, &reg, &AnalysisOptions::default()).unwrap();
        TurnaroundDistribution::new(&analysis, 1e-10).unwrap()
    }

    #[test]
    fn exponential_workflow_has_exponential_cdf() {
        let d = distribution_of(&exponential_workflow(4.0));
        for t in [1.0, 4.0, 10.0] {
            let expect = 1.0 - (-t / 4.0f64).exp();
            let got = d.cdf(t).unwrap();
            assert!((got - expect).abs() < 1e-8, "t={t}: {got} vs {expect}");
        }
        assert_eq!(d.cdf(0.0).unwrap(), 0.0);
        assert_eq!(d.cdf(-1.0).unwrap(), 0.0);
    }

    #[test]
    fn percentiles_match_exponential_closed_form() {
        let d = distribution_of(&exponential_workflow(4.0));
        for q in [0.1f64, 0.5, 0.9, 0.99] {
            let expect = -4.0 * (1.0 - q).ln();
            let got = d.percentile(q).unwrap();
            assert!(
                (got - expect).abs() < 1e-3 * expect.max(0.1),
                "q={q}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn percentile_is_monotone_and_brackets_mean() {
        let d = distribution_of(&exponential_workflow(2.0));
        let p50 = d.percentile(0.5).unwrap();
        let p90 = d.percentile(0.9).unwrap();
        let p99 = d.percentile(0.99).unwrap();
        assert!(p50 < p90 && p90 < p99);
        // Exponential: median < mean < p90.
        assert!(p50 < d.mean() && d.mean() < p90);
    }

    #[test]
    fn percentile_rejects_out_of_range() {
        let d = distribution_of(&exponential_workflow(1.0));
        assert!(d.percentile(0.0).is_err());
        assert!(d.percentile(1.0).is_err());
        assert!(d.percentile(-0.5).is_err());
    }

    #[test]
    fn ep_like_branching_sla_question() {
        // A branchy workflow: 80% finish fast (1 min), 20% take a slow path
        // (100 min). The 0.75-percentile must sit on the fast side and the
        // 0.95-percentile on the slow side.
        let chart = ChartBuilder::new("B")
            .initial("i")
            .activity_state("fast", "Fast")
            .activity_state("slow", "Slow")
            .final_state("f")
            .transition("i", "fast", 1.0, EcaRule::default())
            .transition("fast", "f", 0.8, EcaRule::default())
            .transition("fast", "slow", 0.2, EcaRule::default())
            .transition("slow", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        let spec = WorkflowSpec::new(
            "B",
            chart,
            [
                ActivitySpec::new("Fast", ActivityKind::Automated, 1.0, vec![1.0, 1.0, 1.0]),
                ActivitySpec::new("Slow", ActivityKind::Automated, 100.0, vec![1.0, 1.0, 1.0]),
            ],
        );
        let d = distribution_of(&spec);
        let p75 = d.percentile(0.75).unwrap();
        let p95 = d.percentile(0.95).unwrap();
        assert!(p75 < 10.0, "p75 = {p75}");
        assert!(p95 > 50.0, "p95 = {p95}");
    }
}
