//! Workflow specification language and architectural model for the
//! distributed-WFMS configuration models.
//!
//! Reproduces Secs. 2 and 3 of *"Performance and Availability Assessment
//! for the Configuration of Distributed Workflow Management Systems"*
//! (EDBT 2000):
//!
//! * [`arch`] — the architectural model: server types (communication
//!   server, workflow engines, application servers) with failure/repair
//!   rates and service-time moments; configurations `Y` and system
//!   states `X`.
//! * [`spec`] — state charts with ECA rules, nesting, orthogonal
//!   components, probability-annotated transitions, and activity tables
//!   with per-server-type load vectors.
//! * [`builder`] — name-based chart construction.
//! * [`validate`] — fail-first validation of the stochastic-model
//!   assumptions.
//! * [`lint`] — the complete diagnostics walk behind [`validate`]
//!   (`W0xx` codes; see the `wfms-analysis` crate for the other passes).
//! * [`mapping`] — the Sec. 3.2 translation of a chart into the skeleton
//!   of its workflow CTMC (Fig. 3 → Fig. 4).

#![warn(missing_docs)]

pub mod arch;
pub mod builder;
pub mod dot;
pub mod error;
pub mod lint;
pub mod mapping;
pub mod spec;
pub mod validate;

pub use arch::{
    paper_section52_registry, ArchError, Configuration, ServerType, ServerTypeId, ServerTypeKind,
    ServerTypeRegistry, SystemState,
};
pub use builder::ChartBuilder;
pub use dot::{chart_to_dot, mapping_to_dot};
pub use error::SpecError;
pub use lint::{lint_chart, lint_spec};
pub use mapping::{map_chart, ChartMapping, MappedKind};
pub use spec::{
    Action, ActivityKind, ActivitySpec, ChartState, CondExpr, EcaRule, StateChart, StateId,
    StateKind, Transition, WorkflowSpec,
};
pub use validate::{validate_chart, validate_spec};
