//! The state-chart workflow specification language (Sec. 3.1 of the paper).
//!
//! A workflow type is specified as a state chart: a finite state machine
//! with a distinguished initial state, a single final state, transitions
//! annotated with event-condition-action (ECA) rules, nested states
//! (subworkflows), and orthogonal components (parallel subworkflows).
//!
//! For the stochastic model of Sec. 3.2, every transition additionally
//! carries a *probability* (provided by the workflow designer or
//! calibrated from audit trails) and every activity carries a *mean
//! duration* and a per-server-type *service-request load vector*
//! (the matrix `L^t` of Sec. 4.2).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Index of a state within one [`StateChart`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StateId(pub usize);

/// A boolean condition expression over workflow variables, as used in the
/// `[C]` part of an ECA rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CondExpr {
    /// A constant.
    Const(bool),
    /// A workflow condition variable, e.g. `PayByCreditCard`.
    Var(String),
    /// Logical negation.
    Not(Box<CondExpr>),
    /// Logical conjunction.
    And(Box<CondExpr>, Box<CondExpr>),
    /// Logical disjunction.
    Or(Box<CondExpr>, Box<CondExpr>),
}

impl CondExpr {
    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<String>) -> Self {
        CondExpr::Var(name.into())
    }

    /// Negates this expression.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        CondExpr::Not(Box::new(self))
    }

    /// Conjunction with `other`.
    pub fn and(self, other: CondExpr) -> Self {
        CondExpr::And(Box::new(self), Box::new(other))
    }

    /// Disjunction with `other`.
    pub fn or(self, other: CondExpr) -> Self {
        CondExpr::Or(Box::new(self), Box::new(other))
    }

    /// Evaluates the expression against a variable environment; unset
    /// variables read as `false`.
    pub fn evaluate(&self, env: &BTreeMap<String, bool>) -> bool {
        match self {
            CondExpr::Const(b) => *b,
            CondExpr::Var(v) => env.get(v).copied().unwrap_or(false),
            CondExpr::Not(e) => !e.evaluate(env),
            CondExpr::And(a, b) => a.evaluate(env) && b.evaluate(env),
            CondExpr::Or(a, b) => a.evaluate(env) || b.evaluate(env),
        }
    }

    /// All variable names referenced by the expression.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            CondExpr::Const(_) => {}
            CondExpr::Var(v) => out.push(v.clone()),
            CondExpr::Not(e) => e.collect_vars(out),
            CondExpr::And(a, b) | CondExpr::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }
}

/// The `A` part of an ECA rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// `st!(activity)` — start an activity.
    StartActivity(String),
    /// `tr!(C)` — set a condition variable to true.
    SetTrue(String),
    /// `fs!(C)` — set a condition variable to false.
    SetFalse(String),
    /// Raise an event.
    RaiseEvent(String),
}

/// An event-condition-action rule `E[C]/A` annotating a transition. Each
/// of the three components may be empty.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EcaRule {
    /// The triggering event `E`, e.g. `NewOrder_DONE`.
    pub event: Option<String>,
    /// The guard condition `C`.
    pub condition: Option<CondExpr>,
    /// The actions `A` executed when the transition fires.
    pub actions: Vec<Action>,
}

impl EcaRule {
    /// A rule triggered by the completion event of `activity`
    /// (the `act_DONE` convention of Sec. 3.1).
    pub fn on_done(activity: &str) -> Self {
        EcaRule {
            event: Some(format!("{activity}_DONE")),
            condition: None,
            actions: Vec::new(),
        }
    }

    /// Adds a guard condition.
    pub fn with_condition(mut self, condition: CondExpr) -> Self {
        self.condition = Some(condition);
        self
    }

    /// Adds an action.
    pub fn with_action(mut self, action: Action) -> Self {
        self.actions.push(action);
        self
    }
}

/// What a chart state *is*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StateKind {
    /// The distinguished initial pseudo-state (no activity, no residence).
    Initial,
    /// The single final state (maps to the CTMC's absorbing state).
    Final,
    /// A state executing one activity, referenced by name into the
    /// workflow's activity table.
    Activity {
        /// Name of the activity in the [`WorkflowSpec`] activity table.
        activity: String,
    },
    /// A nested state embedding one subworkflow (`charts.len() == 1`) or
    /// several orthogonal/parallel subworkflows (`charts.len() > 1`).
    Nested {
        /// The embedded chart(s); more than one means parallel execution
        /// synchronized (joined) on completion of all.
        charts: Vec<StateChart>,
    },
}

/// One state of a chart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChartState {
    /// Unique (per chart) state name, e.g. `NewOrder_S`.
    pub name: String,
    /// The state's kind.
    pub kind: StateKind,
}

/// A transition between two states of the same chart, annotated with its
/// ECA rule and its designer-provided firing probability (Sec. 3.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Source state.
    pub from: StateId,
    /// Target state.
    pub to: StateId,
    /// Probability that, when leaving `from`, this transition is the one
    /// taken. Outgoing probabilities of each state must sum to one.
    pub probability: f64,
    /// The ECA annotation.
    pub rule: EcaRule,
}

/// A state chart: states plus probability-annotated transitions.
///
/// Charts are built with [`crate::builder::ChartBuilder`] (or
/// deserialized) and checked by [`crate::validate::validate_chart`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateChart {
    /// Chart name, e.g. `EP` or `Delivery_SC`.
    pub name: String,
    /// States; [`StateId`] indexes into this vector.
    pub states: Vec<ChartState>,
    /// Transitions between the states.
    pub transitions: Vec<Transition>,
}

impl StateChart {
    /// Looks up a state by name.
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.states.iter().position(|s| s.name == name).map(StateId)
    }

    /// The unique initial state, if exactly one exists.
    pub fn initial_state(&self) -> Option<StateId> {
        let mut found = None;
        for (i, s) in self.states.iter().enumerate() {
            if matches!(s.kind, StateKind::Initial) {
                if found.is_some() {
                    return None;
                }
                found = Some(StateId(i));
            }
        }
        found
    }

    /// The unique final state, if exactly one exists.
    pub fn final_state(&self) -> Option<StateId> {
        let mut found = None;
        for (i, s) in self.states.iter().enumerate() {
            if matches!(s.kind, StateKind::Final) {
                if found.is_some() {
                    return None;
                }
                found = Some(StateId(i));
            }
        }
        found
    }

    /// Outgoing transitions of `state`.
    pub fn outgoing(&self, state: StateId) -> impl Iterator<Item = &Transition> {
        self.transitions.iter().filter(move |t| t.from == state)
    }

    /// All activity names referenced anywhere in this chart, including
    /// nested charts.
    pub fn referenced_activities(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_activities(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_activities(&self, out: &mut Vec<String>) {
        for s in &self.states {
            match &s.kind {
                StateKind::Activity { activity } => out.push(activity.clone()),
                StateKind::Nested { charts } => {
                    for c in charts {
                        c.collect_activities(out);
                    }
                }
                _ => {}
            }
        }
    }

    /// Maximum nesting depth (a flat chart has depth 1).
    pub fn nesting_depth(&self) -> usize {
        1 + self
            .states
            .iter()
            .filter_map(|s| match &s.kind {
                StateKind::Nested { charts } => charts.iter().map(|c| c.nesting_depth()).max(),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }
}

/// How an activity executes (Fig. 1 of the paper): automated activities
/// run on an application server; interactive activities run on a client
/// machine and do not involve an application server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActivityKind {
    /// Invokes an application on an application server.
    Automated,
    /// Assigned to a human actor; executed on a client machine.
    Interactive,
}

/// An activity type: duration statistics and the service-request load it
/// induces on each server type (one row-slice of the matrix `L^t`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivitySpec {
    /// Unique activity name.
    pub name: String,
    /// Automated or interactive.
    pub kind: ActivityKind,
    /// Mean duration (turnaround) of one execution, in minutes — the state
    /// residence time `H` contribution.
    pub mean_duration: f64,
    /// Squared coefficient of variation of the duration; `1` means
    /// exponential. Only the simulator uses moments beyond the mean.
    pub duration_scv: f64,
    /// Expected number of service requests per execution, indexed by
    /// [`crate::arch::ServerTypeId`] — the column `L^t_{·,a}`.
    pub load: Vec<f64>,
}

impl ActivitySpec {
    /// Creates an exponential-duration activity.
    pub fn new(
        name: impl Into<String>,
        kind: ActivityKind,
        mean_duration: f64,
        load: Vec<f64>,
    ) -> Self {
        ActivitySpec {
            name: name.into(),
            kind,
            mean_duration,
            duration_scv: 1.0,
            load,
        }
    }

    /// Sets a non-exponential duration variability.
    pub fn with_duration_scv(mut self, scv: f64) -> Self {
        self.duration_scv = scv;
        self
    }
}

/// A complete workflow-type specification: the top-level chart plus the
/// table of activity types it (and its subworkflows) reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowSpec {
    /// Workflow type name, e.g. `EP` (electronic purchase).
    pub name: String,
    /// The top-level state chart.
    pub chart: StateChart,
    /// Activity table shared by all nesting levels.
    pub activities: BTreeMap<String, ActivitySpec>,
}

impl WorkflowSpec {
    /// Creates a spec from a chart and activity list.
    pub fn new(
        name: impl Into<String>,
        chart: StateChart,
        activities: impl IntoIterator<Item = ActivitySpec>,
    ) -> Self {
        WorkflowSpec {
            name: name.into(),
            chart,
            activities: activities
                .into_iter()
                .map(|a| (a.name.clone(), a))
                .collect(),
        }
    }

    /// Looks up an activity by name.
    pub fn activity(&self, name: &str) -> Option<&ActivitySpec> {
        self.activities.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_expr_evaluation() {
        let mut env = BTreeMap::new();
        env.insert("PayByCreditCard".to_string(), true);
        let e = CondExpr::var("PayByCreditCard");
        assert!(e.evaluate(&env));
        assert!(!e.clone().not().evaluate(&env));
        assert!(!e.clone().and(CondExpr::var("Unset")).evaluate(&env));
        assert!(e.clone().or(CondExpr::Const(false)).evaluate(&env));
        assert!(CondExpr::Const(true).evaluate(&BTreeMap::new()));
    }

    #[test]
    fn cond_expr_variables_are_sorted_and_deduped() {
        let e = CondExpr::var("b").and(CondExpr::var("a").or(CondExpr::var("b")));
        assert_eq!(e.variables(), vec!["a".to_string(), "b".into()]);
    }

    #[test]
    fn eca_rule_builders() {
        let r = EcaRule::on_done("NewOrder")
            .with_condition(CondExpr::var("PayByCreditCard"))
            .with_action(Action::StartActivity("CreditCardCheck".into()));
        assert_eq!(r.event.as_deref(), Some("NewOrder_DONE"));
        assert!(r.condition.is_some());
        assert_eq!(r.actions.len(), 1);
    }

    #[test]
    fn activity_spec_defaults_to_exponential() {
        let a = ActivitySpec::new("x", ActivityKind::Automated, 5.0, vec![1.0, 2.0]);
        assert_eq!(a.duration_scv, 1.0);
        let a = a.with_duration_scv(0.5);
        assert_eq!(a.duration_scv, 0.5);
    }

    fn tiny_chart() -> StateChart {
        StateChart {
            name: "T".into(),
            states: vec![
                ChartState {
                    name: "init".into(),
                    kind: StateKind::Initial,
                },
                ChartState {
                    name: "work".into(),
                    kind: StateKind::Activity {
                        activity: "A".into(),
                    },
                },
                ChartState {
                    name: "done".into(),
                    kind: StateKind::Final,
                },
            ],
            transitions: vec![
                Transition {
                    from: StateId(0),
                    to: StateId(1),
                    probability: 1.0,
                    rule: EcaRule::default(),
                },
                Transition {
                    from: StateId(1),
                    to: StateId(2),
                    probability: 1.0,
                    rule: EcaRule::on_done("A"),
                },
            ],
        }
    }

    #[test]
    fn chart_lookups() {
        let c = tiny_chart();
        assert_eq!(c.state_by_name("work"), Some(StateId(1)));
        assert_eq!(c.state_by_name("nope"), None);
        assert_eq!(c.initial_state(), Some(StateId(0)));
        assert_eq!(c.final_state(), Some(StateId(2)));
        assert_eq!(c.outgoing(StateId(1)).count(), 1);
        assert_eq!(c.referenced_activities(), vec!["A".to_string()]);
        assert_eq!(c.nesting_depth(), 1);
    }

    #[test]
    fn duplicate_initial_states_are_not_unique() {
        let mut c = tiny_chart();
        c.states.push(ChartState {
            name: "init2".into(),
            kind: StateKind::Initial,
        });
        assert_eq!(c.initial_state(), None);
    }

    #[test]
    fn nested_chart_depth_and_activities() {
        let inner = tiny_chart();
        let outer = StateChart {
            name: "O".into(),
            states: vec![
                ChartState {
                    name: "init".into(),
                    kind: StateKind::Initial,
                },
                ChartState {
                    name: "sub".into(),
                    kind: StateKind::Nested {
                        charts: vec![inner.clone(), inner],
                    },
                },
                ChartState {
                    name: "done".into(),
                    kind: StateKind::Final,
                },
            ],
            transitions: vec![
                Transition {
                    from: StateId(0),
                    to: StateId(1),
                    probability: 1.0,
                    rule: EcaRule::default(),
                },
                Transition {
                    from: StateId(1),
                    to: StateId(2),
                    probability: 1.0,
                    rule: EcaRule::default(),
                },
            ],
        };
        assert_eq!(outer.nesting_depth(), 2);
        assert_eq!(outer.referenced_activities(), vec!["A".to_string()]);
    }

    #[test]
    fn workflow_spec_activity_table() {
        let spec = WorkflowSpec::new(
            "T",
            tiny_chart(),
            [ActivitySpec::new(
                "A",
                ActivityKind::Automated,
                2.0,
                vec![1.0],
            )],
        );
        assert!(spec.activity("A").is_some());
        assert!(spec.activity("B").is_none());
    }

    #[test]
    fn spec_serde_round_trip() {
        let spec = WorkflowSpec::new(
            "T",
            tiny_chart(),
            [ActivitySpec::new(
                "A",
                ActivityKind::Interactive,
                2.0,
                vec![1.0, 0.0],
            )],
        );
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: WorkflowSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
