//! Graphviz (DOT) export of state charts and workflow CTMCs.
//!
//! The paper communicates its models as diagrams — Fig. 3 is the EP
//! state chart, Fig. 4 its CTMC. These exporters regenerate such figures
//! from live specifications: `dot -Tsvg` on the output reproduces the
//! paper's figures for *any* workflow in the repository.

use std::fmt::Write as _;

use crate::mapping::{ChartMapping, MappedKind};
use crate::spec::{StateChart, StateKind};

/// Escapes a string for use inside a DOT double-quoted id.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a state chart (one nesting level per cluster) as a DOT digraph.
///
/// * initial states: filled black circles;
/// * final states: double circles;
/// * activity states: boxes;
/// * nested states: clusters containing their subworkflow charts;
/// * transitions: labelled with their probabilities (and the ECA event
///   when present).
pub fn chart_to_dot(chart: &StateChart) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(&chart.name));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\", fontsize=11];");
    let _ = writeln!(out, "  edge [fontname=\"Helvetica\", fontsize=9];");
    render_chart_body(chart, "", &mut out, &mut 0);
    let _ = writeln!(out, "}}");
    out
}

fn node_id(prefix: &str, name: &str) -> String {
    format!("\"{}{}\"", escape(prefix), escape(name))
}

fn render_chart_body(chart: &StateChart, prefix: &str, out: &mut String, cluster: &mut usize) {
    for state in &chart.states {
        let id = node_id(prefix, &state.name);
        match &state.kind {
            StateKind::Initial => {
                let _ = writeln!(
                    out,
                    "  {id} [shape=circle, style=filled, fillcolor=black, label=\"\", width=0.15];"
                );
            }
            StateKind::Final => {
                let _ = writeln!(out, "  {id} [shape=doublecircle, label=\"\", width=0.15];");
            }
            StateKind::Activity { activity } => {
                let _ = writeln!(
                    out,
                    "  {id} [shape=box, style=rounded, label=\"{}\\n({})\"];",
                    escape(&state.name),
                    escape(activity)
                );
            }
            StateKind::Nested { charts } => {
                let _ = writeln!(
                    out,
                    "  {id} [shape=box, style=\"rounded,bold\", label=\"{}\"];",
                    escape(&state.name)
                );
                for sub in charts {
                    *cluster += 1;
                    let _ = writeln!(out, "  subgraph cluster_{cluster} {{");
                    let _ = writeln!(out, "    label=\"{}\";", escape(&sub.name));
                    let _ = writeln!(out, "    style=dashed;");
                    let sub_prefix = format!("{}{}::", prefix, state.name);
                    render_chart_body(sub, &sub_prefix, out, cluster);
                    let _ = writeln!(out, "  }}");
                }
            }
        }
    }
    for t in &chart.transitions {
        let from = node_id(prefix, &chart.states[t.from.0].name);
        let to = node_id(prefix, &chart.states[t.to.0].name);
        let mut label = format!("{:.2}", t.probability);
        if let Some(event) = &t.rule.event {
            let _ = write!(label, "\\n{}", escape(event));
        }
        let _ = writeln!(out, "  {from} -> {to} [label=\"{label}\"];");
    }
}

/// Renders a mapped workflow CTMC (the Fig. 4 view) as a DOT digraph:
/// nodes carry the state labels, edges the jump probabilities; the
/// absorbing state is a double circle.
pub fn mapping_to_dot(mapping: &ChartMapping<'_>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}_ctmc\" {{", escape(&mapping.chart_name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(
        out,
        "  node [fontname=\"Helvetica\", fontsize=11, shape=circle];"
    );
    let _ = writeln!(out, "  edge [fontname=\"Helvetica\", fontsize=9];");
    for (i, label) in mapping.labels.iter().enumerate() {
        let shape = if matches!(mapping.kinds[i], MappedKind::Absorbing) {
            "doublecircle"
        } else {
            "circle"
        };
        let marker = if i == mapping.start {
            ", penwidth=2"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  s{i} [shape={shape}, label=\"{}\"{marker}];",
            escape(label)
        );
    }
    for i in 0..mapping.n() {
        for j in 0..mapping.n() {
            let p = mapping.jump[(i, j)];
            if p > 0.0 && !(i == j && matches!(mapping.kinds[i], MappedKind::Absorbing)) {
                let _ = writeln!(out, "  s{i} -> s{j} [label=\"{p:.2}\"];");
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChartBuilder;
    use crate::mapping::map_chart;
    use crate::spec::{ActivityKind, ActivitySpec, EcaRule, WorkflowSpec};

    fn spec() -> WorkflowSpec {
        let inner = ChartBuilder::new("Sub")
            .initial("si")
            .activity_state("w", "A")
            .final_state("sf")
            .transition("si", "w", 1.0, EcaRule::default())
            .transition("w", "sf", 1.0, EcaRule::default())
            .build()
            .unwrap();
        let chart = ChartBuilder::new("Demo")
            .initial("i")
            .activity_state("a", "A")
            .nested_state("sub", inner)
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "sub", 0.6, EcaRule::on_done("A"))
            .transition("a", "f", 0.4, EcaRule::default())
            .transition("sub", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        WorkflowSpec::new(
            "Demo",
            chart,
            [ActivitySpec::new(
                "A",
                ActivityKind::Automated,
                1.0,
                vec![1.0],
            )],
        )
    }

    #[test]
    fn chart_dot_contains_all_states_and_edges() {
        let dot = chart_to_dot(&spec().chart);
        assert!(dot.starts_with("digraph \"Demo\""));
        assert!(dot.contains("\"a\" [shape=box"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("subgraph cluster_1"));
        assert!(dot.contains("\"a\" -> \"sub\" [label=\"0.60\\nA_DONE\"]"));
        assert!(dot.contains("\"sub::w\""), "nested states are namespaced");
        assert!(dot.trim_end().ends_with('}'));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn mapping_dot_reflects_jump_probabilities() {
        let s = spec();
        let mapping = map_chart(&s.chart, &s).unwrap();
        let dot = mapping_to_dot(&mapping);
        assert!(dot.contains("digraph \"Demo_ctmc\""));
        assert!(dot.contains("s0 -> s1 [label=\"0.60\"]"));
        assert!(dot.contains("s0 -> s2 [label=\"0.40\"]"));
        // The absorbing self-loop is not drawn.
        assert!(!dot.contains("s2 -> s2"));
        assert!(dot.contains("doublecircle"));
    }

    #[test]
    fn quotes_are_escaped() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
    }

    #[test]
    fn ep_workflow_figures_render() {
        // The real Fig. 3 / Fig. 4 regeneration used by the CLI.
        // (Moved logic: ensure it works on the nested, parallel EP chart.)
        let inner = spec();
        let dot = chart_to_dot(&inner.chart);
        assert!(dot.len() > 200);
    }
}
