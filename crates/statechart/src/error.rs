//! Errors of the specification language and the CTMC mapping.

use std::fmt;

use crate::arch::ArchError;

/// Errors raised while building, validating, or mapping workflow
/// specifications.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// Two states in one chart share a name.
    DuplicateState {
        /// Chart name.
        chart: String,
        /// Offending state name.
        state: String,
    },
    /// A transition references a state name that does not exist.
    UnknownState {
        /// Chart name.
        chart: String,
        /// The missing state name.
        state: String,
    },
    /// A transition endpoint index is out of range (hand-built or
    /// deserialized charts).
    StateIndexOutOfRange {
        /// Chart name.
        chart: String,
        /// The out-of-range index.
        index: usize,
        /// Number of states in the chart.
        n: usize,
    },
    /// A chart does not have exactly one initial state.
    InitialStateCount {
        /// Chart name.
        chart: String,
        /// How many initial states were found.
        found: usize,
    },
    /// A chart does not have exactly one final state.
    FinalStateCount {
        /// Chart name.
        chart: String,
        /// How many final states were found.
        found: usize,
    },
    /// The initial state must have exactly one outgoing transition with
    /// probability one, targeting a non-final state.
    InvalidInitialTransition {
        /// Chart name.
        chart: String,
    },
    /// The final state must have no outgoing transitions.
    FinalStateHasOutgoing {
        /// Chart name.
        chart: String,
    },
    /// A transition probability is outside `[0, 1]` or not finite.
    InvalidProbability {
        /// Chart name.
        chart: String,
        /// Source state name.
        state: String,
        /// Offending probability.
        probability: f64,
    },
    /// The outgoing probabilities of a state do not sum to one.
    ProbabilitiesDontSum {
        /// Chart name.
        chart: String,
        /// Source state name.
        state: String,
        /// The sum that was found.
        sum: f64,
    },
    /// A non-final state has no outgoing transitions (dead end) — only the
    /// final state may be terminal.
    DeadEndState {
        /// Chart name.
        chart: String,
        /// Offending state name.
        state: String,
    },
    /// A state cannot be reached from the initial state.
    UnreachableState {
        /// Chart name.
        chart: String,
        /// Offending state name.
        state: String,
    },
    /// The final state cannot be reached from some state (the workflow
    /// could run forever; absorption must be certain, Sec. 4.1).
    FinalNotReachable {
        /// Chart name.
        chart: String,
        /// State from which the final state is unreachable.
        state: String,
    },
    /// A self-loop with probability one can never be left.
    CertainSelfLoop {
        /// Chart name.
        chart: String,
        /// Offending state name.
        state: String,
    },
    /// The initial or final pseudo-state carries a self-loop.
    PseudoStateSelfLoop {
        /// Chart name.
        chart: String,
        /// Offending state name.
        state: String,
    },
    /// An activity state references an activity missing from the table.
    UnknownActivity {
        /// Chart name.
        chart: String,
        /// The missing activity name.
        activity: String,
    },
    /// An activity's load vector length does not match the number of
    /// registered server types.
    ActivityLoadLength {
        /// Activity name.
        activity: String,
        /// Expected length (`k`).
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// An activity parameter (duration, SCV, load entry) is invalid.
    InvalidActivityParameter {
        /// Activity name.
        activity: String,
        /// Which parameter.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A nested state embeds an empty chart list.
    EmptyNestedState {
        /// Chart name.
        chart: String,
        /// Offending state name.
        state: String,
    },
    /// The chart contains no activity or nested state (initial feeding
    /// directly into final): nothing to execute, nothing to map.
    EmptyWorkflow {
        /// Chart name.
        chart: String,
    },
    /// An architectural-model error surfaced during validation.
    Arch(ArchError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::DuplicateState { chart, state } => {
                write!(f, "chart {chart:?}: duplicate state name {state:?}")
            }
            SpecError::UnknownState { chart, state } => {
                write!(f, "chart {chart:?}: unknown state {state:?} in transition")
            }
            SpecError::StateIndexOutOfRange { chart, index, n } => {
                write!(f, "chart {chart:?}: state index {index} out of range (n = {n})")
            }
            SpecError::InitialStateCount { chart, found } => {
                write!(f, "chart {chart:?}: expected exactly one initial state, found {found}")
            }
            SpecError::FinalStateCount { chart, found } => {
                write!(f, "chart {chart:?}: expected exactly one final state, found {found}")
            }
            SpecError::InvalidInitialTransition { chart } => write!(
                f,
                "chart {chart:?}: the initial state needs exactly one outgoing transition with probability 1 to a non-final state"
            ),
            SpecError::FinalStateHasOutgoing { chart } => {
                write!(f, "chart {chart:?}: the final state must have no outgoing transitions")
            }
            SpecError::InvalidProbability { chart, state, probability } => {
                write!(f, "chart {chart:?}, state {state:?}: invalid probability {probability}")
            }
            SpecError::ProbabilitiesDontSum { chart, state, sum } => {
                write!(f, "chart {chart:?}, state {state:?}: outgoing probabilities sum to {sum}")
            }
            SpecError::DeadEndState { chart, state } => {
                write!(f, "chart {chart:?}: non-final state {state:?} has no outgoing transitions")
            }
            SpecError::UnreachableState { chart, state } => {
                write!(f, "chart {chart:?}: state {state:?} is unreachable from the initial state")
            }
            SpecError::FinalNotReachable { chart, state } => {
                write!(f, "chart {chart:?}: the final state is unreachable from state {state:?}")
            }
            SpecError::CertainSelfLoop { chart, state } => {
                write!(f, "chart {chart:?}: state {state:?} loops onto itself with probability 1")
            }
            SpecError::PseudoStateSelfLoop { chart, state } => {
                write!(f, "chart {chart:?}: initial/final state {state:?} has a self-loop")
            }
            SpecError::UnknownActivity { chart, activity } => {
                write!(f, "chart {chart:?}: activity {activity:?} is not in the activity table")
            }
            SpecError::ActivityLoadLength { activity, expected, actual } => write!(
                f,
                "activity {activity:?}: load vector has length {actual}, expected {expected} server types"
            ),
            SpecError::InvalidActivityParameter { activity, what, value } => {
                write!(f, "activity {activity:?}: invalid {what} ({value})")
            }
            SpecError::EmptyNestedState { chart, state } => {
                write!(f, "chart {chart:?}: nested state {state:?} embeds no charts")
            }
            SpecError::EmptyWorkflow { chart } => {
                write!(f, "chart {chart:?}: contains no activity or nested state")
            }
            SpecError::Arch(e) => write!(f, "architecture error: {e}"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Arch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for SpecError {
    fn from(e: ArchError) -> Self {
        SpecError::Arch(e)
    }
}
