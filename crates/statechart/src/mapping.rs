//! Mapping of state charts onto workflow CTMC structure (Sec. 3.2).
//!
//! The mapping turns one chart level into the skeleton of a CTMC:
//!
//! * every activity state and every nested (subworkflow) state becomes a
//!   CTMC state;
//! * the single final state becomes the artificial absorbing state `s_A`
//!   (transition probability one from the former final predecessors,
//!   infinite residence);
//! * the initial pseudo-state is elided — the CTMC starts in the target
//!   of its single certain transition;
//! * *self-loops* (retry semantics) are folded away: a state `a` with
//!   self-loop probability `s` is entered geometrically often, so its
//!   activity is executed `1/(1-s)` times per entry on average. The
//!   mapping renormalizes the remaining outgoing probabilities by
//!   `1/(1-s)` and reports the factor as the state's *execution
//!   multiplier*, which the performance model applies to both the
//!   residence time and the load vector. This keeps the CTMC in the
//!   paper's canonical self-loop-free form while supporting retry loops
//!   in the specification language.
//!
//! Residence times and load vectors are *not* resolved here: for nested
//! states they require the recursive performance analysis of Sec. 4.2.2
//! (subworkflow turnaround and request counts), which lives in
//! `wfms-perf`. The mapping exposes the structure that analysis walks.

use wfms_markov::ctmc::Ctmc;
use wfms_markov::linalg::Matrix;

use crate::error::SpecError;
use crate::spec::{ActivitySpec, StateChart, StateId, StateKind, WorkflowSpec};
use crate::validate::PROBABILITY_TOLERANCE;

/// What a mapped CTMC state stands for.
#[derive(Debug, Clone, PartialEq)]
pub enum MappedKind<'a> {
    /// Executes one activity.
    Activity(&'a ActivitySpec),
    /// Runs one or more subworkflows (in parallel if more than one),
    /// joined on completion of all.
    Nested(&'a [StateChart]),
    /// The artificial absorbing state `s_A`.
    Absorbing,
}

/// The CTMC skeleton of one chart level.
#[derive(Debug, Clone)]
pub struct ChartMapping<'a> {
    /// Name of the mapped chart.
    pub chart_name: String,
    /// CTMC state labels (chart state names; last = `"s_A"`).
    pub labels: Vec<String>,
    /// Meaning of each CTMC state, index-aligned with `labels`.
    pub kinds: Vec<MappedKind<'a>>,
    /// Jump-chain transition probabilities, `(m+1) x (m+1)` with the
    /// absorbing state last.
    pub jump: Matrix,
    /// Index of the CTMC start state `s_0`.
    pub start: usize,
    /// Index of the absorbing state (always `labels.len() - 1`).
    pub absorbing: usize,
    /// Expected executions of each state's work per CTMC entry
    /// (from folded self-loops; `1.0` when the state had none).
    pub execution_multiplier: Vec<f64>,
}

impl<'a> ChartMapping<'a> {
    /// Number of CTMC states (including the absorbing state).
    pub fn n(&self) -> usize {
        self.labels.len()
    }

    /// Assembles the [`Ctmc`] once per-state residence times are known.
    /// `residence` covers the non-absorbing states (length `n - 1`);
    /// the absorbing state gets infinite residence automatically.
    ///
    /// # Errors
    /// Propagates chain-construction errors (e.g. non-positive residence
    /// times) as [`SpecError::Arch`]-free chain errors wrapped in
    /// [`SpecError::InvalidActivityParameter`]-style messages is not
    /// possible here, so the raw [`wfms_markov::ChainError`] is returned.
    pub fn to_ctmc(&self, residence: &[f64]) -> Result<Ctmc, wfms_markov::ChainError> {
        let mut h = residence.to_vec();
        h.push(f64::INFINITY);
        Ctmc::from_jump_chain(self.jump.clone(), h)?.with_labels(self.labels.clone())
    }
}

/// Maps one chart of `spec` onto its CTMC skeleton.
///
/// The chart must already pass [`crate::validate::validate_spec`]; the
/// mapping re-checks only what it needs to stay memory-safe and returns
/// [`SpecError`] on violations it trips over.
///
/// # Errors
/// Structural violations as [`SpecError`].
pub fn map_chart<'a>(
    chart: &'a StateChart,
    spec: &'a WorkflowSpec,
) -> Result<ChartMapping<'a>, SpecError> {
    let n_chart = chart.states.len();
    let cname = || chart.name.clone();

    let initial = chart
        .initial_state()
        .ok_or_else(|| SpecError::InitialStateCount {
            chart: cname(),
            found: 0,
        })?;
    let final_ = chart
        .final_state()
        .ok_or_else(|| SpecError::FinalStateCount {
            chart: cname(),
            found: 0,
        })?;

    // Rank the real (activity / nested) states in chart order.
    let mut rank = vec![usize::MAX; n_chart];
    let mut labels = Vec::new();
    let mut kinds: Vec<MappedKind<'a>> = Vec::new();
    for (i, s) in chart.states.iter().enumerate() {
        match &s.kind {
            StateKind::Activity { activity } => {
                let spec_act =
                    spec.activity(activity)
                        .ok_or_else(|| SpecError::UnknownActivity {
                            chart: cname(),
                            activity: activity.clone(),
                        })?;
                rank[i] = labels.len();
                labels.push(s.name.clone());
                kinds.push(MappedKind::Activity(spec_act));
            }
            StateKind::Nested { charts } => {
                if charts.is_empty() {
                    return Err(SpecError::EmptyNestedState {
                        chart: cname(),
                        state: s.name.clone(),
                    });
                }
                rank[i] = labels.len();
                labels.push(s.name.clone());
                kinds.push(MappedKind::Nested(charts.as_slice()));
            }
            StateKind::Initial | StateKind::Final => {}
        }
    }
    let m = labels.len();
    if m == 0 {
        return Err(SpecError::EmptyWorkflow { chart: cname() });
    }
    let absorbing = m;
    labels.push("s_A".to_string());
    kinds.push(MappedKind::Absorbing);

    // Start state: the single certain successor of the initial state.
    let start = {
        let mut out = chart.outgoing(initial);
        let first = out
            .next()
            .ok_or_else(|| SpecError::InvalidInitialTransition { chart: cname() })?;
        if out.next().is_some() || first.to == final_ || rank[first.to.0] == usize::MAX {
            return Err(SpecError::InvalidInitialTransition { chart: cname() });
        }
        rank[first.to.0]
    };

    // Assemble the jump matrix with self-loop folding.
    let mut jump = Matrix::zeros(m + 1, m + 1);
    let mut execution_multiplier = vec![1.0; m + 1];
    for (i, s) in chart.states.iter().enumerate() {
        let a = rank[i];
        if a == usize::MAX {
            continue; // initial / final
        }
        let id = StateId(i);
        let self_prob: f64 = chart
            .outgoing(id)
            .filter(|t| t.to == id)
            .map(|t| t.probability)
            .sum();
        if self_prob >= 1.0 - PROBABILITY_TOLERANCE {
            return Err(SpecError::CertainSelfLoop {
                chart: cname(),
                state: s.name.clone(),
            });
        }
        let renorm = 1.0 / (1.0 - self_prob);
        execution_multiplier[a] = renorm;
        for t in chart.outgoing(id) {
            if t.to == id {
                continue;
            }
            let b = if t.to == final_ {
                absorbing
            } else {
                let r = rank[t.to.0];
                if r == usize::MAX {
                    // A transition back into the initial pseudo-state.
                    return Err(SpecError::InvalidInitialTransition { chart: cname() });
                }
                r
            };
            jump[(a, b)] += t.probability * renorm;
        }
    }
    jump[(absorbing, absorbing)] = 1.0;

    Ok(ChartMapping {
        chart_name: chart.name.clone(),
        labels,
        kinds,
        jump,
        start,
        absorbing,
        execution_multiplier,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChartBuilder;
    use crate::spec::{ActivityKind, EcaRule};

    fn spec(chart: StateChart) -> WorkflowSpec {
        WorkflowSpec::new(
            "T",
            chart,
            [
                ActivitySpec::new("A", ActivityKind::Automated, 2.0, vec![1.0]),
                ActivitySpec::new("B", ActivityKind::Interactive, 3.0, vec![2.0]),
            ],
        )
    }

    fn linear() -> StateChart {
        ChartBuilder::new("L")
            .initial("i")
            .activity_state("a", "A")
            .activity_state("b", "B")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "b", 1.0, EcaRule::default())
            .transition("b", "f", 1.0, EcaRule::default())
            .build()
            .unwrap()
    }

    #[test]
    fn maps_linear_chart_to_three_state_ctmc() {
        let s = spec(linear());
        let m = map_chart(&s.chart, &s).unwrap();
        assert_eq!(m.n(), 3);
        assert_eq!(m.labels, vec!["a".to_string(), "b".into(), "s_A".into()]);
        assert_eq!(m.start, 0);
        assert_eq!(m.absorbing, 2);
        assert_eq!(m.jump[(0, 1)], 1.0);
        assert_eq!(m.jump[(1, 2)], 1.0);
        assert_eq!(m.jump[(2, 2)], 1.0);
        assert_eq!(m.execution_multiplier, vec![1.0, 1.0, 1.0]);
        assert!(matches!(m.kinds[0], MappedKind::Activity(a) if a.name == "A"));
        assert!(matches!(m.kinds[2], MappedKind::Absorbing));
    }

    #[test]
    fn to_ctmc_builds_workflow_chain() {
        let s = spec(linear());
        let m = map_chart(&s.chart, &s).unwrap();
        let ctmc = m.to_ctmc(&[2.0, 3.0]).unwrap();
        assert_eq!(ctmc.n(), 3);
        assert!(ctmc.is_absorbing(2));
        let turnaround = ctmc.mean_first_passage(2).unwrap()[m.start];
        assert!((turnaround - 5.0).abs() < 1e-10);
        assert_eq!(ctmc.labels()[2], "s_A");
    }

    #[test]
    fn branch_probabilities_carry_over() {
        let chart = ChartBuilder::new("Br")
            .initial("i")
            .activity_state("a", "A")
            .activity_state("b", "B")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "b", 0.25, EcaRule::default())
            .transition("a", "f", 0.75, EcaRule::default())
            .transition("b", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        let s = spec(chart);
        let m = map_chart(&s.chart, &s).unwrap();
        assert!((m.jump[(0, 1)] - 0.25).abs() < 1e-12);
        assert!((m.jump[(0, 2)] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn self_loop_is_folded_into_multiplier() {
        let chart = ChartBuilder::new("Retry")
            .initial("i")
            .activity_state("a", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "a", 0.2, EcaRule::default())
            .transition("a", "f", 0.8, EcaRule::default())
            .build()
            .unwrap();
        let s = spec(chart);
        let m = map_chart(&s.chart, &s).unwrap();
        // Renormalized: 0.8 / 0.8 = 1 to absorbing; multiplier 1/(1-0.2).
        assert!((m.jump[(0, 1)] - 1.0).abs() < 1e-12);
        assert!((m.execution_multiplier[0] - 1.25).abs() < 1e-12);
        // Jump matrix is still stochastic (no self-loop on state 0).
        assert!(m.jump.is_row_stochastic(1e-9));
        assert_eq!(m.jump[(0, 0)], 0.0);
    }

    #[test]
    fn nested_state_is_mapped_as_nested_kind() {
        let inner = ChartBuilder::new("inner")
            .initial("i")
            .activity_state("w", "A")
            .final_state("f")
            .transition("i", "w", 1.0, EcaRule::default())
            .transition("w", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        let outer = ChartBuilder::new("outer")
            .initial("i")
            .parallel_state("sub", vec![inner.clone(), inner])
            .final_state("f")
            .transition("i", "sub", 1.0, EcaRule::default())
            .transition("sub", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        let s = spec(outer);
        let m = map_chart(&s.chart, &s).unwrap();
        assert_eq!(m.n(), 2);
        assert!(matches!(m.kinds[0], MappedKind::Nested(charts) if charts.len() == 2));
    }

    #[test]
    fn loop_between_states_preserved_in_jump_chain() {
        let chart = ChartBuilder::new("Loop")
            .initial("i")
            .activity_state("a", "A")
            .activity_state("b", "B")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "b", 1.0, EcaRule::default())
            .transition("b", "a", 0.3, EcaRule::default())
            .transition("b", "f", 0.7, EcaRule::default())
            .build()
            .unwrap();
        let s = spec(chart);
        let m = map_chart(&s.chart, &s).unwrap();
        assert!((m.jump[(1, 0)] - 0.3).abs() < 1e-12);
        assert!((m.jump[(1, 2)] - 0.7).abs() < 1e-12);
        let ctmc = m.to_ctmc(&[2.0, 3.0]).unwrap();
        let r = ctmc.mean_first_passage(2).unwrap()[0];
        assert!((r - 5.0 / 0.7).abs() < 1e-9);
    }

    #[test]
    fn parallel_transitions_to_same_target_accumulate() {
        // Two distinct ECA rules may lead to the same successor state; their
        // probabilities add up in the CTMC.
        let chart = ChartBuilder::new("Par")
            .initial("i")
            .activity_state("a", "A")
            .activity_state("b", "B")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "b", 0.3, EcaRule::on_done("A"))
            .transition("a", "b", 0.2, EcaRule::default())
            .transition("a", "f", 0.5, EcaRule::default())
            .transition("b", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        let s = spec(chart);
        let m = map_chart(&s.chart, &s).unwrap();
        assert!((m.jump[(0, 1)] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mapping_rejects_unknown_activity() {
        let chart = ChartBuilder::new("U")
            .initial("i")
            .activity_state("a", "Ghost")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        let s = spec(chart);
        assert!(matches!(
            map_chart(&s.chart, &s),
            Err(SpecError::UnknownActivity { .. })
        ));
    }

    #[test]
    fn mapping_rejects_initial_to_final_shortcut() {
        let chart = ChartBuilder::new("E")
            .initial("i")
            .final_state("f")
            .transition("i", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        let s = spec(chart);
        assert!(matches!(
            map_chart(&s.chart, &s),
            Err(SpecError::EmptyWorkflow { .. }) | Err(SpecError::InvalidInitialTransition { .. })
        ));
    }
}
