//! Ergonomic construction of state charts.
//!
//! The builder works with state *names* and resolves them to [`StateId`]s
//! at build time, so chart definitions read like the specification
//! diagrams of the paper (Fig. 3).

use std::collections::BTreeMap;

use crate::error::SpecError;
use crate::spec::{ChartState, EcaRule, StateChart, StateId, StateKind, Transition};

/// Builder for a [`StateChart`].
///
/// ```
/// use wfms_statechart::builder::ChartBuilder;
/// use wfms_statechart::spec::EcaRule;
///
/// let chart = ChartBuilder::new("Demo")
///     .initial("init")
///     .activity_state("work", "DoWork")
///     .final_state("done")
///     .transition("init", "work", 1.0, EcaRule::default())
///     .transition("work", "done", 1.0, EcaRule::on_done("DoWork"))
///     .build()
///     .unwrap();
/// assert_eq!(chart.states.len(), 3);
/// ```
#[derive(Debug)]
pub struct ChartBuilder {
    name: String,
    states: Vec<ChartState>,
    index: BTreeMap<String, StateId>,
    /// `(from, to, probability, rule)` by name, resolved at build time.
    pending_transitions: Vec<(String, String, f64, EcaRule)>,
    duplicate: Option<String>,
}

impl ChartBuilder {
    /// Starts a new chart.
    pub fn new(name: impl Into<String>) -> Self {
        ChartBuilder {
            name: name.into(),
            states: Vec::new(),
            index: BTreeMap::new(),
            pending_transitions: Vec::new(),
            duplicate: None,
        }
    }

    fn add_state(mut self, name: impl Into<String>, kind: StateKind) -> Self {
        let name = name.into();
        if self.index.contains_key(&name) {
            self.duplicate.get_or_insert(name);
            return self;
        }
        let id = StateId(self.states.len());
        self.index.insert(name.clone(), id);
        self.states.push(ChartState { name, kind });
        self
    }

    /// Adds the initial pseudo-state.
    pub fn initial(self, name: impl Into<String>) -> Self {
        self.add_state(name, StateKind::Initial)
    }

    /// Adds the final state.
    pub fn final_state(self, name: impl Into<String>) -> Self {
        self.add_state(name, StateKind::Final)
    }

    /// Adds a state executing `activity`.
    pub fn activity_state(self, name: impl Into<String>, activity: impl Into<String>) -> Self {
        self.add_state(
            name,
            StateKind::Activity {
                activity: activity.into(),
            },
        )
    }

    /// Adds a nested state embedding one subworkflow chart.
    pub fn nested_state(self, name: impl Into<String>, chart: StateChart) -> Self {
        self.add_state(
            name,
            StateKind::Nested {
                charts: vec![chart],
            },
        )
    }

    /// Adds a nested state running several charts in parallel (orthogonal
    /// components), joined on completion of all.
    pub fn parallel_state(self, name: impl Into<String>, charts: Vec<StateChart>) -> Self {
        self.add_state(name, StateKind::Nested { charts })
    }

    /// Adds a transition by state names.
    pub fn transition(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        probability: f64,
        rule: EcaRule,
    ) -> Self {
        self.pending_transitions
            .push((from.into(), to.into(), probability, rule));
        self
    }

    /// Resolves names and produces the chart. The result is *structurally*
    /// assembled but not yet semantically validated — run
    /// [`crate::validate::validate_chart`] (or validate the whole
    /// [`crate::spec::WorkflowSpec`]) afterwards.
    ///
    /// # Errors
    /// * [`SpecError::DuplicateState`] for repeated state names.
    /// * [`SpecError::UnknownState`] for transitions naming missing states.
    pub fn build(self) -> Result<StateChart, SpecError> {
        if let Some(name) = self.duplicate {
            return Err(SpecError::DuplicateState {
                chart: self.name,
                state: name,
            });
        }
        let mut transitions = Vec::with_capacity(self.pending_transitions.len());
        for (from, to, probability, rule) in self.pending_transitions {
            let &from_id = self
                .index
                .get(&from)
                .ok_or_else(|| SpecError::UnknownState {
                    chart: self.name.clone(),
                    state: from.clone(),
                })?;
            let &to_id = self.index.get(&to).ok_or_else(|| SpecError::UnknownState {
                chart: self.name.clone(),
                state: to.clone(),
            })?;
            transitions.push(Transition {
                from: from_id,
                to: to_id,
                probability,
                rule,
            });
        }
        Ok(StateChart {
            name: self.name,
            states: self.states,
            transitions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_linear_chart() {
        let chart = ChartBuilder::new("L")
            .initial("i")
            .activity_state("a", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        assert_eq!(chart.states.len(), 3);
        assert_eq!(chart.transitions.len(), 2);
        assert_eq!(chart.transitions[0].from, StateId(0));
        assert_eq!(chart.transitions[0].to, StateId(1));
    }

    #[test]
    fn duplicate_state_is_reported() {
        let err = ChartBuilder::new("D")
            .initial("x")
            .final_state("x")
            .build()
            .unwrap_err();
        assert!(matches!(err, SpecError::DuplicateState { state, .. } if state == "x"));
    }

    #[test]
    fn unknown_transition_endpoint_is_reported() {
        let err = ChartBuilder::new("U")
            .initial("i")
            .final_state("f")
            .transition("i", "ghost", 1.0, EcaRule::default())
            .build()
            .unwrap_err();
        assert!(matches!(err, SpecError::UnknownState { state, .. } if state == "ghost"));
    }

    #[test]
    fn nested_and_parallel_states() {
        let inner = ChartBuilder::new("inner")
            .initial("i")
            .activity_state("w", "W")
            .final_state("f")
            .transition("i", "w", 1.0, EcaRule::default())
            .transition("w", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        let chart = ChartBuilder::new("outer")
            .initial("i")
            .nested_state("sub", inner.clone())
            .parallel_state("par", vec![inner.clone(), inner])
            .final_state("f")
            .transition("i", "sub", 1.0, EcaRule::default())
            .transition("sub", "par", 1.0, EcaRule::default())
            .transition("par", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        assert_eq!(chart.nesting_depth(), 2);
        match &chart.states[2].kind {
            StateKind::Nested { charts } => assert_eq!(charts.len(), 2),
            other => panic!("expected parallel nested state, got {other:?}"),
        }
    }
}
