//! Static validation of workflow specifications.
//!
//! A specification must satisfy the structural assumptions the paper's
//! stochastic model rests on (Secs. 3.1–3.2): a single initial and a
//! single final state per chart, certain absorption, outgoing transition
//! probabilities that form distributions, and an activity table covering
//! every referenced activity with load vectors matching the architectural
//! model.

use crate::arch::ServerTypeRegistry;
use crate::error::SpecError;
use crate::spec::{StateChart, StateId, StateKind, WorkflowSpec};

/// Tolerance for outgoing-probability sums.
pub const PROBABILITY_TOLERANCE: f64 = 1e-9;

/// Validates a whole workflow specification (all nesting levels) against
/// a server-type registry.
///
/// # Errors
/// The first violated rule, as a [`SpecError`].
pub fn validate_spec(spec: &WorkflowSpec, registry: &ServerTypeRegistry) -> Result<(), SpecError> {
    // Activity table: parameters and load-vector lengths.
    for activity in spec.activities.values() {
        if !(activity.mean_duration.is_finite() && activity.mean_duration > 0.0) {
            return Err(SpecError::InvalidActivityParameter {
                activity: activity.name.clone(),
                what: "mean duration",
                value: activity.mean_duration,
            });
        }
        if !(activity.duration_scv.is_finite() && activity.duration_scv > 0.0) {
            return Err(SpecError::InvalidActivityParameter {
                activity: activity.name.clone(),
                what: "duration SCV",
                value: activity.duration_scv,
            });
        }
        if activity.load.len() != registry.len() {
            return Err(SpecError::ActivityLoadLength {
                activity: activity.name.clone(),
                expected: registry.len(),
                actual: activity.load.len(),
            });
        }
        for &l in &activity.load {
            if !(l.is_finite() && l >= 0.0) {
                return Err(SpecError::InvalidActivityParameter {
                    activity: activity.name.clone(),
                    what: "load entry",
                    value: l,
                });
            }
        }
    }
    validate_chart_recursive(&spec.chart, spec)
}

fn validate_chart_recursive(chart: &StateChart, spec: &WorkflowSpec) -> Result<(), SpecError> {
    validate_chart(chart)?;
    for state in &chart.states {
        match &state.kind {
            StateKind::Activity { activity }
                if spec.activity(activity).is_none() => {
                    return Err(SpecError::UnknownActivity {
                        chart: chart.name.clone(),
                        activity: activity.clone(),
                    });
                }
            StateKind::Nested { charts } => {
                if charts.is_empty() {
                    return Err(SpecError::EmptyNestedState {
                        chart: chart.name.clone(),
                        state: state.name.clone(),
                    });
                }
                for sub in charts {
                    validate_chart_recursive(sub, spec)?;
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Validates the *structure* of a single chart (no activity-table or
/// registry knowledge; use [`validate_spec`] for the full check).
///
/// # Errors
/// The first violated rule, as a [`SpecError`].
pub fn validate_chart(chart: &StateChart) -> Result<(), SpecError> {
    let n = chart.states.len();
    let cname = || chart.name.clone();

    // Unique state names.
    for (i, s) in chart.states.iter().enumerate() {
        if chart.states[..i].iter().any(|other| other.name == s.name) {
            return Err(SpecError::DuplicateState { chart: cname(), state: s.name.clone() });
        }
    }

    // Transition endpoint indices (deserialized charts may be malformed).
    for t in &chart.transitions {
        for idx in [t.from.0, t.to.0] {
            if idx >= n {
                return Err(SpecError::StateIndexOutOfRange { chart: cname(), index: idx, n });
            }
        }
    }

    // Exactly one initial, exactly one final.
    let initials: Vec<StateId> = chart
        .states
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s.kind, StateKind::Initial))
        .map(|(i, _)| StateId(i))
        .collect();
    if initials.len() != 1 {
        return Err(SpecError::InitialStateCount { chart: cname(), found: initials.len() });
    }
    let finals: Vec<StateId> = chart
        .states
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s.kind, StateKind::Final))
        .map(|(i, _)| StateId(i))
        .collect();
    if finals.len() != 1 {
        return Err(SpecError::FinalStateCount { chart: cname(), found: finals.len() });
    }
    let initial = initials[0];
    let final_ = finals[0];

    if chart.states.len() == 2 {
        // Only initial and final: nothing executes.
        return Err(SpecError::EmptyWorkflow { chart: cname() });
    }

    // Probabilities are well-formed.
    for t in &chart.transitions {
        if !(t.probability.is_finite() && (0.0..=1.0).contains(&t.probability)) {
            return Err(SpecError::InvalidProbability {
                chart: cname(),
                state: chart.states[t.from.0].name.clone(),
                probability: t.probability,
            });
        }
    }

    // Self-loop rules.
    for t in &chart.transitions {
        if t.from == t.to {
            let s = &chart.states[t.from.0];
            if matches!(s.kind, StateKind::Initial | StateKind::Final) {
                return Err(SpecError::PseudoStateSelfLoop {
                    chart: cname(),
                    state: s.name.clone(),
                });
            }
            if t.probability >= 1.0 - PROBABILITY_TOLERANCE {
                return Err(SpecError::CertainSelfLoop { chart: cname(), state: s.name.clone() });
            }
        }
    }

    // Initial: exactly one outgoing with probability 1 to a non-final state.
    {
        let out: Vec<_> = chart.outgoing(initial).collect();
        let ok = out.len() == 1
            && (out[0].probability - 1.0).abs() <= PROBABILITY_TOLERANCE
            && out[0].to != final_
            && out[0].to != initial;
        if !ok {
            return Err(SpecError::InvalidInitialTransition { chart: cname() });
        }
    }

    // Final: no outgoing.
    if chart.outgoing(final_).next().is_some() {
        return Err(SpecError::FinalStateHasOutgoing { chart: cname() });
    }

    // Every non-final state has outgoing transitions summing to one.
    for (i, s) in chart.states.iter().enumerate() {
        let id = StateId(i);
        if id == final_ {
            continue;
        }
        let mut sum = 0.0;
        let mut any = false;
        for t in chart.outgoing(id) {
            any = true;
            sum += t.probability;
        }
        if !any {
            return Err(SpecError::DeadEndState { chart: cname(), state: s.name.clone() });
        }
        if (sum - 1.0).abs() > PROBABILITY_TOLERANCE {
            return Err(SpecError::ProbabilitiesDontSum {
                chart: cname(),
                state: s.name.clone(),
                sum,
            });
        }
    }

    // Reachability: every state reachable from initial …
    let fwd = reachable_from(chart, initial, n);
    for (i, s) in chart.states.iter().enumerate() {
        if !fwd[i] {
            return Err(SpecError::UnreachableState { chart: cname(), state: s.name.clone() });
        }
    }
    // … and the final state reachable from every state (certain absorption).
    let bwd = coreachable_to(chart, final_, n);
    for (i, s) in chart.states.iter().enumerate() {
        if !bwd[i] {
            return Err(SpecError::FinalNotReachable { chart: cname(), state: s.name.clone() });
        }
    }

    Ok(())
}

fn reachable_from(chart: &StateChart, start: StateId, n: usize) -> Vec<bool> {
    let mut seen = vec![false; n];
    let mut stack = vec![start.0];
    seen[start.0] = true;
    while let Some(s) = stack.pop() {
        for t in chart.outgoing(StateId(s)) {
            if t.probability > PROBABILITY_TOLERANCE && !seen[t.to.0] {
                seen[t.to.0] = true;
                stack.push(t.to.0);
            }
        }
    }
    seen
}

fn coreachable_to(chart: &StateChart, target: StateId, n: usize) -> Vec<bool> {
    let mut seen = vec![false; n];
    seen[target.0] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for t in &chart.transitions {
            if t.probability > PROBABILITY_TOLERANCE && seen[t.to.0] && !seen[t.from.0] {
                seen[t.from.0] = true;
                changed = true;
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::paper_section52_registry;
    use crate::builder::ChartBuilder;
    use crate::spec::{ActivityKind, ActivitySpec, EcaRule, Transition, WorkflowSpec};

    fn linear_chart() -> StateChart {
        ChartBuilder::new("L")
            .initial("i")
            .activity_state("a", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "f", 1.0, EcaRule::default())
            .build()
            .unwrap()
    }

    fn spec_with(chart: StateChart) -> WorkflowSpec {
        WorkflowSpec::new(
            "T",
            chart,
            [ActivitySpec::new("A", ActivityKind::Automated, 2.0, vec![1.0, 1.0, 1.0])],
        )
    }

    #[test]
    fn valid_linear_chart_passes() {
        let reg = paper_section52_registry();
        validate_spec(&spec_with(linear_chart()), &reg).unwrap();
    }

    #[test]
    fn branching_with_probabilities_passes() {
        let chart = ChartBuilder::new("B")
            .initial("i")
            .activity_state("a", "A")
            .activity_state("b", "A")
            .activity_state("c", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "b", 0.4, EcaRule::default())
            .transition("a", "c", 0.6, EcaRule::default())
            .transition("b", "f", 1.0, EcaRule::default())
            .transition("c", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        validate_spec(&spec_with(chart), &paper_section52_registry()).unwrap();
    }

    #[test]
    fn loop_back_passes() {
        let chart = ChartBuilder::new("Loop")
            .initial("i")
            .activity_state("a", "A")
            .activity_state("b", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "b", 1.0, EcaRule::default())
            .transition("b", "a", 0.3, EcaRule::default())
            .transition("b", "f", 0.7, EcaRule::default())
            .build()
            .unwrap();
        validate_spec(&spec_with(chart), &paper_section52_registry()).unwrap();
    }

    #[test]
    fn partial_self_loop_passes_but_certain_self_loop_fails() {
        let ok = ChartBuilder::new("S")
            .initial("i")
            .activity_state("a", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "a", 0.5, EcaRule::default())
            .transition("a", "f", 0.5, EcaRule::default())
            .build()
            .unwrap();
        validate_chart(&ok).unwrap();

        let mut bad = ok.clone();
        bad.transitions[1].probability = 1.0;
        bad.transitions.remove(2);
        assert!(matches!(validate_chart(&bad), Err(SpecError::CertainSelfLoop { .. })));
    }

    #[test]
    fn missing_initial_or_final_fails() {
        let chart = StateChart { name: "X".into(), states: vec![], transitions: vec![] };
        assert!(matches!(
            validate_chart(&chart),
            Err(SpecError::InitialStateCount { found: 0, .. })
        ));

        let two_finals = ChartBuilder::new("F2")
            .initial("i")
            .activity_state("a", "A")
            .final_state("f1")
            .final_state("f2")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "f1", 1.0, EcaRule::default())
            .build()
            .unwrap();
        assert!(matches!(
            validate_chart(&two_finals),
            Err(SpecError::FinalStateCount { found: 2, .. })
        ));
    }

    #[test]
    fn empty_workflow_fails() {
        let chart = ChartBuilder::new("E")
            .initial("i")
            .final_state("f")
            .transition("i", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        assert!(matches!(validate_chart(&chart), Err(SpecError::EmptyWorkflow { .. })));
    }

    #[test]
    fn initial_must_have_single_certain_transition() {
        let split_initial = ChartBuilder::new("I")
            .initial("i")
            .activity_state("a", "A")
            .activity_state("b", "A")
            .final_state("f")
            .transition("i", "a", 0.5, EcaRule::default())
            .transition("i", "b", 0.5, EcaRule::default())
            .transition("a", "f", 1.0, EcaRule::default())
            .transition("b", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        assert!(matches!(
            validate_chart(&split_initial),
            Err(SpecError::InvalidInitialTransition { .. })
        ));
    }

    #[test]
    fn final_with_outgoing_fails() {
        let mut chart = linear_chart();
        let f = chart.state_by_name("f").unwrap();
        let a = chart.state_by_name("a").unwrap();
        chart.transitions.push(Transition {
            from: f,
            to: a,
            probability: 1.0,
            rule: EcaRule::default(),
        });
        assert!(matches!(validate_chart(&chart), Err(SpecError::FinalStateHasOutgoing { .. })));
    }

    #[test]
    fn bad_probability_sums_fail() {
        let chart = ChartBuilder::new("P")
            .initial("i")
            .activity_state("a", "A")
            .activity_state("b", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "b", 0.5, EcaRule::default())
            .transition("a", "f", 0.3, EcaRule::default())
            .transition("b", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        assert!(matches!(
            validate_chart(&chart),
            Err(SpecError::ProbabilitiesDontSum { sum, .. }) if (sum - 0.8).abs() < 1e-12
        ));
    }

    #[test]
    fn negative_probability_fails() {
        let mut chart = linear_chart();
        chart.transitions[1].probability = -0.2;
        assert!(matches!(validate_chart(&chart), Err(SpecError::InvalidProbability { .. })));
    }

    #[test]
    fn dead_end_fails() {
        let chart = ChartBuilder::new("D")
            .initial("i")
            .activity_state("a", "A")
            .activity_state("dead", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "dead", 0.5, EcaRule::default())
            .transition("a", "f", 0.5, EcaRule::default())
            .build()
            .unwrap();
        assert!(matches!(
            validate_chart(&chart),
            Err(SpecError::DeadEndState { state, .. }) if state == "dead"
        ));
    }

    #[test]
    fn unreachable_state_fails() {
        let chart = ChartBuilder::new("U")
            .initial("i")
            .activity_state("a", "A")
            .activity_state("island", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "f", 1.0, EcaRule::default())
            .transition("island", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        assert!(matches!(
            validate_chart(&chart),
            Err(SpecError::UnreachableState { state, .. }) if state == "island"
        ));
    }

    #[test]
    fn final_unreachable_from_trap_fails() {
        let chart = ChartBuilder::new("T")
            .initial("i")
            .activity_state("a", "A")
            .activity_state("t1", "A")
            .activity_state("t2", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "t1", 0.5, EcaRule::default())
            .transition("a", "f", 0.5, EcaRule::default())
            .transition("t1", "t2", 1.0, EcaRule::default())
            .transition("t2", "t1", 1.0, EcaRule::default())
            .build()
            .unwrap();
        assert!(matches!(validate_chart(&chart), Err(SpecError::FinalNotReachable { .. })));
    }

    #[test]
    fn out_of_range_transition_index_fails() {
        let mut chart = linear_chart();
        chart.transitions[0].to = StateId(99);
        assert!(matches!(
            validate_chart(&chart),
            Err(SpecError::StateIndexOutOfRange { index: 99, .. })
        ));
    }

    #[test]
    fn unknown_activity_fails_spec_validation() {
        let chart = ChartBuilder::new("A")
            .initial("i")
            .activity_state("a", "Ghost")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        let spec = spec_with(chart);
        assert!(matches!(
            validate_spec(&spec, &paper_section52_registry()),
            Err(SpecError::UnknownActivity { activity, .. }) if activity == "Ghost"
        ));
    }

    #[test]
    fn wrong_load_length_fails() {
        let spec = WorkflowSpec::new(
            "T",
            linear_chart(),
            [ActivitySpec::new("A", ActivityKind::Automated, 2.0, vec![1.0])],
        );
        assert!(matches!(
            validate_spec(&spec, &paper_section52_registry()),
            Err(SpecError::ActivityLoadLength { expected: 3, actual: 1, .. })
        ));
    }

    #[test]
    fn invalid_activity_parameters_fail() {
        let mk = |dur: f64, scv: f64, load: Vec<f64>| {
            WorkflowSpec::new(
                "T",
                linear_chart(),
                [ActivitySpec::new("A", ActivityKind::Automated, dur, load).with_duration_scv(scv)],
            )
        };
        let reg = paper_section52_registry();
        assert!(matches!(
            validate_spec(&mk(0.0, 1.0, vec![1.0; 3]), &reg),
            Err(SpecError::InvalidActivityParameter { what: "mean duration", .. })
        ));
        assert!(matches!(
            validate_spec(&mk(1.0, -1.0, vec![1.0; 3]), &reg),
            Err(SpecError::InvalidActivityParameter { what: "duration SCV", .. })
        ));
        assert!(matches!(
            validate_spec(&mk(1.0, 1.0, vec![1.0, -2.0, 0.0]), &reg),
            Err(SpecError::InvalidActivityParameter { what: "load entry", .. })
        ));
    }

    #[test]
    fn nested_charts_are_validated_recursively() {
        let bad_inner = ChartBuilder::new("inner")
            .initial("i")
            .activity_state("w", "A")
            .final_state("f")
            .transition("i", "w", 1.0, EcaRule::default())
            .transition("w", "f", 0.5, EcaRule::default()) // sums to 0.5
            .build()
            .unwrap();
        let outer = ChartBuilder::new("outer")
            .initial("i")
            .nested_state("sub", bad_inner)
            .final_state("f")
            .transition("i", "sub", 1.0, EcaRule::default())
            .transition("sub", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        let spec = spec_with(outer);
        assert!(matches!(
            validate_spec(&spec, &paper_section52_registry()),
            Err(SpecError::ProbabilitiesDontSum { chart, .. }) if chart == "inner"
        ));
    }

    #[test]
    fn empty_nested_state_fails() {
        let outer = StateChart {
            name: "outer".into(),
            states: vec![
                crate::spec::ChartState { name: "i".into(), kind: StateKind::Initial },
                crate::spec::ChartState {
                    name: "sub".into(),
                    kind: StateKind::Nested { charts: vec![] },
                },
                crate::spec::ChartState { name: "f".into(), kind: StateKind::Final },
            ],
            transitions: vec![
                Transition { from: StateId(0), to: StateId(1), probability: 1.0, rule: EcaRule::default() },
                Transition { from: StateId(1), to: StateId(2), probability: 1.0, rule: EcaRule::default() },
            ],
        };
        let spec = spec_with(outer);
        assert!(matches!(
            validate_spec(&spec, &paper_section52_registry()),
            Err(SpecError::EmptyNestedState { .. })
        ));
    }
}
