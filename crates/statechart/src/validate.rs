//! Static validation of workflow specifications.
//!
//! A specification must satisfy the structural assumptions the paper's
//! stochastic model rests on (Secs. 3.1–3.2): a single initial and a
//! single final state per chart, certain absorption, outgoing transition
//! probabilities that form distributions, and an activity table covering
//! every referenced activity with load vectors matching the architectural
//! model.
//!
//! Both entry points are thin fail-first wrappers over the complete walk
//! in [`crate::lint`]: they report the *first* rule the lint pass finds
//! violated. Use [`crate::lint::lint_spec`] to see every finding at once.

use crate::arch::ServerTypeRegistry;
use crate::error::SpecError;
use crate::lint::{collect_chart_errors, collect_spec_errors};
use crate::spec::{StateChart, WorkflowSpec};

/// Tolerance for outgoing-probability sums.
pub const PROBABILITY_TOLERANCE: f64 = 1e-9;

/// Validates a whole workflow specification (all nesting levels) against
/// a server-type registry.
///
/// # Errors
/// The first violated rule, as a [`SpecError`].
pub fn validate_spec(spec: &WorkflowSpec, registry: &ServerTypeRegistry) -> Result<(), SpecError> {
    match collect_spec_errors(spec, registry).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Validates the *structure* of a single chart (no activity-table or
/// registry knowledge; use [`validate_spec`] for the full check).
///
/// # Errors
/// The first violated rule, as a [`SpecError`].
pub fn validate_chart(chart: &StateChart) -> Result<(), SpecError> {
    match collect_chart_errors(chart).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::paper_section52_registry;
    use crate::builder::ChartBuilder;
    use crate::spec::{
        ActivityKind, ActivitySpec, EcaRule, StateId, StateKind, Transition, WorkflowSpec,
    };

    fn linear_chart() -> StateChart {
        ChartBuilder::new("L")
            .initial("i")
            .activity_state("a", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "f", 1.0, EcaRule::default())
            .build()
            .unwrap()
    }

    fn spec_with(chart: StateChart) -> WorkflowSpec {
        WorkflowSpec::new(
            "T",
            chart,
            [ActivitySpec::new(
                "A",
                ActivityKind::Automated,
                2.0,
                vec![1.0, 1.0, 1.0],
            )],
        )
    }

    #[test]
    fn valid_linear_chart_passes() {
        let reg = paper_section52_registry();
        validate_spec(&spec_with(linear_chart()), &reg).unwrap();
    }

    #[test]
    fn branching_with_probabilities_passes() {
        let chart = ChartBuilder::new("B")
            .initial("i")
            .activity_state("a", "A")
            .activity_state("b", "A")
            .activity_state("c", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "b", 0.4, EcaRule::default())
            .transition("a", "c", 0.6, EcaRule::default())
            .transition("b", "f", 1.0, EcaRule::default())
            .transition("c", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        validate_spec(&spec_with(chart), &paper_section52_registry()).unwrap();
    }

    #[test]
    fn loop_back_passes() {
        let chart = ChartBuilder::new("Loop")
            .initial("i")
            .activity_state("a", "A")
            .activity_state("b", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "b", 1.0, EcaRule::default())
            .transition("b", "a", 0.3, EcaRule::default())
            .transition("b", "f", 0.7, EcaRule::default())
            .build()
            .unwrap();
        validate_spec(&spec_with(chart), &paper_section52_registry()).unwrap();
    }

    #[test]
    fn partial_self_loop_passes_but_certain_self_loop_fails() {
        let ok = ChartBuilder::new("S")
            .initial("i")
            .activity_state("a", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "a", 0.5, EcaRule::default())
            .transition("a", "f", 0.5, EcaRule::default())
            .build()
            .unwrap();
        validate_chart(&ok).unwrap();

        let mut bad = ok.clone();
        bad.transitions[1].probability = 1.0;
        bad.transitions.remove(2);
        assert!(matches!(
            validate_chart(&bad),
            Err(SpecError::CertainSelfLoop { .. })
        ));
    }

    #[test]
    fn missing_initial_or_final_fails() {
        let chart = StateChart {
            name: "X".into(),
            states: vec![],
            transitions: vec![],
        };
        assert!(matches!(
            validate_chart(&chart),
            Err(SpecError::InitialStateCount { found: 0, .. })
        ));

        let two_finals = ChartBuilder::new("F2")
            .initial("i")
            .activity_state("a", "A")
            .final_state("f1")
            .final_state("f2")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "f1", 1.0, EcaRule::default())
            .build()
            .unwrap();
        assert!(matches!(
            validate_chart(&two_finals),
            Err(SpecError::FinalStateCount { found: 2, .. })
        ));
    }

    #[test]
    fn empty_workflow_fails() {
        let chart = ChartBuilder::new("E")
            .initial("i")
            .final_state("f")
            .transition("i", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        assert!(matches!(
            validate_chart(&chart),
            Err(SpecError::EmptyWorkflow { .. })
        ));
    }

    #[test]
    fn initial_must_have_single_certain_transition() {
        let split_initial = ChartBuilder::new("I")
            .initial("i")
            .activity_state("a", "A")
            .activity_state("b", "A")
            .final_state("f")
            .transition("i", "a", 0.5, EcaRule::default())
            .transition("i", "b", 0.5, EcaRule::default())
            .transition("a", "f", 1.0, EcaRule::default())
            .transition("b", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        assert!(matches!(
            validate_chart(&split_initial),
            Err(SpecError::InvalidInitialTransition { .. })
        ));
    }

    #[test]
    fn final_with_outgoing_fails() {
        let mut chart = linear_chart();
        let f = chart.state_by_name("f").unwrap();
        let a = chart.state_by_name("a").unwrap();
        chart.transitions.push(Transition {
            from: f,
            to: a,
            probability: 1.0,
            rule: EcaRule::default(),
        });
        assert!(matches!(
            validate_chart(&chart),
            Err(SpecError::FinalStateHasOutgoing { .. })
        ));
    }

    #[test]
    fn bad_probability_sums_fail() {
        let chart = ChartBuilder::new("P")
            .initial("i")
            .activity_state("a", "A")
            .activity_state("b", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "b", 0.5, EcaRule::default())
            .transition("a", "f", 0.3, EcaRule::default())
            .transition("b", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        assert!(matches!(
            validate_chart(&chart),
            Err(SpecError::ProbabilitiesDontSum { sum, .. }) if (sum - 0.8).abs() < 1e-12
        ));
    }

    #[test]
    fn negative_probability_fails() {
        let mut chart = linear_chart();
        chart.transitions[1].probability = -0.2;
        assert!(matches!(
            validate_chart(&chart),
            Err(SpecError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn dead_end_fails() {
        let chart = ChartBuilder::new("D")
            .initial("i")
            .activity_state("a", "A")
            .activity_state("dead", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "dead", 0.5, EcaRule::default())
            .transition("a", "f", 0.5, EcaRule::default())
            .build()
            .unwrap();
        assert!(matches!(
            validate_chart(&chart),
            Err(SpecError::DeadEndState { state, .. }) if state == "dead"
        ));
    }

    #[test]
    fn unreachable_state_fails() {
        let chart = ChartBuilder::new("U")
            .initial("i")
            .activity_state("a", "A")
            .activity_state("island", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "f", 1.0, EcaRule::default())
            .transition("island", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        assert!(matches!(
            validate_chart(&chart),
            Err(SpecError::UnreachableState { state, .. }) if state == "island"
        ));
    }

    #[test]
    fn final_unreachable_from_trap_fails() {
        let chart = ChartBuilder::new("T")
            .initial("i")
            .activity_state("a", "A")
            .activity_state("t1", "A")
            .activity_state("t2", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "t1", 0.5, EcaRule::default())
            .transition("a", "f", 0.5, EcaRule::default())
            .transition("t1", "t2", 1.0, EcaRule::default())
            .transition("t2", "t1", 1.0, EcaRule::default())
            .build()
            .unwrap();
        assert!(matches!(
            validate_chart(&chart),
            Err(SpecError::FinalNotReachable { .. })
        ));
    }

    #[test]
    fn out_of_range_transition_index_fails() {
        let mut chart = linear_chart();
        chart.transitions[0].to = StateId(99);
        assert!(matches!(
            validate_chart(&chart),
            Err(SpecError::StateIndexOutOfRange { index: 99, .. })
        ));
    }

    #[test]
    fn unknown_activity_fails_spec_validation() {
        let chart = ChartBuilder::new("A")
            .initial("i")
            .activity_state("a", "Ghost")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        let spec = spec_with(chart);
        assert!(matches!(
            validate_spec(&spec, &paper_section52_registry()),
            Err(SpecError::UnknownActivity { activity, .. }) if activity == "Ghost"
        ));
    }

    #[test]
    fn wrong_load_length_fails() {
        let spec = WorkflowSpec::new(
            "T",
            linear_chart(),
            [ActivitySpec::new(
                "A",
                ActivityKind::Automated,
                2.0,
                vec![1.0],
            )],
        );
        assert!(matches!(
            validate_spec(&spec, &paper_section52_registry()),
            Err(SpecError::ActivityLoadLength {
                expected: 3,
                actual: 1,
                ..
            })
        ));
    }

    #[test]
    fn invalid_activity_parameters_fail() {
        let mk =
            |dur: f64, scv: f64, load: Vec<f64>| {
                WorkflowSpec::new(
                    "T",
                    linear_chart(),
                    [ActivitySpec::new("A", ActivityKind::Automated, dur, load)
                        .with_duration_scv(scv)],
                )
            };
        let reg = paper_section52_registry();
        assert!(matches!(
            validate_spec(&mk(0.0, 1.0, vec![1.0; 3]), &reg),
            Err(SpecError::InvalidActivityParameter {
                what: "mean duration",
                ..
            })
        ));
        assert!(matches!(
            validate_spec(&mk(1.0, -1.0, vec![1.0; 3]), &reg),
            Err(SpecError::InvalidActivityParameter {
                what: "duration SCV",
                ..
            })
        ));
        assert!(matches!(
            validate_spec(&mk(1.0, 1.0, vec![1.0, -2.0, 0.0]), &reg),
            Err(SpecError::InvalidActivityParameter {
                what: "load entry",
                ..
            })
        ));
    }

    #[test]
    fn nested_charts_are_validated_recursively() {
        let bad_inner = ChartBuilder::new("inner")
            .initial("i")
            .activity_state("w", "A")
            .final_state("f")
            .transition("i", "w", 1.0, EcaRule::default())
            .transition("w", "f", 0.5, EcaRule::default()) // sums to 0.5
            .build()
            .unwrap();
        let outer = ChartBuilder::new("outer")
            .initial("i")
            .nested_state("sub", bad_inner)
            .final_state("f")
            .transition("i", "sub", 1.0, EcaRule::default())
            .transition("sub", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        let spec = spec_with(outer);
        assert!(matches!(
            validate_spec(&spec, &paper_section52_registry()),
            Err(SpecError::ProbabilitiesDontSum { chart, .. }) if chart == "inner"
        ));
    }

    #[test]
    fn empty_nested_state_fails() {
        let outer = StateChart {
            name: "outer".into(),
            states: vec![
                crate::spec::ChartState {
                    name: "i".into(),
                    kind: StateKind::Initial,
                },
                crate::spec::ChartState {
                    name: "sub".into(),
                    kind: StateKind::Nested { charts: vec![] },
                },
                crate::spec::ChartState {
                    name: "f".into(),
                    kind: StateKind::Final,
                },
            ],
            transitions: vec![
                Transition {
                    from: StateId(0),
                    to: StateId(1),
                    probability: 1.0,
                    rule: EcaRule::default(),
                },
                Transition {
                    from: StateId(1),
                    to: StateId(2),
                    probability: 1.0,
                    rule: EcaRule::default(),
                },
            ],
        };
        let spec = spec_with(outer);
        assert!(matches!(
            validate_spec(&spec, &paper_section52_registry()),
            Err(SpecError::EmptyNestedState { .. })
        ));
    }
}
