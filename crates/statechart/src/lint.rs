//! The spec/structure lint pass (`W0xx` diagnostics).
//!
//! [`lint_spec`] walks a [`WorkflowSpec`] against a
//! [`ServerTypeRegistry`] and reports the **complete** list of findings
//! — unlike [`crate::validate::validate_spec`], which is a thin
//! fail-first wrapper over the same walk and stops at the first
//! error-level finding. Both share [`collect_spec_errors`], so the two
//! entry points can never disagree about what is wrong.
//!
//! The checks enforce the structural assumptions the paper's stochastic
//! model rests on (Secs. 3.1–3.2 and 4.1): single initial/final states,
//! probability rows that form distributions, certain absorption, and an
//! activity table consistent with the architectural model.

use wfms_diag::{codes, Diagnostic, Diagnostics, Location};

use crate::arch::ServerTypeRegistry;
use crate::error::SpecError;
use crate::spec::{StateChart, StateId, StateKind, WorkflowSpec};
use crate::validate::PROBABILITY_TOLERANCE;

/// Runs the full spec/structure pass and returns every finding.
///
/// Error-level findings correspond one-to-one to [`SpecError`] values
/// (in the same order the fail-first validator would discover them);
/// warning/hint findings (e.g. orphaned activities) have no `SpecError`
/// counterpart and never fail validation.
pub fn lint_spec(spec: &WorkflowSpec, registry: &ServerTypeRegistry) -> Diagnostics {
    let mut out: Diagnostics = collect_spec_errors(spec, registry)
        .iter()
        .map(spec_error_diagnostic)
        .collect();

    // Lint-only: activities defined in the table but referenced nowhere.
    let referenced = spec.chart.referenced_activities();
    for name in spec.activities.keys() {
        if !referenced.contains(name) {
            out.push(Diagnostic::warning(
                codes::W_ORPHANED_ACTIVITY,
                Location::Activity {
                    activity: name.clone(),
                },
                format!("activity {name:?} is defined but referenced by no state"),
            ));
        }
    }
    out
}

/// Structure-only lint of a single chart (no activity table/registry
/// knowledge), complete rather than fail-first.
pub fn lint_chart(chart: &StateChart) -> Diagnostics {
    collect_chart_errors(chart)
        .iter()
        .map(spec_error_diagnostic)
        .collect()
}

/// Collects every rule violation of a whole specification, in the order
/// the fail-first validator checks them.
pub fn collect_spec_errors(spec: &WorkflowSpec, registry: &ServerTypeRegistry) -> Vec<SpecError> {
    let mut out = Vec::new();

    // Activity table: parameters and load-vector lengths.
    for activity in spec.activities.values() {
        if !(activity.mean_duration.is_finite() && activity.mean_duration > 0.0) {
            out.push(SpecError::InvalidActivityParameter {
                activity: activity.name.clone(),
                what: "mean duration",
                value: activity.mean_duration,
            });
        }
        if !(activity.duration_scv.is_finite() && activity.duration_scv > 0.0) {
            out.push(SpecError::InvalidActivityParameter {
                activity: activity.name.clone(),
                what: "duration SCV",
                value: activity.duration_scv,
            });
        }
        if activity.load.len() != registry.len() {
            out.push(SpecError::ActivityLoadLength {
                activity: activity.name.clone(),
                expected: registry.len(),
                actual: activity.load.len(),
            });
        }
        for &l in &activity.load {
            if !(l.is_finite() && l >= 0.0) {
                out.push(SpecError::InvalidActivityParameter {
                    activity: activity.name.clone(),
                    what: "load entry",
                    value: l,
                });
            }
        }
    }
    collect_chart_recursive(&spec.chart, spec, &mut out);
    out
}

fn collect_chart_recursive(chart: &StateChart, spec: &WorkflowSpec, out: &mut Vec<SpecError>) {
    out.extend(collect_chart_errors(chart));
    for state in &chart.states {
        match &state.kind {
            StateKind::Activity { activity } if spec.activity(activity).is_none() => {
                out.push(SpecError::UnknownActivity {
                    chart: chart.name.clone(),
                    activity: activity.clone(),
                });
            }
            StateKind::Nested { charts } => {
                if charts.is_empty() {
                    out.push(SpecError::EmptyNestedState {
                        chart: chart.name.clone(),
                        state: state.name.clone(),
                    });
                }
                for sub in charts {
                    collect_chart_recursive(sub, spec, out);
                }
            }
            _ => {}
        }
    }
}

/// Collects every structural violation of one chart.
///
/// Checks run in the fail-first validator's order, so the first entry is
/// exactly the error [`crate::validate::validate_chart`] reports. Later
/// checks that would index out of bounds (or report noise) under earlier
/// violations are skipped rather than aborted, keeping the list both
/// complete and meaningful.
pub fn collect_chart_errors(chart: &StateChart) -> Vec<SpecError> {
    let mut out = Vec::new();
    let n = chart.states.len();
    let cname = || chart.name.clone();

    // Unique state names.
    for (i, s) in chart.states.iter().enumerate() {
        if chart.states[..i].iter().any(|other| other.name == s.name) {
            out.push(SpecError::DuplicateState {
                chart: cname(),
                state: s.name.clone(),
            });
        }
    }

    // Transition endpoint indices (deserialized charts may be malformed).
    let mut indices_ok = true;
    for t in &chart.transitions {
        for idx in [t.from.0, t.to.0] {
            if idx >= n {
                out.push(SpecError::StateIndexOutOfRange {
                    chart: cname(),
                    index: idx,
                    n,
                });
                indices_ok = false;
            }
        }
    }

    // Exactly one initial, exactly one final.
    let initials: Vec<StateId> = chart
        .states
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s.kind, StateKind::Initial))
        .map(|(i, _)| StateId(i))
        .collect();
    if initials.len() != 1 {
        out.push(SpecError::InitialStateCount {
            chart: cname(),
            found: initials.len(),
        });
    }
    let finals: Vec<StateId> = chart
        .states
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s.kind, StateKind::Final))
        .map(|(i, _)| StateId(i))
        .collect();
    if finals.len() != 1 {
        out.push(SpecError::FinalStateCount {
            chart: cname(),
            found: finals.len(),
        });
    }

    if initials.len() == 1 && finals.len() == 1 && n == 2 {
        // Only initial and final: nothing executes. Every later check
        // would only restate this, so the walk of this chart ends here.
        out.push(SpecError::EmptyWorkflow { chart: cname() });
        return out;
    }

    if !indices_ok {
        // The remaining checks index states by transition endpoints.
        return out;
    }

    // Probabilities are well-formed.
    for t in &chart.transitions {
        if !(t.probability.is_finite() && (0.0..=1.0).contains(&t.probability)) {
            out.push(SpecError::InvalidProbability {
                chart: cname(),
                state: chart.states[t.from.0].name.clone(),
                probability: t.probability,
            });
        }
    }

    // Self-loop rules.
    for t in &chart.transitions {
        if t.from == t.to {
            let s = &chart.states[t.from.0];
            if matches!(s.kind, StateKind::Initial | StateKind::Final) {
                out.push(SpecError::PseudoStateSelfLoop {
                    chart: cname(),
                    state: s.name.clone(),
                });
            } else if t.probability >= 1.0 - PROBABILITY_TOLERANCE {
                out.push(SpecError::CertainSelfLoop {
                    chart: cname(),
                    state: s.name.clone(),
                });
            }
        }
    }

    // Initial: exactly one outgoing with probability 1 to a non-final state.
    if let (&[initial], &[final_]) = (initials.as_slice(), finals.as_slice()) {
        let outgoing: Vec<_> = chart.outgoing(initial).collect();
        let ok = outgoing.len() == 1
            && (outgoing[0].probability - 1.0).abs() <= PROBABILITY_TOLERANCE
            && outgoing[0].to != final_
            && outgoing[0].to != initial;
        if !ok {
            out.push(SpecError::InvalidInitialTransition { chart: cname() });
        }
    }

    if let &[final_] = finals.as_slice() {
        // Final: no outgoing.
        if chart.outgoing(final_).next().is_some() {
            out.push(SpecError::FinalStateHasOutgoing { chart: cname() });
        }

        // Every non-final state has outgoing transitions summing to one.
        for (i, s) in chart.states.iter().enumerate() {
            let id = StateId(i);
            if id == final_ {
                continue;
            }
            let mut sum = 0.0;
            let mut any = false;
            for t in chart.outgoing(id) {
                any = true;
                sum += t.probability;
            }
            if !any {
                out.push(SpecError::DeadEndState {
                    chart: cname(),
                    state: s.name.clone(),
                });
            } else if (sum - 1.0).abs() > PROBABILITY_TOLERANCE {
                out.push(SpecError::ProbabilitiesDontSum {
                    chart: cname(),
                    state: s.name.clone(),
                    sum,
                });
            }
        }
    }

    // Reachability: every state reachable from initial …
    if let &[initial] = initials.as_slice() {
        let fwd = reachable_from(chart, initial, n);
        for (i, s) in chart.states.iter().enumerate() {
            if !fwd[i] {
                out.push(SpecError::UnreachableState {
                    chart: cname(),
                    state: s.name.clone(),
                });
            }
        }
    }
    // … and the final state reachable from every state (certain absorption).
    if let &[final_] = finals.as_slice() {
        let bwd = coreachable_to(chart, final_, n);
        for (i, s) in chart.states.iter().enumerate() {
            if !bwd[i] {
                out.push(SpecError::FinalNotReachable {
                    chart: cname(),
                    state: s.name.clone(),
                });
            }
        }
    }

    out
}

fn reachable_from(chart: &StateChart, start: StateId, n: usize) -> Vec<bool> {
    let mut seen = vec![false; n];
    let mut stack = vec![start.0];
    seen[start.0] = true;
    while let Some(s) = stack.pop() {
        for t in chart.outgoing(StateId(s)) {
            if t.probability > PROBABILITY_TOLERANCE && !seen[t.to.0] {
                seen[t.to.0] = true;
                stack.push(t.to.0);
            }
        }
    }
    seen
}

fn coreachable_to(chart: &StateChart, target: StateId, n: usize) -> Vec<bool> {
    let mut seen = vec![false; n];
    seen[target.0] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for t in &chart.transitions {
            if t.probability > PROBABILITY_TOLERANCE && seen[t.to.0] && !seen[t.from.0] {
                seen[t.from.0] = true;
                changed = true;
            }
        }
    }
    seen
}

/// Maps a [`SpecError`] onto its diagnostic (code, severity, location).
pub fn spec_error_diagnostic(e: &SpecError) -> Diagnostic {
    let (code, location) = match e {
        SpecError::DuplicateState { chart, state } => (
            codes::W_DUPLICATE_STATE,
            Location::State {
                chart: chart.clone(),
                state: state.clone(),
            },
        ),
        SpecError::UnknownState { chart, state } => (
            codes::W_UNKNOWN_STATE,
            Location::State {
                chart: chart.clone(),
                state: state.clone(),
            },
        ),
        SpecError::StateIndexOutOfRange { chart, .. } => (
            codes::W_STATE_INDEX_RANGE,
            Location::Chart {
                chart: chart.clone(),
            },
        ),
        SpecError::InitialStateCount { chart, .. } => (
            codes::W_INITIAL_COUNT,
            Location::Chart {
                chart: chart.clone(),
            },
        ),
        SpecError::FinalStateCount { chart, .. } => (
            codes::W_FINAL_COUNT,
            Location::Chart {
                chart: chart.clone(),
            },
        ),
        SpecError::InvalidInitialTransition { chart } => (
            codes::W_INITIAL_TRANSITION,
            Location::Chart {
                chart: chart.clone(),
            },
        ),
        SpecError::FinalStateHasOutgoing { chart } => (
            codes::W_FINAL_HAS_OUTGOING,
            Location::Chart {
                chart: chart.clone(),
            },
        ),
        SpecError::InvalidProbability { chart, state, .. } => (
            codes::W_PROBABILITY_RANGE,
            Location::State {
                chart: chart.clone(),
                state: state.clone(),
            },
        ),
        SpecError::ProbabilitiesDontSum { chart, state, .. } => (
            codes::W_PROBABILITY_SUM,
            Location::State {
                chart: chart.clone(),
                state: state.clone(),
            },
        ),
        SpecError::DeadEndState { chart, state } => (
            codes::W_DEAD_END,
            Location::State {
                chart: chart.clone(),
                state: state.clone(),
            },
        ),
        SpecError::UnreachableState { chart, state } => (
            codes::W_UNREACHABLE,
            Location::State {
                chart: chart.clone(),
                state: state.clone(),
            },
        ),
        SpecError::FinalNotReachable { chart, state } => (
            codes::W_FINAL_NOT_REACHABLE,
            Location::State {
                chart: chart.clone(),
                state: state.clone(),
            },
        ),
        SpecError::CertainSelfLoop { chart, state } => (
            codes::W_CERTAIN_SELF_LOOP,
            Location::State {
                chart: chart.clone(),
                state: state.clone(),
            },
        ),
        SpecError::PseudoStateSelfLoop { chart, state } => (
            codes::W_PSEUDO_SELF_LOOP,
            Location::State {
                chart: chart.clone(),
                state: state.clone(),
            },
        ),
        SpecError::UnknownActivity { activity, .. } => (
            codes::W_UNKNOWN_ACTIVITY,
            Location::Activity {
                activity: activity.clone(),
            },
        ),
        SpecError::ActivityLoadLength { activity, .. } => (
            codes::W_ACTIVITY_LOAD_LENGTH,
            Location::Activity {
                activity: activity.clone(),
            },
        ),
        SpecError::InvalidActivityParameter { activity, .. } => (
            codes::W_ACTIVITY_PARAMETER,
            Location::Activity {
                activity: activity.clone(),
            },
        ),
        SpecError::EmptyNestedState { chart, state } => (
            codes::W_EMPTY_NESTED,
            Location::State {
                chart: chart.clone(),
                state: state.clone(),
            },
        ),
        SpecError::EmptyWorkflow { chart } => (
            codes::W_EMPTY_WORKFLOW,
            Location::Chart {
                chart: chart.clone(),
            },
        ),
        SpecError::Arch(_) => (codes::W_STATE_INDEX_RANGE, Location::Global),
    };
    // `SpecError` messages open with the same chart/state context the
    // location renders; strip it so reports don't say it twice.
    let mut message = e.to_string();
    if let Some(rest) = message.strip_prefix(&format!("{location}: ")) {
        message = rest.to_string();
    }
    Diagnostic::error(code, location, message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::paper_section52_registry;
    use crate::builder::ChartBuilder;
    use crate::spec::{ActivityKind, ActivitySpec, EcaRule, WorkflowSpec};

    /// A spec with several *independent* defects: a dangling activity
    /// reference, a probability row off by 0.2, and an orphaned activity.
    fn multi_defect_spec() -> WorkflowSpec {
        let chart = ChartBuilder::new("Bad")
            .initial("i")
            .activity_state("a", "Ghost")
            .activity_state("b", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "b", 0.5, EcaRule::default())
            .transition("a", "f", 0.3, EcaRule::default())
            .transition("b", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        WorkflowSpec::new(
            "T",
            chart,
            [
                ActivitySpec::new("A", ActivityKind::Automated, 2.0, vec![1.0, 1.0, 1.0]),
                ActivitySpec::new("Unused", ActivityKind::Automated, 2.0, vec![1.0, 1.0, 1.0]),
            ],
        )
    }

    #[test]
    fn reports_all_defects_not_just_the_first() {
        let reg = paper_section52_registry();
        let d = lint_spec(&multi_defect_spec(), &reg);
        let codes_found = d.distinct_codes();
        assert!(
            codes_found.contains(&codes::W_PROBABILITY_SUM.to_string()),
            "{codes_found:?}"
        );
        assert!(
            codes_found.contains(&codes::W_UNKNOWN_ACTIVITY.to_string()),
            "{codes_found:?}"
        );
        assert!(
            codes_found.contains(&codes::W_ORPHANED_ACTIVITY.to_string()),
            "{codes_found:?}"
        );
        assert!(d.error_count() >= 2);
        assert_eq!(d.warning_count(), 1);
    }

    #[test]
    fn first_finding_matches_fail_first_validator() {
        let reg = paper_section52_registry();
        let spec = multi_defect_spec();
        let first = collect_spec_errors(&spec, &reg).into_iter().next().unwrap();
        let validated = crate::validate::validate_spec(&spec, &reg).unwrap_err();
        assert_eq!(first, validated);
    }

    #[test]
    fn clean_spec_yields_no_findings() {
        let chart = ChartBuilder::new("OK")
            .initial("i")
            .activity_state("a", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        let spec = WorkflowSpec::new(
            "T",
            chart,
            [ActivitySpec::new(
                "A",
                ActivityKind::Automated,
                2.0,
                vec![1.0, 1.0, 1.0],
            )],
        );
        let d = lint_spec(&spec, &paper_section52_registry());
        assert!(d.is_empty(), "{d}");
    }

    #[test]
    fn out_of_range_indices_do_not_panic_later_checks() {
        let mut chart = ChartBuilder::new("Idx")
            .initial("i")
            .activity_state("a", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        chart.transitions[1].to = crate::spec::StateId(99);
        let d = lint_chart(&chart);
        assert!(d.iter().any(|x| x.code == codes::W_STATE_INDEX_RANGE));
        // Gated checks were skipped; no panic, no spurious findings after.
        assert!(
            d.iter().all(|x| x.code == codes::W_STATE_INDEX_RANGE),
            "{d}"
        );
    }

    #[test]
    fn missing_pseudo_states_still_let_probability_checks_run() {
        // No initial, no final, and a bad probability: three findings.
        let chart = StateChart {
            name: "NoEnds".into(),
            states: vec![
                crate::spec::ChartState {
                    name: "a".into(),
                    kind: StateKind::Activity {
                        activity: "A".into(),
                    },
                },
                crate::spec::ChartState {
                    name: "b".into(),
                    kind: StateKind::Activity {
                        activity: "A".into(),
                    },
                },
                crate::spec::ChartState {
                    name: "c".into(),
                    kind: StateKind::Activity {
                        activity: "A".into(),
                    },
                },
            ],
            transitions: vec![crate::spec::Transition {
                from: StateId(0),
                to: StateId(1),
                probability: 1.5,
                rule: EcaRule::default(),
            }],
        };
        let d = lint_chart(&chart);
        let found = d.distinct_codes();
        assert!(found.contains(&codes::W_INITIAL_COUNT.to_string()));
        assert!(found.contains(&codes::W_FINAL_COUNT.to_string()));
        assert!(found.contains(&codes::W_PROBABILITY_RANGE.to_string()));
    }

    #[test]
    fn every_spec_error_maps_to_a_registered_code() {
        let reg = paper_section52_registry();
        let d = lint_spec(&multi_defect_spec(), &reg);
        for item in &d {
            assert!(
                wfms_diag::codes::lookup(&item.code).is_some(),
                "unregistered code {}",
                item.code
            );
        }
    }
}
