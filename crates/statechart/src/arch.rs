//! Architectural model of a distributed WFMS (Sec. 2 of the paper).
//!
//! A WFMS consists of `k` abstract *server types* — one communication
//! server type (e.g. an ORB), `m` workflow-engine types, and `n`
//! application-server types. Each type may be replicated on several
//! computers; the vector of replication degrees is the *system
//! configuration* `Y = (Y_1 … Y_k)`, and the vector of currently running
//! replicas is the *system state* `X ≤ Y`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a server type within a [`ServerTypeRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerTypeId(pub usize);

impl fmt::Display for ServerTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server-type#{}", self.0)
    }
}

/// The role a server type plays in the architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServerTypeKind {
    /// ORB-style communication middleware (exactly one type per WFMS in
    /// the paper's model, though the code does not enforce that).
    Communication,
    /// A workflow engine responsible for a set of (sub)workflow types.
    WorkflowEngine,
    /// An application server hosting invoked applications.
    ApplicationServer,
}

impl fmt::Display for ServerTypeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerTypeKind::Communication => write!(f, "communication server"),
            ServerTypeKind::WorkflowEngine => write!(f, "workflow engine"),
            ServerTypeKind::ApplicationServer => write!(f, "application server"),
        }
    }
}

/// Description of one server type: identity, dependability parameters
/// (`λ_x`, `μ_x` of Sec. 2) and service-time moments (`b_x`, `b_x^(2)` of
/// Sec. 4.4). All rates and times are **per minute** / **in minutes**.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerType {
    /// Human-readable name, e.g. `"ORB"` or `"engine:Shipping"`.
    pub name: String,
    /// Architectural role.
    pub kind: ServerTypeKind,
    /// Failure rate `λ_x` (reciprocal of mean time to failure, per minute).
    /// Failures include maintenance downtimes.
    pub failure_rate: f64,
    /// Repair rate `μ_x` (reciprocal of mean time to repair, per minute).
    pub repair_rate: f64,
    /// Mean service time `b_x` per service request, in minutes.
    pub service_time_mean: f64,
    /// Second moment `b_x^(2)` of the service time, in minutes².
    pub service_time_second_moment: f64,
}

impl ServerType {
    /// A server type whose service time is exponential with the given mean
    /// (second moment `2 b²`).
    pub fn with_exponential_service(
        name: impl Into<String>,
        kind: ServerTypeKind,
        failure_rate: f64,
        repair_rate: f64,
        service_time_mean: f64,
    ) -> Self {
        ServerType {
            name: name.into(),
            kind,
            failure_rate,
            repair_rate,
            service_time_mean,
            service_time_second_moment: 2.0 * service_time_mean * service_time_mean,
        }
    }

    /// A server type whose service time is deterministic (second moment
    /// `b²`).
    pub fn with_deterministic_service(
        name: impl Into<String>,
        kind: ServerTypeKind,
        failure_rate: f64,
        repair_rate: f64,
        service_time_mean: f64,
    ) -> Self {
        ServerType {
            name: name.into(),
            kind,
            failure_rate,
            repair_rate,
            service_time_mean,
            service_time_second_moment: service_time_mean * service_time_mean,
        }
    }

    /// Mean time to failure `1/λ_x` in minutes.
    pub fn mttf(&self) -> f64 {
        1.0 / self.failure_rate
    }

    /// Mean time to repair `1/μ_x` in minutes.
    pub fn mttr(&self) -> f64 {
        1.0 / self.repair_rate
    }

    /// Stand-alone availability of a single replica,
    /// `μ / (λ + μ) = MTTF / (MTTF + MTTR)`.
    pub fn single_availability(&self) -> f64 {
        self.repair_rate / (self.failure_rate + self.repair_rate)
    }
}

/// Errors raised by the architectural model.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchError {
    /// A rate or moment is non-positive or non-finite.
    InvalidParameter {
        /// Which parameter.
        what: &'static str,
        /// Server type name.
        server_type: String,
        /// Offending value.
        value: f64,
    },
    /// A [`ServerTypeId`] does not exist in the registry.
    UnknownServerType {
        /// The id that failed to resolve.
        id: ServerTypeId,
        /// Number of registered types.
        registered: usize,
    },
    /// A configuration / system-state vector has the wrong length.
    LengthMismatch {
        /// What the vector described.
        what: &'static str,
        /// Expected length (number of server types).
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A configuration must have at least one replica of every type.
    EmptyReplication {
        /// Server type with zero configured replicas.
        id: ServerTypeId,
    },
    /// A system state exceeds its configuration (`X_x > Y_x`).
    StateExceedsConfiguration {
        /// Offending server type.
        id: ServerTypeId,
        /// Available replicas claimed.
        available: usize,
        /// Configured replicas.
        configured: usize,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidParameter { what, server_type, value } => {
                write!(f, "invalid {what} ({value}) for server type {server_type:?}")
            }
            ArchError::UnknownServerType { id, registered } => {
                write!(f, "{id} not found ({registered} types registered)")
            }
            ArchError::LengthMismatch { what, expected, actual } => {
                write!(f, "{what} has length {actual}, expected {expected}")
            }
            ArchError::EmptyReplication { id } => {
                write!(f, "configuration assigns zero replicas to {id}")
            }
            ArchError::StateExceedsConfiguration { id, available, configured } => write!(
                f,
                "system state claims {available} available replicas of {id}, configured {configured}"
            ),
        }
    }
}

impl std::error::Error for ArchError {}

/// The set of server types of a WFMS, in a fixed index order that every
/// configuration, system state, and load vector follows.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerTypeRegistry {
    types: Vec<ServerType>,
}

impl ServerTypeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ServerTypeRegistry { types: Vec::new() }
    }

    /// Registers a server type and returns its id.
    ///
    /// # Errors
    /// [`ArchError::InvalidParameter`] for non-positive rates or moments.
    pub fn register(&mut self, server_type: ServerType) -> Result<ServerTypeId, ArchError> {
        let checks = [
            ("failure rate", server_type.failure_rate),
            ("repair rate", server_type.repair_rate),
            ("service time mean", server_type.service_time_mean),
            (
                "service time second moment",
                server_type.service_time_second_moment,
            ),
        ];
        for (what, value) in checks {
            if !(value.is_finite() && value > 0.0) {
                return Err(ArchError::InvalidParameter {
                    what,
                    server_type: server_type.name.clone(),
                    value,
                });
            }
        }
        let id = ServerTypeId(self.types.len());
        self.types.push(server_type);
        Ok(id)
    }

    /// Number of registered server types (`k`).
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// True when no types are registered.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Looks a server type up by id.
    ///
    /// # Errors
    /// [`ArchError::UnknownServerType`] for a stale id.
    pub fn get(&self, id: ServerTypeId) -> Result<&ServerType, ArchError> {
        self.types.get(id.0).ok_or(ArchError::UnknownServerType {
            id,
            registered: self.types.len(),
        })
    }

    /// Iterates `(id, type)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (ServerTypeId, &ServerType)> {
        self.types
            .iter()
            .enumerate()
            .map(|(i, t)| (ServerTypeId(i), t))
    }

    /// Finds a server type by name.
    pub fn find_by_name(&self, name: &str) -> Option<ServerTypeId> {
        self.types
            .iter()
            .position(|t| t.name == name)
            .map(ServerTypeId)
    }

    /// All ids of a given kind.
    pub fn ids_of_kind(&self, kind: ServerTypeKind) -> Vec<ServerTypeId> {
        self.iter()
            .filter(|(_, t)| t.kind == kind)
            .map(|(id, _)| id)
            .collect()
    }
}

/// A system configuration: replication degree `Y_x ≥ 1` per server type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Configuration {
    replicas: Vec<usize>,
}

impl Configuration {
    /// Builds a configuration, validating it against the registry.
    ///
    /// # Errors
    /// * [`ArchError::LengthMismatch`] when the vector length is not `k`.
    /// * [`ArchError::EmptyReplication`] when some `Y_x` is zero.
    pub fn new(registry: &ServerTypeRegistry, replicas: Vec<usize>) -> Result<Self, ArchError> {
        if replicas.len() != registry.len() {
            return Err(ArchError::LengthMismatch {
                what: "configuration",
                expected: registry.len(),
                actual: replicas.len(),
            });
        }
        for (i, &y) in replicas.iter().enumerate() {
            if y == 0 {
                return Err(ArchError::EmptyReplication {
                    id: ServerTypeId(i),
                });
            }
        }
        Ok(Configuration { replicas })
    }

    /// The minimal configuration: one replica of every type.
    pub fn minimal(registry: &ServerTypeRegistry) -> Self {
        Configuration {
            replicas: vec![1; registry.len()],
        }
    }

    /// Uniform configuration: `y` replicas of every type.
    ///
    /// # Errors
    /// [`ArchError::EmptyReplication`] when `y == 0`.
    pub fn uniform(registry: &ServerTypeRegistry, y: usize) -> Result<Self, ArchError> {
        Configuration::new(registry, vec![y; registry.len()])
    }

    /// Replication degree of server type `id`.
    ///
    /// # Errors
    /// [`ArchError::UnknownServerType`] for a stale id.
    pub fn replicas(&self, id: ServerTypeId) -> Result<usize, ArchError> {
        self.replicas
            .get(id.0)
            .copied()
            .ok_or(ArchError::UnknownServerType {
                id,
                registered: self.replicas.len(),
            })
    }

    /// The raw replication vector `Y`.
    pub fn as_slice(&self) -> &[usize] {
        &self.replicas
    }

    /// Number of server types `k`.
    pub fn k(&self) -> usize {
        self.replicas.len()
    }

    /// Total number of servers — the paper's cost measure (Sec. 7.1: "the
    /// cost of a configuration is assumed to be proportional to the total
    /// number of servers").
    pub fn total_servers(&self) -> usize {
        self.replicas.iter().sum()
    }

    /// Returns a copy with one more replica of `id`.
    ///
    /// # Errors
    /// [`ArchError::UnknownServerType`] for a stale id.
    pub fn with_added_replica(&self, id: ServerTypeId) -> Result<Configuration, ArchError> {
        if id.0 >= self.replicas.len() {
            return Err(ArchError::UnknownServerType {
                id,
                registered: self.replicas.len(),
            });
        }
        let mut replicas = self.replicas.clone();
        replicas[id.0] += 1;
        Ok(Configuration { replicas })
    }

    /// The fully-available system state for this configuration (`X = Y`).
    pub fn full_state(&self) -> SystemState {
        SystemState {
            available: self.replicas.clone(),
        }
    }

    /// Number of distinct system states `Π (Y_x + 1)` of the availability
    /// model for this configuration.
    pub fn system_state_count(&self) -> usize {
        self.replicas.iter().map(|&y| y + 1).product()
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Y(")?;
        for (i, y) in self.replicas.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{y}")?;
        }
        write!(f, ")")
    }
}

/// A system state: the number of currently available replicas `X_x ≤ Y_x`
/// per server type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SystemState {
    available: Vec<usize>,
}

impl SystemState {
    /// Builds a system state, validating it against a configuration.
    ///
    /// # Errors
    /// * [`ArchError::LengthMismatch`] on a wrong vector length.
    /// * [`ArchError::StateExceedsConfiguration`] when `X_x > Y_x`.
    pub fn new(configuration: &Configuration, available: Vec<usize>) -> Result<Self, ArchError> {
        if available.len() != configuration.k() {
            return Err(ArchError::LengthMismatch {
                what: "system state",
                expected: configuration.k(),
                actual: available.len(),
            });
        }
        for (i, (&x, &y)) in available.iter().zip(configuration.as_slice()).enumerate() {
            if x > y {
                return Err(ArchError::StateExceedsConfiguration {
                    id: ServerTypeId(i),
                    available: x,
                    configured: y,
                });
            }
        }
        Ok(SystemState { available })
    }

    /// Available replicas of server type `id`.
    ///
    /// # Errors
    /// [`ArchError::UnknownServerType`] for a stale id.
    pub fn available(&self, id: ServerTypeId) -> Result<usize, ArchError> {
        self.available
            .get(id.0)
            .copied()
            .ok_or(ArchError::UnknownServerType {
                id,
                registered: self.available.len(),
            })
    }

    /// The raw availability vector `X`.
    pub fn as_slice(&self) -> &[usize] {
        &self.available
    }

    /// True when at least one replica of every server type is running —
    /// the paper's definition of "the entire WFMS is available".
    pub fn is_operational(&self) -> bool {
        self.available.iter().all(|&x| x > 0)
    }
}

impl fmt::Display for SystemState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X(")?;
        for (i, x) in self.available.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, ")")
    }
}

/// The three-server-type example registry of Sec. 5.2 of the paper:
/// a communication server failing once a month, a workflow engine failing
/// once a week, an application server failing once a day, all repaired in
/// 10 minutes on average. Service-time parameters are not given in the
/// paper's availability example; callers that need them should use their
/// own registry — the defaults here (100 ms mean, exponential) are only
/// placeholders for availability-focused uses.
pub fn paper_section52_registry() -> ServerTypeRegistry {
    let mut reg = ServerTypeRegistry::new();
    let month = 43_200.0;
    let week = 10_080.0;
    let day = 1_440.0;
    let repair = 10.0;
    reg.register(ServerType::with_exponential_service(
        "communication-server",
        ServerTypeKind::Communication,
        1.0 / month,
        1.0 / repair,
        100.0 / 60_000.0,
    ))
    .expect("valid parameters");
    reg.register(ServerType::with_exponential_service(
        "workflow-engine",
        ServerTypeKind::WorkflowEngine,
        1.0 / week,
        1.0 / repair,
        100.0 / 60_000.0,
    ))
    .expect("valid parameters");
    reg.register(ServerType::with_exponential_service(
        "application-server",
        ServerTypeKind::ApplicationServer,
        1.0 / day,
        1.0 / repair,
        100.0 / 60_000.0,
    ))
    .expect("valid parameters");
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> ServerTypeRegistry {
        paper_section52_registry()
    }

    #[test]
    fn register_assigns_sequential_ids() {
        let reg = registry();
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.find_by_name("workflow-engine"), Some(ServerTypeId(1)));
        assert_eq!(reg.find_by_name("nope"), None);
        assert!(reg.get(ServerTypeId(2)).is_ok());
        assert!(matches!(
            reg.get(ServerTypeId(3)),
            Err(ArchError::UnknownServerType { registered: 3, .. })
        ));
    }

    #[test]
    fn register_rejects_invalid_parameters() {
        let mut reg = ServerTypeRegistry::new();
        let mut t =
            ServerType::with_exponential_service("x", ServerTypeKind::Communication, 0.0, 1.0, 1.0);
        assert!(matches!(
            reg.register(t.clone()),
            Err(ArchError::InvalidParameter {
                what: "failure rate",
                ..
            })
        ));
        t.failure_rate = 1.0;
        t.service_time_second_moment = f64::NAN;
        assert!(matches!(
            reg.register(t),
            Err(ArchError::InvalidParameter {
                what: "service time second moment",
                ..
            })
        ));
    }

    #[test]
    fn kinds_are_queryable() {
        let reg = registry();
        assert_eq!(
            reg.ids_of_kind(ServerTypeKind::Communication),
            vec![ServerTypeId(0)]
        );
        assert_eq!(
            reg.ids_of_kind(ServerTypeKind::ApplicationServer),
            vec![ServerTypeId(2)]
        );
    }

    #[test]
    fn mttf_mttr_availability_closed_forms() {
        let reg = registry();
        let app = reg.get(ServerTypeId(2)).unwrap();
        assert!((app.mttf() - 1440.0).abs() < 1e-9);
        assert!((app.mttr() - 10.0).abs() < 1e-9);
        assert!((app.single_availability() - 1440.0 / 1450.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_and_deterministic_second_moments() {
        let e =
            ServerType::with_exponential_service("e", ServerTypeKind::Communication, 1.0, 1.0, 3.0);
        assert!((e.service_time_second_moment - 18.0).abs() < 1e-12);
        let d = ServerType::with_deterministic_service(
            "d",
            ServerTypeKind::Communication,
            1.0,
            1.0,
            3.0,
        );
        assert!((d.service_time_second_moment - 9.0).abs() < 1e-12);
    }

    #[test]
    fn configuration_validation() {
        let reg = registry();
        assert!(Configuration::new(&reg, vec![1, 2]).is_err());
        assert!(matches!(
            Configuration::new(&reg, vec![1, 0, 2]),
            Err(ArchError::EmptyReplication {
                id: ServerTypeId(1)
            })
        ));
        let y = Configuration::new(&reg, vec![2, 2, 3]).unwrap();
        assert_eq!(y.total_servers(), 7);
        assert_eq!(y.k(), 3);
        assert_eq!(y.replicas(ServerTypeId(2)).unwrap(), 3);
        assert_eq!(y.system_state_count(), 3 * 3 * 4);
        assert_eq!(format!("{y}"), "Y(2,2,3)");
    }

    #[test]
    fn minimal_and_uniform_constructors() {
        let reg = registry();
        assert_eq!(Configuration::minimal(&reg).as_slice(), &[1, 1, 1]);
        assert_eq!(
            Configuration::uniform(&reg, 3).unwrap().as_slice(),
            &[3, 3, 3]
        );
        assert!(Configuration::uniform(&reg, 0).is_err());
    }

    #[test]
    fn with_added_replica_is_pure() {
        let reg = registry();
        let y = Configuration::minimal(&reg);
        let y2 = y.with_added_replica(ServerTypeId(1)).unwrap();
        assert_eq!(y.as_slice(), &[1, 1, 1]);
        assert_eq!(y2.as_slice(), &[1, 2, 1]);
        assert!(y.with_added_replica(ServerTypeId(7)).is_err());
    }

    #[test]
    fn system_state_validation() {
        let reg = registry();
        let y = Configuration::new(&reg, vec![2, 2, 3]).unwrap();
        assert!(SystemState::new(&y, vec![2, 2]).is_err());
        assert!(matches!(
            SystemState::new(&y, vec![2, 3, 3]),
            Err(ArchError::StateExceedsConfiguration {
                id: ServerTypeId(1),
                ..
            })
        ));
        let x = SystemState::new(&y, vec![2, 0, 1]).unwrap();
        assert!(!x.is_operational());
        assert_eq!(x.available(ServerTypeId(0)).unwrap(), 2);
        assert_eq!(format!("{x}"), "X(2,0,1)");
        assert!(y.full_state().is_operational());
    }

    #[test]
    fn paper_registry_matches_section_52_rates() {
        let reg = registry();
        let comm = reg.get(ServerTypeId(0)).unwrap();
        let engine = reg.get(ServerTypeId(1)).unwrap();
        let app = reg.get(ServerTypeId(2)).unwrap();
        assert!((comm.failure_rate - 1.0 / 43_200.0).abs() < 1e-15);
        assert!((engine.failure_rate - 1.0 / 10_080.0).abs() < 1e-15);
        assert!((app.failure_rate - 1.0 / 1_440.0).abs() < 1e-15);
        for t in [comm, engine, app] {
            assert!((t.repair_rate - 0.1).abs() < 1e-15);
        }
    }

    #[test]
    fn serde_round_trip() {
        let reg = registry();
        let json = serde_json::to_string(&reg).unwrap();
        let back: ServerTypeRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, reg);
        let y = Configuration::new(&reg, vec![1, 2, 3]).unwrap();
        let json = serde_json::to_string(&y).unwrap();
        let back: Configuration = serde_json::from_str(&json).unwrap();
        assert_eq!(back, y);
    }
}
