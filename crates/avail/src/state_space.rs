//! The system-state space of the availability CTMC and its integer
//! encoding (Sec. 5.2 of the paper):
//!
//! ```text
//! (X_1, …, X_k)  ↦  Σ_j X_j · Π_{l<j} (Y_l + 1)
//! ```
//!
//! i.e. a mixed-radix number with digit `j` ranging over `0 … Y_j`.

use wfms_statechart::Configuration;

use crate::error::AvailError;

/// The finite set `{ X | 0 ≤ X_x ≤ Y_x }` with the paper's encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSpace {
    /// `Y_x + 1` per server type (the mixed radix).
    dims: Vec<usize>,
}

impl StateSpace {
    /// Builds the state space of a configuration.
    pub fn new(config: &Configuration) -> Self {
        StateSpace {
            dims: config.as_slice().iter().map(|&y| y + 1).collect(),
        }
    }

    /// Number of server types `k`.
    pub fn k(&self) -> usize {
        self.dims.len()
    }

    /// Total number of system states `Π (Y_x + 1)`.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True for a degenerate zero-type space.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Encodes an availability vector to its integer state id.
    ///
    /// # Errors
    /// [`AvailError::StateOutOfRange`] when the vector has the wrong
    /// length or a component exceeds its configured maximum.
    pub fn encode(&self, x: &[usize]) -> Result<usize, AvailError> {
        if x.len() != self.dims.len() {
            return Err(AvailError::StateOutOfRange {
                state: x.to_vec(),
                dims: self.dims.clone(),
            });
        }
        let mut idx = 0;
        let mut stride = 1;
        for (j, (&xj, &dim)) in x.iter().zip(&self.dims).enumerate() {
            if xj >= dim {
                return Err(AvailError::StateOutOfRange {
                    state: x.to_vec(),
                    dims: self.dims.clone(),
                });
            }
            let _ = j;
            idx += xj * stride;
            stride *= dim;
        }
        Ok(idx)
    }

    /// Decodes an integer state id back to its availability vector.
    ///
    /// # Errors
    /// [`AvailError::IndexOutOfRange`] for `idx ≥ len()`.
    pub fn decode(&self, idx: usize) -> Result<Vec<usize>, AvailError> {
        if idx >= self.len() {
            return Err(AvailError::IndexOutOfRange {
                index: idx,
                len: self.len(),
            });
        }
        let mut rest = idx;
        let mut out = Vec::with_capacity(self.dims.len());
        for &dim in &self.dims {
            out.push(rest % dim);
            rest /= dim;
        }
        Ok(out)
    }

    /// Iterates all states in encoding order as availability vectors.
    pub fn iter(&self) -> StateIter<'_> {
        StateIter {
            space: self,
            next: 0,
        }
    }

    /// True when the state vector is operational (every component ≥ 1).
    pub fn is_operational(x: &[usize]) -> bool {
        x.iter().all(|&v| v > 0)
    }
}

/// Iterator over all states of a [`StateSpace`].
#[derive(Debug)]
pub struct StateIter<'a> {
    space: &'a StateSpace,
    next: usize,
}

impl Iterator for StateIter<'_> {
    type Item = (usize, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.space.len() {
            return None;
        }
        let idx = self.next;
        self.next += 1;
        // audit:allow(A008, reason = "idx < space.len() is checked two lines above, so decode cannot be out of range")
        Some((idx, self.space.decode(idx).expect("iterating in range")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfms_statechart::{paper_section52_registry, Configuration};

    fn space(y: &[usize]) -> StateSpace {
        let reg = paper_section52_registry();
        StateSpace::new(&Configuration::new(&reg, y.to_vec()).unwrap())
    }

    #[test]
    fn encoding_matches_paper_example() {
        // "for a CTMC with three server types, two servers each we encode the
        // states (0,0,0), (1,0,0), (2,0,0), (0,1,0) etc. as integers 0, 1, 2,
        // 3, and so on."
        let s = space(&[2, 2, 2]);
        assert_eq!(s.encode(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.encode(&[1, 0, 0]).unwrap(), 1);
        assert_eq!(s.encode(&[2, 0, 0]).unwrap(), 2);
        assert_eq!(s.encode(&[0, 1, 0]).unwrap(), 3);
        assert_eq!(s.encode(&[2, 2, 2]).unwrap(), 26);
        assert_eq!(s.len(), 27);
    }

    #[test]
    fn encode_decode_round_trips() {
        let s = space(&[2, 1, 3]);
        assert_eq!(s.len(), 3 * 2 * 4);
        for idx in 0..s.len() {
            let x = s.decode(idx).unwrap();
            assert_eq!(s.encode(&x).unwrap(), idx);
        }
    }

    #[test]
    fn encode_validates_bounds() {
        let s = space(&[2, 2, 2]);
        assert!(matches!(
            s.encode(&[3, 0, 0]),
            Err(AvailError::StateOutOfRange { .. })
        ));
        assert!(matches!(
            s.encode(&[0, 0]),
            Err(AvailError::StateOutOfRange { .. })
        ));
        assert!(matches!(
            s.decode(27),
            Err(AvailError::IndexOutOfRange { index: 27, len: 27 })
        ));
    }

    #[test]
    fn iter_covers_all_states_once() {
        let s = space(&[1, 2, 1]);
        let states: Vec<_> = s.iter().collect();
        assert_eq!(states.len(), s.len());
        assert_eq!(states[0], (0, vec![0, 0, 0]));
        assert_eq!(states.last().unwrap(), &(s.len() - 1, vec![1, 2, 1]));
        // All unique.
        let mut seen: Vec<Vec<usize>> = states.iter().map(|(_, x)| x.clone()).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), s.len());
    }

    #[test]
    fn operational_check() {
        assert!(StateSpace::is_operational(&[1, 1, 1]));
        assert!(!StateSpace::is_operational(&[1, 0, 2]));
    }
}
