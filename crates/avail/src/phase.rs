//! Non-exponential repair times via phase-type expansion (Sec. 5.1).
//!
//! The paper: "non-exponential failure or repair rates (e.g., anticipated
//! periodic downtimes for software maintenance) can be accommodated as
//! well, by refining the corresponding state into a (reasonably small)
//! set of exponential states. This kind of expansion can be done
//! automatically once the distributions of the non-exponential states
//! are specified."
//!
//! This module performs that expansion for **repair/downtime durations**
//! under the single-repairman-per-type policy (where the distribution
//! actually matters; under independent repair — and for a single replica
//! — the stationary availability depends on the repair time only through
//! its mean, by the renewal-reward theorem, which the tests verify).
//! Time-to-failure stays exponential.
//!
//! Because the per-type failure/repair processes are mutually
//! independent, the *system* availability is the product of the per-type
//! marginal availabilities; each marginal chain is tiny
//! (`1 + Y · stages` states), so this route also scales to replication
//! degrees far beyond the joint CTMC.

use wfms_markov::ctmc::{Ctmc, SteadyStateMethod};
use wfms_markov::linalg::Matrix;
use wfms_markov::PhaseType;
use wfms_statechart::{Configuration, ServerTypeRegistry};

use crate::error::AvailError;

/// Stage rates of a phase-type repair distribution, plus how a fresh
/// repair chooses its first stage.
fn stage_rates(repair: &PhaseType) -> Vec<f64> {
    match *repair {
        PhaseType::Exponential { rate } => vec![rate],
        PhaseType::Erlang { k, rate } => vec![rate; k],
        PhaseType::Hyperexponential { rate1, rate2, .. } => vec![rate1, rate2],
    }
}

/// `(stage, probability)` pairs a fresh repair starts in.
fn initial_stages(repair: &PhaseType) -> Vec<(usize, f64)> {
    match *repair {
        PhaseType::Exponential { .. } | PhaseType::Erlang { .. } => vec![(0, 1.0)],
        PhaseType::Hyperexponential { p, .. } => vec![(0, p), (1, 1.0 - p)],
    }
}

/// Where stage `s` goes on its event: `Some(next_stage)` continues the
/// same repair, `None` completes it.
fn stage_successor(repair: &PhaseType, s: usize) -> Option<usize> {
    match *repair {
        PhaseType::Exponential { .. } | PhaseType::Hyperexponential { .. } => None,
        PhaseType::Erlang { k, .. } => {
            if s + 1 < k {
                Some(s + 1)
            } else {
                None
            }
        }
    }
}

/// Stationary unavailability of ONE server type with `replicas` replicas,
/// exponential failures at `failure_rate` per replica, a single repair
/// crew, and a phase-type repair-time distribution.
///
/// The type is unavailable exactly when all `replicas` replicas are down.
///
/// # Errors
/// [`AvailError`] on invalid parameters or solver failure.
pub fn single_repairman_type_unavailability(
    replicas: usize,
    failure_rate: f64,
    repair: &PhaseType,
) -> Result<f64, AvailError> {
    if replicas == 0 || !(failure_rate.is_finite() && failure_rate > 0.0) {
        return Err(AvailError::Arch(
            wfms_statechart::ArchError::InvalidParameter {
                what: "failure rate / replicas",
                server_type: "phase-type marginal".into(),
                value: failure_rate,
            },
        ));
    }
    let rates = stage_rates(repair);
    let stages = rates.len();
    // State 0: all up. State 1 + (n-1)*stages + s: n down, repair in stage s.
    let n_states = 1 + replicas * stages;
    let id = |n_down: usize, s: usize| 1 + (n_down - 1) * stages + s;

    let mut q = Matrix::zeros(n_states, n_states);
    // All-up state: one of the replicas fails, repair starts.
    for (s0, p0) in initial_stages(repair) {
        q[(0, id(1, s0))] += replicas as f64 * failure_rate * p0;
    }
    for n in 1..=replicas {
        for s in 0..stages {
            let from = id(n, s);
            // Further failures (replicas still up keep failing).
            if n < replicas {
                q[(from, id(n + 1, s))] += (replicas - n) as f64 * failure_rate;
            }
            // Repair-stage event.
            let rate = rates[s];
            match stage_successor(repair, s) {
                Some(next) => q[(from, id(n, next))] += rate,
                None => {
                    // Repair completes: one replica returns; if others are
                    // still down the crew immediately starts the next one.
                    if n == 1 {
                        q[(from, 0)] += rate;
                    } else {
                        for (s0, p0) in initial_stages(repair) {
                            q[(from, id(n - 1, s0))] += rate * p0;
                        }
                    }
                }
            }
        }
    }
    // Diagonal.
    for i in 0..n_states {
        let row_sum: f64 = (0..n_states).filter(|&j| j != i).map(|j| q[(i, j)]).sum();
        q[(i, i)] = -row_sum;
    }

    let ctmc = Ctmc::from_generator(&q)?;
    let pi = ctmc.steady_state(SteadyStateMethod::Lu)?;
    // Unavailable = all replicas down, any repair stage.
    let mut u = 0.0;
    for s in 0..stages {
        u += pi[id(replicas, s)];
    }
    Ok(u)
}

/// System unavailability when every server type has a single repair crew
/// and its own phase-type repair distribution (`repairs[x]`, one per
/// registered type): `1 - Π_x (1 - U_x)`, exact by independence of the
/// per-type processes.
///
/// # Errors
/// [`AvailError`] on length mismatches or marginal-solve failures.
pub fn system_unavailability_with_repair_phases(
    registry: &ServerTypeRegistry,
    config: &Configuration,
    repairs: &[PhaseType],
) -> Result<f64, AvailError> {
    if repairs.len() != registry.len() || config.k() != registry.len() {
        return Err(AvailError::LengthMismatch {
            expected: registry.len(),
            actual: repairs.len(),
        });
    }
    let mut availability = 1.0;
    for (id, server_type) in registry.iter() {
        let u = single_repairman_type_unavailability(
            config.replicas(id)?,
            server_type.failure_rate,
            &repairs[id.0],
        )?;
        availability *= 1.0 - u;
    }
    Ok(1.0 - availability)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AvailabilityModel, RepairPolicy};
    use wfms_statechart::{paper_section52_registry, ServerType, ServerTypeKind};

    /// Marginal unavailability of one type from the joint CTMC model.
    fn joint_single_type_unavailability(
        y: usize,
        failure_rate: f64,
        repair_rate: f64,
        policy: RepairPolicy,
    ) -> f64 {
        let mut reg = ServerTypeRegistry::new();
        reg.register(ServerType::with_exponential_service(
            "t",
            ServerTypeKind::WorkflowEngine,
            failure_rate,
            repair_rate,
            0.01,
        ))
        .unwrap();
        let config = Configuration::new(&reg, vec![y]).unwrap();
        let model = AvailabilityModel::with_policy(&reg, &config, policy).unwrap();
        let pi = model.steady_state(SteadyStateMethod::Lu).unwrap();
        model.unavailability(&pi).unwrap()
    }

    #[test]
    fn exponential_repair_matches_the_joint_single_repairman_model() {
        for y in [1usize, 2, 3, 4] {
            let lambda = 1.0 / 500.0;
            let mu = 1.0 / 20.0;
            let expect = joint_single_type_unavailability(
                y,
                lambda,
                mu,
                RepairPolicy::SingleRepairmanPerType,
            );
            let repair = PhaseType::Exponential { rate: mu };
            let got = single_repairman_type_unavailability(y, lambda, &repair).unwrap();
            assert!(
                (got - expect).abs() < 1e-10 + 1e-6 * expect,
                "Y={y}: phase {got:e} vs joint {expect:e}"
            );
        }
    }

    #[test]
    fn single_replica_availability_is_insensitive_to_repair_distribution() {
        // Alternating renewal: U = E[R] / (E[F] + E[R]) for Y = 1, whatever
        // the repair-time distribution.
        let lambda = 1.0 / 300.0;
        let mean_repair = 15.0;
        let expect = mean_repair / (300.0 + mean_repair);
        for scv in [0.1, 0.25, 1.0, 4.0, 9.0] {
            let repair = PhaseType::fit(mean_repair, scv).unwrap();
            let got = single_repairman_type_unavailability(1, lambda, &repair).unwrap();
            assert!(
                (got - expect).abs() < 1e-9,
                "scv={scv}: {got} vs renewal-reward {expect}"
            );
        }
    }

    #[test]
    fn low_variance_repair_improves_multi_replica_availability() {
        // With a single crew and Y = 2, repair-time variability hurts: a
        // long repair leaves a window where the second failure takes the
        // type down. Deterministic-ish (Erlang) repairs beat exponential,
        // which beats hyperexponential, at equal means.
        let lambda = 1.0 / 200.0;
        let mean_repair = 30.0;
        let u_erlang = single_repairman_type_unavailability(
            2,
            lambda,
            &PhaseType::fit(mean_repair, 0.125).unwrap(),
        )
        .unwrap();
        let u_exp = single_repairman_type_unavailability(
            2,
            lambda,
            &PhaseType::Exponential {
                rate: 1.0 / mean_repair,
            },
        )
        .unwrap();
        let u_hyper = single_repairman_type_unavailability(
            2,
            lambda,
            &PhaseType::fit(mean_repair, 8.0).unwrap(),
        )
        .unwrap();
        assert!(
            u_erlang < u_exp,
            "Erlang {u_erlang:e} !< exponential {u_exp:e}"
        );
        assert!(
            u_exp < u_hyper,
            "exponential {u_exp:e} !< hyper {u_hyper:e}"
        );
    }

    #[test]
    fn system_product_matches_joint_model_for_exponential_repairs() {
        let reg = paper_section52_registry();
        let config = Configuration::new(&reg, vec![2, 2, 3]).unwrap();
        let repairs: Vec<PhaseType> = reg
            .iter()
            .map(|(_, t)| PhaseType::Exponential {
                rate: t.repair_rate,
            })
            .collect();
        let product = system_unavailability_with_repair_phases(&reg, &config, &repairs).unwrap();
        let joint =
            AvailabilityModel::with_policy(&reg, &config, RepairPolicy::SingleRepairmanPerType)
                .unwrap();
        let pi = joint.steady_state(SteadyStateMethod::Lu).unwrap();
        let expect = joint.unavailability(&pi).unwrap();
        assert!(
            (product - expect).abs() < 1e-10 + 1e-6 * expect,
            "product {product:e} vs joint {expect:e}"
        );
    }

    #[test]
    fn maintenance_window_scenario() {
        // "Anticipated periodic downtimes for software maintenance": nearly
        // deterministic 30-minute windows (Erlang-10), one crew, weekly
        // per-replica failures. Three replicas keep unavailability tiny.
        let lambda = 1.0 / 10_080.0;
        let repair = PhaseType::fit(30.0, 0.1).unwrap();
        let u1 = single_repairman_type_unavailability(1, lambda, &repair).unwrap();
        let u2 = single_repairman_type_unavailability(2, lambda, &repair).unwrap();
        let u3 = single_repairman_type_unavailability(3, lambda, &repair).unwrap();
        assert!(u1 > u2 && u2 > u3);
        assert!(u1 > 1e-3, "single replica: ~30 min/week down");
        assert!(u3 < 1e-7, "3 replicas: virtually always up, got {u3:e}");
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let repair = PhaseType::Exponential { rate: 0.1 };
        assert!(single_repairman_type_unavailability(0, 0.01, &repair).is_err());
        assert!(single_repairman_type_unavailability(2, 0.0, &repair).is_err());
        assert!(single_repairman_type_unavailability(2, f64::NAN, &repair).is_err());
        let reg = paper_section52_registry();
        let config = Configuration::minimal(&reg);
        assert!(matches!(
            system_unavailability_with_repair_phases(&reg, &config, &[repair]),
            Err(AvailError::LengthMismatch { .. })
        ));
    }
}
