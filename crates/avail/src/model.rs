//! The availability CTMC over system states (Sec. 5).
//!
//! Each CTMC state is a replica-availability vector `X ≤ Y`. A failure of
//! one of the `X_x` running servers of type `x` moves the chain to the
//! state with `X_x - 1`; a completed repair moves it to `X_x + 1`. The
//! chain is ergodic; its stationary distribution gives the probability of
//! every system state, and summing over the states where some server type
//! is completely down yields the WFMS unavailability.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use wfms_markov::ctmc::{Ctmc, SteadyStateMethod};
use wfms_markov::linalg::Matrix;
use wfms_statechart::{Configuration, ServerTypeRegistry, SystemState};

use crate::blocks::BirthDeathBlock;
use crate::error::AvailError;
use crate::state_space::StateSpace;

/// Minutes per (365-day) year, for downtime reporting.
pub const MINUTES_PER_YEAR: f64 = 525_600.0;

/// How failed servers are repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RepairPolicy {
    /// Every failed server is repaired concurrently: the repair transition
    /// rate from `X_x` to `X_x + 1` is `(Y_x - X_x) · μ_x`. Under this
    /// policy replicas behave independently, which is the assumption that
    /// reproduces the paper's Sec. 5.2 numbers.
    #[default]
    Independent,
    /// One repair crew per server type: the repair rate is `μ_x` whenever
    /// at least one server of the type is down.
    SingleRepairmanPerType,
}

/// The assembled availability model for one configuration.
#[derive(Debug, Clone)]
pub struct AvailabilityModel {
    config: Configuration,
    space: StateSpace,
    ctmc: Ctmc,
    policy: RepairPolicy,
}

/// Safety cap on the dense state space: the generator is materialized as
/// an `n x n` dense matrix, so this bounds memory at ~130 MB. For larger
/// spaces use [`crate::sparse_model::SparseAvailabilityModel`].
pub const DEFAULT_STATE_CAP: usize = 4_096;

impl AvailabilityModel {
    /// Builds the availability CTMC for `config` with the default
    /// (paper-faithful) independent-repair policy.
    ///
    /// # Errors
    /// See [`AvailabilityModel::with_policy`].
    pub fn new(registry: &ServerTypeRegistry, config: &Configuration) -> Result<Self, AvailError> {
        Self::with_policy(registry, config, RepairPolicy::Independent)
    }

    /// Builds the availability CTMC with an explicit repair policy.
    ///
    /// # Errors
    /// * [`AvailError::StateSpaceTooLarge`] beyond [`DEFAULT_STATE_CAP`].
    /// * [`AvailError::Arch`] / [`AvailError::Chain`] on malformed inputs.
    pub fn with_policy(
        registry: &ServerTypeRegistry,
        config: &Configuration,
        policy: RepairPolicy,
    ) -> Result<Self, AvailError> {
        let n = StateSpace::new(config).len();
        if n > DEFAULT_STATE_CAP {
            return Err(AvailError::StateSpaceTooLarge {
                states: n,
                cap: DEFAULT_STATE_CAP,
            });
        }
        let mut blocks = Vec::with_capacity(config.k());
        for (j, &y) in config.as_slice().iter().enumerate() {
            let st = registry.get(wfms_statechart::ServerTypeId(j))?;
            blocks.push(Arc::new(BirthDeathBlock::for_type(st, y, policy)));
        }
        Self::from_blocks(config, &blocks, policy)
    }

    /// Builds the availability CTMC from pre-tabulated per-type
    /// birth–death blocks, the incremental path used by the
    /// configuration-search engine: for a neighbouring candidate
    /// `Y + e_k`, only the block of type `k` is new.
    ///
    /// Block rates are the same float products the direct assembly
    /// computes, so the resulting generator — and everything solved from
    /// it — is bit-identical to [`AvailabilityModel::with_policy`].
    ///
    /// # Errors
    /// * [`AvailError::StateSpaceTooLarge`] beyond [`DEFAULT_STATE_CAP`].
    /// * [`AvailError::BlockMismatch`] / [`AvailError::Arch`] when the
    ///   blocks do not match `config` (count, replicas, or policy).
    pub fn from_blocks(
        config: &Configuration,
        blocks: &[Arc<BirthDeathBlock>],
        policy: RepairPolicy,
    ) -> Result<Self, AvailError> {
        let space = StateSpace::new(config);
        let n = space.len();
        if n > DEFAULT_STATE_CAP {
            return Err(AvailError::StateSpaceTooLarge {
                states: n,
                cap: DEFAULT_STATE_CAP,
            });
        }
        let k = space.k();
        if blocks.len() != k {
            return Err(AvailError::Arch(
                wfms_statechart::ArchError::LengthMismatch {
                    what: "birth-death blocks",
                    expected: k,
                    actual: blocks.len(),
                },
            ));
        }
        for (j, block) in blocks.iter().enumerate() {
            if block.replicas() != config.as_slice()[j] || block.policy() != policy {
                return Err(AvailError::BlockMismatch {
                    type_index: j,
                    block_replicas: block.replicas(),
                    config_replicas: config.as_slice()[j],
                });
            }
        }
        let _obs_span = wfms_obs::span!("avail-build", states = n, types = k, backend = "dense");
        wfms_obs::gauge("avail.state-space.size", n as f64);
        let mut q = Matrix::zeros(n, n);
        for (idx, x) in space.iter() {
            let mut departure = 0.0;
            for (j, block) in blocks.iter().enumerate() {
                // Failure: one of the X_j running servers fails.
                if x[j] > 0 {
                    let rate = block.failure_rate(x[j]);
                    let mut to = x.clone();
                    to[j] -= 1;
                    let to_idx = space.encode(&to)?;
                    q[(idx, to_idx)] += rate;
                    departure += rate;
                }
                // Repair: a failed server of type j comes back.
                let failed = config.as_slice()[j] - x[j];
                if failed > 0 {
                    let rate = block.repair_rate(failed);
                    let mut to = x.clone();
                    to[j] += 1;
                    let to_idx = space.encode(&to)?;
                    q[(idx, to_idx)] += rate;
                    departure += rate;
                }
            }
            q[(idx, idx)] = -departure;
        }
        let ctmc = Ctmc::from_generator(&q)?;
        Ok(AvailabilityModel {
            config: config.clone(),
            space,
            ctmc,
            policy,
        })
    }

    /// The underlying state space.
    pub fn state_space(&self) -> &StateSpace {
        &self.space
    }

    /// The configuration this model was built for.
    pub fn configuration(&self) -> &Configuration {
        &self.config
    }

    /// The repair policy in effect.
    pub fn repair_policy(&self) -> RepairPolicy {
        self.policy
    }

    /// The availability CTMC itself.
    pub fn ctmc(&self) -> &Ctmc {
        &self.ctmc
    }

    /// Stationary distribution over system states.
    ///
    /// # Errors
    /// Solver failures as [`AvailError::Chain`].
    pub fn steady_state(&self, method: SteadyStateMethod) -> Result<Vec<f64>, AvailError> {
        let _obs_span = wfms_obs::span!(
            "avail-steady-state",
            states = self.space.len(),
            backend = "dense"
        );
        // Failpoint `avail.steady-state`: error injection surfaces as a
        // solver non-convergence, NaN injection poisons the distribution.
        let mut poison_solution = false;
        match wfms_fault::point!("avail.steady-state") {
            Some(wfms_fault::Injection::Error) => {
                return Err(AvailError::Chain(wfms_markov::ChainError::Iterative(
                    wfms_markov::linalg::IterativeError::NotConverged {
                        iterations: 0,
                        last_residual: f64::INFINITY,
                    },
                )));
            }
            Some(wfms_fault::Injection::Nan) => poison_solution = true,
            None => {}
        }
        let mut pi = self.ctmc.steady_state(method)?;
        if poison_solution {
            // Poison the full-strength state (last in encoding order): it
            // is always an up state, so the NaN reaches the availability
            // sum rather than hiding in the all-down state's mass.
            if let Some(last) = pi.last_mut() {
                *last = f64::NAN;
            }
        }
        Ok(pi)
    }

    /// Probability that the entire WFMS is available (every server type
    /// has at least one running replica), given a stationary distribution.
    ///
    /// # Errors
    /// [`AvailError::LengthMismatch`] on a wrong `pi` length.
    pub fn availability(&self, pi: &[f64]) -> Result<f64, AvailError> {
        if pi.len() != self.space.len() {
            return Err(AvailError::LengthMismatch {
                expected: self.space.len(),
                actual: pi.len(),
            });
        }
        let mut up = 0.0;
        for (idx, x) in self.space.iter() {
            if StateSpace::is_operational(&x) {
                up += pi[idx];
            }
        }
        Ok(up)
    }

    /// `1 - availability`.
    ///
    /// # Errors
    /// As [`AvailabilityModel::availability`].
    pub fn unavailability(&self, pi: &[f64]) -> Result<f64, AvailError> {
        Ok(1.0 - self.availability(pi)?)
    }

    /// Expected downtime in minutes per year.
    ///
    /// # Errors
    /// As [`AvailabilityModel::availability`].
    pub fn downtime_minutes_per_year(&self, pi: &[f64]) -> Result<f64, AvailError> {
        Ok(self.unavailability(pi)? * MINUTES_PER_YEAR)
    }

    /// Stationary probability of one specific system state.
    ///
    /// # Errors
    /// [`AvailError`] on a foreign state or wrong `pi` length.
    pub fn state_probability(&self, pi: &[f64], state: &SystemState) -> Result<f64, AvailError> {
        if pi.len() != self.space.len() {
            return Err(AvailError::LengthMismatch {
                expected: self.space.len(),
                actual: pi.len(),
            });
        }
        let idx = self.space.encode(state.as_slice())?;
        Ok(pi[idx])
    }

    /// Iterates `(state_vector, probability)` pairs of a distribution.
    ///
    /// # Errors
    /// [`AvailError::LengthMismatch`] on a wrong `pi` length.
    pub fn distribution<'a>(
        &'a self,
        pi: &'a [f64],
    ) -> Result<impl Iterator<Item = (Vec<usize>, f64)> + 'a, AvailError> {
        if pi.len() != self.space.len() {
            return Err(AvailError::LengthMismatch {
                expected: self.space.len(),
                actual: pi.len(),
            });
        }
        Ok(self.space.iter().map(move |(idx, x)| (x, pi[idx])))
    }
}

/// Closed-form unavailability under the independent-repair policy: each
/// replica of type `x` is independently down with probability
/// `q_x = λ_x / (λ_x + μ_x)`, the type is down with `q_x^{Y_x}`, and
///
/// ```text
/// U = 1 - Π_x (1 - q_x^{Y_x})
/// ```
///
/// Exact for [`RepairPolicy::Independent`]; used to cross-validate the
/// CTMC solve and as a fast path in the configuration-search loop.
///
/// # Errors
/// [`AvailError::Arch`] on a registry/configuration mismatch.
pub fn closed_form_unavailability(
    registry: &ServerTypeRegistry,
    config: &Configuration,
) -> Result<f64, AvailError> {
    if config.k() != registry.len() {
        return Err(AvailError::Arch(
            wfms_statechart::ArchError::LengthMismatch {
                what: "configuration",
                expected: registry.len(),
                actual: config.k(),
            },
        ));
    }
    let mut availability = 1.0;
    for (id, st) in registry.iter() {
        let q = st.failure_rate / (st.failure_rate + st.repair_rate);
        let y = config.replicas(id)? as i32;
        availability *= 1.0 - q.powi(y);
    }
    Ok(1.0 - availability)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfms_markov::ctmc::SteadyStateMethod;
    use wfms_statechart::paper_section52_registry;

    fn model(y: &[usize]) -> AvailabilityModel {
        let reg = paper_section52_registry();
        let config = Configuration::new(&reg, y.to_vec()).unwrap();
        AvailabilityModel::new(&reg, &config).unwrap()
    }

    fn solve(m: &AvailabilityModel) -> Vec<f64> {
        m.steady_state(SteadyStateMethod::Lu).unwrap()
    }

    #[test]
    fn paper_unreplicated_downtime_is_71_hours_per_year() {
        let m = model(&[1, 1, 1]);
        let pi = solve(&m);
        let downtime_hours = m.downtime_minutes_per_year(&pi).unwrap() / 60.0;
        assert!(
            (downtime_hours - 71.0).abs() < 1.0,
            "expected ≈71 h/year, got {downtime_hours:.2}"
        );
    }

    #[test]
    fn paper_three_way_replication_downtime_is_about_10_seconds() {
        let m = model(&[3, 3, 3]);
        let pi = solve(&m);
        let downtime_seconds = m.downtime_minutes_per_year(&pi).unwrap() * 60.0;
        assert!(
            downtime_seconds > 5.0 && downtime_seconds < 15.0,
            "expected ≈10 s/year, got {downtime_seconds:.2}"
        );
    }

    #[test]
    fn paper_asymmetric_config_is_under_a_minute() {
        let m = model(&[2, 2, 3]);
        let pi = solve(&m);
        let downtime_seconds = m.downtime_minutes_per_year(&pi).unwrap() * 60.0;
        assert!(
            downtime_seconds < 60.0,
            "expected < 60 s/year, got {downtime_seconds:.2}"
        );
        assert!(downtime_seconds > 10.0, "sanity: {downtime_seconds:.2}");
    }

    #[test]
    fn ctmc_matches_closed_form_for_independent_repair() {
        let reg = paper_section52_registry();
        for y in [[1, 1, 1], [2, 1, 1], [2, 2, 3], [3, 3, 3], [1, 2, 3]] {
            let config = Configuration::new(&reg, y.to_vec()).unwrap();
            let m = AvailabilityModel::new(&reg, &config).unwrap();
            let pi = solve(&m);
            let ctmc_u = m.unavailability(&pi).unwrap();
            let closed = closed_form_unavailability(&reg, &config).unwrap();
            assert!(
                (ctmc_u - closed).abs() < 1e-10 * closed.max(1e-12),
                "Y={y:?}: CTMC {ctmc_u:e} vs closed form {closed:e}"
            );
        }
    }

    #[test]
    fn steady_state_methods_agree() {
        let m = model(&[2, 2, 2]);
        let lu = m.steady_state(SteadyStateMethod::Lu).unwrap();
        let gs = m
            .steady_state(SteadyStateMethod::GaussSeidel(Default::default()))
            .unwrap();
        let diff = wfms_markov::linalg::relative_difference(&lu, &gs);
        assert!(diff < 1e-6, "LU vs Gauss-Seidel diff {diff}");
    }

    #[test]
    fn fully_up_state_dominates() {
        let m = model(&[2, 2, 2]);
        let pi = solve(&m);
        let full = m.state_space().encode(&[2, 2, 2]).unwrap();
        assert!(pi[full] > 0.98, "full-up probability {}", pi[full]);
        // And it is the modal state.
        let max = pi.iter().cloned().fold(0.0, f64::max);
        assert_eq!(pi[full], max);
    }

    #[test]
    fn replication_monotonically_improves_availability() {
        let reg = paper_section52_registry();
        let mut last_u = f64::INFINITY;
        for y in 1..=3 {
            let config = Configuration::uniform(&reg, y).unwrap();
            let m = AvailabilityModel::new(&reg, &config).unwrap();
            let pi = solve(&m);
            let u = m.unavailability(&pi).unwrap();
            assert!(u < last_u, "Y={y}: {u} !< {last_u}");
            last_u = u;
        }
    }

    #[test]
    fn replicating_least_reliable_type_helps_most() {
        let reg = paper_section52_registry();
        let base = Configuration::new(&reg, vec![1, 1, 1]).unwrap();
        let mut improvements = Vec::new();
        for j in 0..3 {
            let cfg = base
                .with_added_replica(wfms_statechart::ServerTypeId(j))
                .unwrap();
            let u = closed_form_unavailability(&reg, &cfg).unwrap();
            improvements.push(u);
        }
        // Adding to the application server (most failure-prone) must yield
        // the lowest residual unavailability.
        assert!(improvements[2] < improvements[1]);
        assert!(improvements[1] < improvements[0]);
    }

    #[test]
    fn single_repairman_policy_is_worse_for_big_outages() {
        let reg = paper_section52_registry();
        let config = Configuration::uniform(&reg, 3).unwrap();
        let ind = AvailabilityModel::with_policy(&reg, &config, RepairPolicy::Independent).unwrap();
        let single =
            AvailabilityModel::with_policy(&reg, &config, RepairPolicy::SingleRepairmanPerType)
                .unwrap();
        let u_ind = ind.unavailability(&solve(&ind)).unwrap();
        let u_single = single.unavailability(&solve(&single)).unwrap();
        assert!(
            u_single > u_ind,
            "single repairman {u_single:e} !> independent {u_ind:e}"
        );
    }

    #[test]
    fn state_probability_and_distribution_queries() {
        let m = model(&[1, 1, 1]);
        let pi = solve(&m);
        let full = SystemState::new(m.configuration(), vec![1, 1, 1]).unwrap();
        let p = m.state_probability(&pi, &full).unwrap();
        assert!(p > 0.99);
        let total: f64 = m.distribution(&pi).unwrap().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(matches!(
            m.state_probability(&[0.5], &full),
            Err(AvailError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn state_cap_is_enforced() {
        let mut reg = ServerTypeRegistry::new();
        for i in 0..8 {
            reg.register(wfms_statechart::ServerType::with_exponential_service(
                format!("t{i}"),
                wfms_statechart::ServerTypeKind::ApplicationServer,
                1e-4,
                0.1,
                0.001,
            ))
            .unwrap();
        }
        let config = Configuration::uniform(&reg, 9).unwrap(); // 10^8 states
        assert!(matches!(
            AvailabilityModel::new(&reg, &config),
            Err(AvailError::StateSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn generator_rows_balance() {
        let m = model(&[2, 1, 2]);
        let q = m.ctmc().generator();
        for i in 0..q.rows() {
            let sum: f64 = q.row(i).iter().sum();
            assert!(sum.abs() < 1e-12, "row {i} sums to {sum}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use wfms_markov::ctmc::SteadyStateMethod;
    use wfms_statechart::{ServerType, ServerTypeKind, ServerTypeRegistry};

    fn arbitrary_registry_and_config() -> impl Strategy<Value = (ServerTypeRegistry, Configuration)>
    {
        let types = proptest::collection::vec((1e-5f64..1e-2, 0.01f64..1.0), 1..4);
        let reps = proptest::collection::vec(1usize..4, 1..4);
        (types, reps).prop_map(|(params, mut reps)| {
            let mut reg = ServerTypeRegistry::new();
            for (i, (lambda, mu)) in params.iter().enumerate() {
                reg.register(ServerType::with_exponential_service(
                    format!("t{i}"),
                    ServerTypeKind::WorkflowEngine,
                    *lambda,
                    *mu,
                    0.01,
                ))
                .unwrap();
            }
            reps.resize(reg.len(), 1);
            let config = Configuration::new(&reg, reps).unwrap();
            (reg, config)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ctmc_and_closed_form_agree((reg, config) in arbitrary_registry_and_config()) {
            let m = AvailabilityModel::new(&reg, &config).unwrap();
            let pi = m.steady_state(SteadyStateMethod::Lu).unwrap();
            let u = m.unavailability(&pi).unwrap();
            let closed = closed_form_unavailability(&reg, &config).unwrap();
            prop_assert!((u - closed).abs() < 1e-11 + 1e-6 * closed,
                "CTMC {u:e} vs closed {closed:e} for {config}");
        }

        #[test]
        fn stationary_distribution_is_proper((reg, config) in arbitrary_registry_and_config()) {
            let m = AvailabilityModel::new(&reg, &config).unwrap();
            let pi = m.steady_state(SteadyStateMethod::Lu).unwrap();
            prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(pi.iter().all(|&p| p >= -1e-12));
        }
    }
}
