//! Availability-model errors.

use std::fmt;

use wfms_markov::ChainError;
use wfms_statechart::ArchError;

/// Errors raised by the availability model.
#[derive(Debug, Clone, PartialEq)]
pub enum AvailError {
    /// A system-state vector is outside the configured state space.
    StateOutOfRange {
        /// The offending vector.
        state: Vec<usize>,
        /// The radix (`Y_x + 1` per type).
        dims: Vec<usize>,
    },
    /// An encoded state index is out of range.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of states.
        len: usize,
    },
    /// The state space exceeds the configured safety cap; the dense CTMC
    /// solve would be impractical.
    StateSpaceTooLarge {
        /// Number of states the configuration implies.
        states: usize,
        /// The cap.
        cap: usize,
    },
    /// A probability-vector length does not match the state space.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A pre-built birth–death block does not match the configuration it
    /// is being assembled into.
    BlockMismatch {
        /// The server-type index of the offending block.
        type_index: usize,
        /// Replica count the block was built for.
        block_replicas: usize,
        /// Replica count the configuration requires.
        config_replicas: usize,
    },
    /// A solver backend was asked to handle a repair policy whose chain
    /// it cannot represent (the product form needs independent repair).
    UnsupportedPolicy {
        /// The backend that rejected the policy.
        backend: &'static str,
    },
    /// Underlying Markov-chain failure.
    Chain(ChainError),
    /// Architectural-model failure.
    Arch(ArchError),
}

impl fmt::Display for AvailError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AvailError::StateOutOfRange { state, dims } => {
                write!(
                    f,
                    "system state {state:?} outside state space with dims {dims:?}"
                )
            }
            AvailError::IndexOutOfRange { index, len } => {
                write!(f, "state index {index} out of range ({len} states)")
            }
            AvailError::StateSpaceTooLarge { states, cap } => {
                write!(
                    f,
                    "state space has {states} states, exceeding the cap of {cap}"
                )
            }
            AvailError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "probability vector has length {actual}, expected {expected}"
                )
            }
            AvailError::BlockMismatch {
                type_index,
                block_replicas,
                config_replicas,
            } => {
                write!(
                    f,
                    "birth-death block for type {type_index} was built for \
                     {block_replicas} replicas, configuration has {config_replicas}"
                )
            }
            AvailError::UnsupportedPolicy { backend } => {
                write!(
                    f,
                    "the {backend} backend requires the independent-repair policy"
                )
            }
            AvailError::Chain(e) => write!(f, "Markov analysis error: {e}"),
            AvailError::Arch(e) => write!(f, "architecture error: {e}"),
        }
    }
}

impl std::error::Error for AvailError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AvailError::Chain(e) => Some(e),
            AvailError::Arch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ChainError> for AvailError {
    fn from(e: ChainError) -> Self {
        AvailError::Chain(e)
    }
}

impl From<ArchError> for AvailError {
    fn from(e: ArchError) -> Self {
        AvailError::Arch(e)
    }
}
