//! Sparse availability model for large state spaces.
//!
//! The dense [`crate::model::AvailabilityModel`] materializes the full
//! `n × n` generator and is capped at a few thousand system states. Real
//! deployments with many server types and high replication degrees blow
//! past that (`Π (Y_x + 1)` grows geometrically), but the generator has
//! only `O(k)` transitions per state. This model builds the *transposed*
//! generator directly in CSR form and solves the steady state with the
//! sparse Gauss–Seidel sweeps of
//! [`wfms_markov::linalg::sparse`] — the same algorithm the paper names,
//! now in its scalable form.

use std::sync::Arc;

use wfms_markov::linalg::sparse::{sparse_steady_state_gauss_seidel, CsrMatrix};
use wfms_markov::linalg::GaussSeidelOptions;
use wfms_statechart::{Configuration, ServerTypeId, ServerTypeRegistry};

use crate::blocks::BirthDeathBlock;
use crate::error::AvailError;
use crate::model::RepairPolicy;
use crate::state_space::StateSpace;

/// Safety cap for the sparse model (states; memory is `O(states · k)`).
pub const SPARSE_STATE_CAP: usize = 2_000_000;

/// Sparse-storage availability CTMC.
#[derive(Debug, Clone)]
pub struct SparseAvailabilityModel {
    space: StateSpace,
    /// Transposed generator: row `i` holds the inflow rates `q_ji`.
    qt: CsrMatrix,
    /// Departure rates `-q_ii`.
    departure: Vec<f64>,
}

impl SparseAvailabilityModel {
    /// Builds the sparse availability CTMC, tabulating fresh per-type
    /// [`BirthDeathBlock`] rate ladders and delegating to
    /// [`SparseAvailabilityModel::from_blocks`]. The ladders hold the
    /// same float products the generator used to compute inline, so the
    /// model — and everything solved from it — is unchanged.
    ///
    /// # Errors
    /// [`AvailError::StateSpaceTooLarge`] beyond [`SPARSE_STATE_CAP`];
    /// architectural errors otherwise.
    pub fn new(
        registry: &ServerTypeRegistry,
        config: &Configuration,
        policy: RepairPolicy,
    ) -> Result<Self, AvailError> {
        let mut blocks = Vec::with_capacity(config.k());
        for (j, &y) in config.as_slice().iter().enumerate() {
            let st = registry.get(ServerTypeId(j))?;
            blocks.push(Arc::new(BirthDeathBlock::for_type(st, y, policy)));
        }
        Self::from_blocks(config, &blocks, policy)
    }

    /// Builds the sparse availability CTMC from pre-tabulated per-type
    /// birth–death blocks — the shared assembly path with the dense
    /// [`crate::model::AvailabilityModel::from_blocks`], used by the
    /// configuration-search engine so a neighbouring candidate `Y + e_k`
    /// pays only one new block.
    ///
    /// # Errors
    /// * [`AvailError::StateSpaceTooLarge`] beyond [`SPARSE_STATE_CAP`].
    /// * [`AvailError::BlockMismatch`] / [`AvailError::Arch`] when the
    ///   blocks do not match `config` (count, replicas, or policy).
    pub fn from_blocks(
        config: &Configuration,
        blocks: &[Arc<BirthDeathBlock>],
        policy: RepairPolicy,
    ) -> Result<Self, AvailError> {
        let space = StateSpace::new(config);
        let n = space.len();
        if n > SPARSE_STATE_CAP {
            return Err(AvailError::StateSpaceTooLarge {
                states: n,
                cap: SPARSE_STATE_CAP,
            });
        }
        let k = space.k();
        if blocks.len() != k {
            return Err(AvailError::Arch(
                wfms_statechart::ArchError::LengthMismatch {
                    what: "birth-death blocks",
                    expected: k,
                    actual: blocks.len(),
                },
            ));
        }
        for (j, block) in blocks.iter().enumerate() {
            if block.replicas() != config.as_slice()[j] || block.policy() != policy {
                return Err(AvailError::BlockMismatch {
                    type_index: j,
                    block_replicas: block.replicas(),
                    config_replicas: config.as_slice()[j],
                });
            }
        }
        let _obs_span = wfms_obs::span!("avail-build", states = n, types = k, backend = "sparse");
        let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(n * 2 * k);
        let mut departure = vec![0.0; n];
        let y = config.as_slice();
        for (idx, x) in space.iter() {
            // Strides let us compute neighbor indices without re-encoding.
            let mut stride = 1;
            for (j, block) in blocks.iter().enumerate() {
                if x[j] > 0 {
                    let rate = block.failure_rate(x[j]);
                    // Failure: transposed entry (to, from).
                    triplets.push((idx - stride, idx, rate));
                    departure[idx] += rate;
                }
                let failed = y[j] - x[j];
                if failed > 0 {
                    let rate = block.repair_rate(failed);
                    triplets.push((idx + stride, idx, rate));
                    departure[idx] += rate;
                }
                stride *= y[j] + 1;
            }
        }
        let qt = CsrMatrix::from_triplets(n, n, triplets).map_err(|_| {
            AvailError::IndexOutOfRange { index: n, len: n } // unreachable by construction
        })?;
        Ok(SparseAvailabilityModel {
            space,
            qt,
            departure,
        })
    }

    /// The underlying state space.
    pub fn state_space(&self) -> &StateSpace {
        &self.space
    }

    /// Number of stored transitions.
    pub fn transitions(&self) -> usize {
        self.qt.nnz()
    }

    /// Stationary distribution via sparse Gauss–Seidel.
    ///
    /// # Errors
    /// [`AvailError::Chain`] on non-convergence.
    pub fn steady_state(&self, opts: GaussSeidelOptions) -> Result<Vec<f64>, AvailError> {
        let mut obs_span = wfms_obs::span!(
            "avail-steady-state",
            states = self.space.len(),
            backend = "sparse"
        );
        // Failpoint `avail.steady-state`: shared with the dense model, so
        // a single spec covers either backend. The inner sparse sweep has
        // its own `linalg.sparse-gs` site.
        let mut poison_solution = false;
        match wfms_fault::point!("avail.steady-state") {
            Some(wfms_fault::Injection::Error) => {
                return Err(AvailError::Chain(wfms_markov::ChainError::Iterative(
                    wfms_markov::linalg::IterativeError::NotConverged {
                        iterations: 0,
                        last_residual: f64::INFINITY,
                    },
                )));
            }
            Some(wfms_fault::Injection::Nan) => poison_solution = true,
            None => {}
        }
        let sol = sparse_steady_state_gauss_seidel(&self.qt, &self.departure, opts)
            .map_err(wfms_markov::ChainError::Iterative)?;
        obs_span.record("iterations", sol.iterations);
        let mut pi = sol.x;
        if poison_solution {
            // Poison the full-strength state (last in encoding order): it
            // is always an up state, so the NaN reaches the availability
            // sum rather than hiding in the all-down state's mass.
            if let Some(last) = pi.last_mut() {
                *last = f64::NAN;
            }
        }
        Ok(pi)
    }

    /// WFMS availability given a stationary distribution.
    ///
    /// # Errors
    /// [`AvailError::LengthMismatch`] on a wrong `pi` length.
    pub fn availability(&self, pi: &[f64]) -> Result<f64, AvailError> {
        if pi.len() != self.space.len() {
            return Err(AvailError::LengthMismatch {
                expected: self.space.len(),
                actual: pi.len(),
            });
        }
        let mut up = 0.0;
        for (idx, x) in self.space.iter() {
            if StateSpace::is_operational(&x) {
                up += pi[idx];
            }
        }
        Ok(up)
    }

    /// `1 - availability`.
    ///
    /// # Errors
    /// As [`SparseAvailabilityModel::availability`].
    pub fn unavailability(&self, pi: &[f64]) -> Result<f64, AvailError> {
        Ok(1.0 - self.availability(pi)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{closed_form_unavailability, AvailabilityModel};
    use wfms_markov::ctmc::SteadyStateMethod;
    use wfms_statechart::{paper_section52_registry, ServerType, ServerTypeKind};

    fn gs() -> GaussSeidelOptions {
        GaussSeidelOptions {
            tolerance: 1e-12,
            max_iterations: 100_000,
            relaxation: 1.0,
        }
    }

    #[test]
    fn sparse_matches_dense_on_paper_scenario() {
        let reg = paper_section52_registry();
        for y in [vec![1, 1, 1], vec![2, 2, 3], vec![3, 3, 3]] {
            let config = Configuration::new(&reg, y).unwrap();
            let dense = AvailabilityModel::new(&reg, &config).unwrap();
            let pi_d = dense.steady_state(SteadyStateMethod::Lu).unwrap();
            let u_dense = dense.unavailability(&pi_d).unwrap();

            let sparse =
                SparseAvailabilityModel::new(&reg, &config, RepairPolicy::Independent).unwrap();
            let pi_s = sparse.steady_state(gs()).unwrap();
            let u_sparse = sparse.unavailability(&pi_s).unwrap();
            assert!(
                (u_dense - u_sparse).abs() < 1e-10 + 1e-6 * u_dense,
                "{config}: dense {u_dense:e} vs sparse {u_sparse:e}"
            );
        }
    }

    #[test]
    fn sparse_matches_dense_for_single_repairman_policy() {
        let reg = paper_section52_registry();
        let config = Configuration::uniform(&reg, 3).unwrap();
        let dense =
            AvailabilityModel::with_policy(&reg, &config, RepairPolicy::SingleRepairmanPerType)
                .unwrap();
        let pi_d = dense.steady_state(SteadyStateMethod::Lu).unwrap();
        let u_dense = dense.unavailability(&pi_d).unwrap();
        let sparse =
            SparseAvailabilityModel::new(&reg, &config, RepairPolicy::SingleRepairmanPerType)
                .unwrap();
        let pi_s = sparse.steady_state(gs()).unwrap();
        let u_sparse = sparse.unavailability(&pi_s).unwrap();
        assert!((u_dense - u_sparse).abs() < 1e-10 + 1e-6 * u_dense);
    }

    /// A registry with `k` types of varied failure rates.
    fn big_registry(k: usize) -> ServerTypeRegistry {
        let mut reg = ServerTypeRegistry::new();
        for i in 0..k {
            reg.register(ServerType::with_exponential_service(
                format!("t{i}"),
                ServerTypeKind::ApplicationServer,
                1.0 / (1_440.0 * (1 + i % 3) as f64),
                0.1,
                0.01,
            ))
            .unwrap();
        }
        reg
    }

    #[test]
    fn sparse_scales_past_the_dense_cap_and_matches_closed_form() {
        // k = 8 types, 4 replicas each: 5^8 = 390 625 states — far beyond
        // any dense representation, solved in seconds sparsely.
        let reg = big_registry(8);
        let config = Configuration::uniform(&reg, 4).unwrap();
        assert!(config.system_state_count() > crate::model::DEFAULT_STATE_CAP);
        let sparse =
            SparseAvailabilityModel::new(&reg, &config, RepairPolicy::Independent).unwrap();
        assert_eq!(sparse.state_space().len(), 390_625);
        let pi = sparse
            .steady_state(GaussSeidelOptions {
                tolerance: 1e-10,
                max_iterations: 10_000,
                relaxation: 1.0,
            })
            .unwrap();
        let u = sparse.unavailability(&pi).unwrap();
        let expect = closed_form_unavailability(&reg, &config).unwrap();
        assert!(
            (u - expect).abs() < 1e-10 + 1e-4 * expect,
            "sparse {u:e} vs closed form {expect:e}"
        );
    }

    #[test]
    fn sparse_cap_is_enforced() {
        let reg = big_registry(10);
        let config = Configuration::uniform(&reg, 9).unwrap(); // 10^10 states
        assert!(matches!(
            SparseAvailabilityModel::new(&reg, &config, RepairPolicy::Independent),
            Err(AvailError::StateSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn from_blocks_matches_direct_assembly_bitwise() {
        let reg = paper_section52_registry();
        let config = Configuration::new(&reg, vec![2, 1, 3]).unwrap();
        for policy in [
            RepairPolicy::Independent,
            RepairPolicy::SingleRepairmanPerType,
        ] {
            let direct = SparseAvailabilityModel::new(&reg, &config, policy).unwrap();
            let blocks: Vec<Arc<BirthDeathBlock>> = reg
                .iter()
                .map(|(id, st)| {
                    Arc::new(BirthDeathBlock::for_type(
                        st,
                        config.as_slice()[id.0],
                        policy,
                    ))
                })
                .collect();
            let shared = SparseAvailabilityModel::from_blocks(&config, &blocks, policy).unwrap();
            assert_eq!(
                direct.steady_state(gs()).unwrap(),
                shared.steady_state(gs()).unwrap(),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn from_blocks_rejects_policy_mismatch() {
        let reg = paper_section52_registry();
        let config = Configuration::uniform(&reg, 2).unwrap();
        let blocks: Vec<Arc<BirthDeathBlock>> = reg
            .iter()
            .map(|(id, st)| {
                Arc::new(BirthDeathBlock::for_type(
                    st,
                    config.as_slice()[id.0],
                    RepairPolicy::Independent,
                ))
            })
            .collect();
        assert!(matches!(
            SparseAvailabilityModel::from_blocks(
                &config,
                &blocks,
                RepairPolicy::SingleRepairmanPerType
            ),
            Err(AvailError::BlockMismatch { .. })
        ));
    }

    #[test]
    fn transition_count_is_linear_in_states_and_types() {
        let reg = big_registry(4);
        let config = Configuration::uniform(&reg, 2).unwrap();
        let sparse =
            SparseAvailabilityModel::new(&reg, &config, RepairPolicy::Independent).unwrap();
        let n = sparse.state_space().len();
        // Each state has at most 2k outgoing transitions.
        assert!(sparse.transitions() <= n * 2 * 4);
        assert!(
            sparse.transitions() >= n,
            "every state has at least one transition"
        );
    }
}
