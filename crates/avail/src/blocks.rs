//! Per-type birth–death blocks of the availability CTMC.
//!
//! Under both repair policies the availability chain is a product of
//! independent per-type birth–death processes on the up-count
//! `X_x ∈ {0, …, Y_x}`: failures move down at `X_x · λ_x`, repairs move
//! up at a rate depending only on the number failed. A
//! [`BirthDeathBlock`] tabulates those two rate ladders for one server
//! type once, so assembling the generator for a neighbouring candidate
//! `Y + e_k` reuses the blocks of every unchanged type verbatim — the
//! incremental-construction lever behind the configuration-search
//! engine's availability cache.
//!
//! The tabulated rates are the *same float products* the direct
//! generator assembly computes (`x as f64 * λ`, `failed as f64 * μ`),
//! so a model built from blocks is bit-identical to one built from
//! scratch.

use wfms_statechart::ServerType;

use crate::model::RepairPolicy;

/// The failure/repair rate ladders of one server type's birth–death
/// process, for a fixed replica count `Y_x` and repair policy.
#[derive(Debug, Clone, PartialEq)]
pub struct BirthDeathBlock {
    replicas: usize,
    policy: RepairPolicy,
    /// `failure_rates[x]` is the transition rate from up-count `x` to
    /// `x - 1`, i.e. `x · λ`; entry 0 is zero.
    failure_rates: Vec<f64>,
    /// `repair_rates[f]` is the transition rate from `f` failed servers
    /// to `f - 1`, per the policy; entry 0 is zero.
    repair_rates: Vec<f64>,
}

impl BirthDeathBlock {
    /// Tabulates the rate ladders for `replicas` servers of type `st`.
    pub fn for_type(st: &ServerType, replicas: usize, policy: RepairPolicy) -> Self {
        let failure_rates = (0..=replicas).map(|x| x as f64 * st.failure_rate).collect();
        let repair_rates = (0..=replicas)
            .map(|failed| {
                if failed == 0 {
                    0.0
                } else {
                    match policy {
                        RepairPolicy::Independent => failed as f64 * st.repair_rate,
                        RepairPolicy::SingleRepairmanPerType => st.repair_rate,
                    }
                }
            })
            .collect();
        BirthDeathBlock {
            replicas,
            policy,
            failure_rates,
            repair_rates,
        }
    }

    /// The replica count `Y_x` this block was built for.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The repair policy the repair ladder encodes.
    pub fn policy(&self) -> RepairPolicy {
        self.policy
    }

    /// Failure rate out of up-count `up` (towards `up - 1`).
    ///
    /// # Panics
    /// When `up > replicas`.
    pub fn failure_rate(&self, up: usize) -> f64 {
        self.failure_rates[up]
    }

    /// Repair rate with `failed` servers down (towards `failed - 1`).
    ///
    /// # Panics
    /// When `failed > replicas`.
    pub fn repair_rate(&self, failed: usize) -> f64 {
        self.repair_rates[failed]
    }

    /// The stationary distribution of this type's up-count, from the
    /// closed-form birth–death balance `π_{x+1} · (x+1)λ = π_x · μ(f)`:
    /// `marginal[x]` is the probability that exactly `x` of the `Y_x`
    /// replicas are up.
    ///
    /// Because types fail and repair independently, the product of the
    /// per-type marginals is the stationary distribution of the full
    /// chain — a cross-check for the global solve (exact under both
    /// policies, since the chain is a product of reversible blocks).
    pub fn marginal_distribution(&self) -> Vec<f64> {
        let y = self.replicas;
        let mut unnormalized = vec![0.0; y + 1];
        // Walk down from the fully-up state: balance across the cut
        // between x and x+1 gives π_x = π_{x+1} · λ(x+1) / μ(Y-x).
        unnormalized[y] = 1.0;
        for x in (0..y).rev() {
            let up_rate = self.repair_rates[y - x]; // x -> x+1
            let down_rate = self.failure_rates[x + 1]; // x+1 -> x
            unnormalized[x] = if up_rate > 0.0 {
                unnormalized[x + 1] * down_rate / up_rate
            } else {
                0.0
            };
        }
        let total: f64 = unnormalized.iter().sum();
        unnormalized.into_iter().map(|p| p / total).collect()
    }

    /// Probability that at least one replica is up (`1 - marginal[0]`).
    pub fn availability(&self) -> f64 {
        1.0 - self.marginal_distribution()[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AvailabilityModel;
    use wfms_markov::ctmc::SteadyStateMethod;
    use wfms_statechart::{paper_section52_registry, Configuration, ServerTypeId};

    #[test]
    fn ladders_match_direct_generator_products() {
        let reg = paper_section52_registry();
        let st = reg.get(ServerTypeId(0)).unwrap();
        let block = BirthDeathBlock::for_type(st, 3, RepairPolicy::Independent);
        for x in 0..=3 {
            assert_eq!(block.failure_rate(x), x as f64 * st.failure_rate);
            assert_eq!(block.repair_rate(x), x as f64 * st.repair_rate);
        }
        let single = BirthDeathBlock::for_type(st, 3, RepairPolicy::SingleRepairmanPerType);
        assert_eq!(single.repair_rate(0), 0.0);
        assert_eq!(single.repair_rate(1), st.repair_rate);
        assert_eq!(single.repair_rate(3), st.repair_rate);
    }

    #[test]
    fn marginal_matches_independent_closed_form() {
        let reg = paper_section52_registry();
        let st = reg.get(ServerTypeId(2)).unwrap();
        let q = st.failure_rate / (st.failure_rate + st.repair_rate);
        for y in 1..=4 {
            let block = BirthDeathBlock::for_type(st, y, RepairPolicy::Independent);
            // Independent repair => binomial marginal over up-counts.
            let marginal = block.marginal_distribution();
            assert!((marginal.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            let p_all_down = q.powi(y as i32);
            assert!(
                (marginal[0] - p_all_down).abs() < 1e-15,
                "Y={y}: marginal[0]={:e} vs q^Y={p_all_down:e}",
                marginal[0]
            );
            assert!((block.availability() - (1.0 - p_all_down)).abs() < 1e-15);
        }
    }

    #[test]
    fn product_of_marginals_matches_full_chain() {
        let reg = paper_section52_registry();
        let config = Configuration::new(&reg, vec![2, 1, 3]).unwrap();
        let model = AvailabilityModel::new(&reg, &config).unwrap();
        let pi = model.steady_state(SteadyStateMethod::Lu).unwrap();
        let marginals: Vec<Vec<f64>> = reg
            .iter()
            .map(|(id, st)| {
                BirthDeathBlock::for_type(st, config.as_slice()[id.0], RepairPolicy::Independent)
                    .marginal_distribution()
            })
            .collect();
        for (idx, x) in model.state_space().iter() {
            let product: f64 = x.iter().zip(&marginals).map(|(&up, m)| m[up]).product();
            assert!(
                (pi[idx] - product).abs() < 1e-10,
                "state {x:?}: pi={} vs product {product}",
                pi[idx]
            );
        }
    }
}
