//! The WFMS availability model (Sec. 5 of the EDBT 2000 paper).
//!
//! A CTMC over the system states `X ≤ Y` (currently available replicas
//! per server type) with failure transitions at rate `X_x · λ_x` and
//! repair transitions per a configurable [`model::RepairPolicy`]. The
//! steady-state analysis yields the probability of every degraded state,
//! the availability of the entire WFMS, and its expected downtime — the
//! quantities behind the paper's Sec. 5.2 example (71 h/year for the
//! unreplicated system, ~10 s/year for 3-way replication, under a minute
//! for the asymmetric (2,2,3) configuration).

#![warn(missing_docs)]

pub mod blocks;
pub mod error;
pub mod model;
pub mod phase;
pub mod product_form;
pub mod sparse_model;
pub mod state_space;

pub use blocks::BirthDeathBlock;
pub use error::AvailError;
pub use model::{
    closed_form_unavailability, AvailabilityModel, RepairPolicy, DEFAULT_STATE_CAP,
    MINUTES_PER_YEAR,
};
pub use phase::{single_repairman_type_unavailability, system_unavailability_with_repair_phases};
pub use product_form::{
    availability_gain, select_backend, AvailBackend, BestFirstStates, ProductFormModel,
};
pub use sparse_model::{SparseAvailabilityModel, SPARSE_STATE_CAP};
pub use state_space::StateSpace;
