//! Product-form availability solver for independent repair (Sec. 5).
//!
//! Under [`RepairPolicy::Independent`] the availability CTMC is a
//! *product* of per-type reversible birth–death chains: the stationary
//! probability of a system state `X` factorizes into
//!
//! ```text
//! π(X) = Π_x  m_x[X_x]
//! ```
//!
//! where `m_x` is the truncated birth–death marginal of type `x` (see
//! [`BirthDeathBlock::marginal_distribution`]). [`ProductFormModel`]
//! exploits that: it computes the `k` marginals in closed form —
//! `O(Σ_x Y_x)` work — instead of assembling and solving the
//! `Π_x (Y_x + 1)`-state generator, and answers
//!
//! * the exact WFMS availability `Π_x (1 − m_x[0])` (the closed form of
//!   [`crate::model::closed_form_unavailability`], reached through the
//!   same marginals the state probabilities use),
//! * the probability of any individual system state, and
//! * a lazy best-first enumeration of system states in **descending
//!   `π` order** ([`ProductFormModel::enumerate_descending`]) — the
//!   primitive behind ε-truncated performability evaluation, which
//!   visits only the handful of near-fully-up states carrying almost
//!   all the mass.
//!
//! # Enumeration order (proof sketch)
//!
//! Sort each marginal descending into `v_x[0] ≥ v_x[1] ≥ … ≥ 0` and
//! identify a state with its *rank vector* `r` (`π = Π_x v_x[r_x]`).
//! Raising any single rank multiplies the score by a factor ≤ 1, so
//! scores are monotone non-increasing along the child relation
//! `r → r + e_x`. The enumerator keeps a max-heap seeded with `r = 0`
//! and, on popping `r`, pushes its `k` children. By induction every
//! not-yet-emitted state has an ancestor (under the child relation) in
//! the heap, and that ancestor's score is an upper bound on the
//! state's — hence the heap maximum is the global maximum of all
//! remaining states, and states are emitted in descending `π` order.
//!
//! The single-repairman policy does **not** factorize per replica;
//! [`select_backend`] routes such chains to the sparse Gauss–Seidel
//! model instead.

// audit:allow-file(A006, reason = "the best-first frontier's `seen` set is membership-only dedup; enumeration order comes from the BinaryHeap score ordering, so hash order never reaches results")
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::str::FromStr;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use wfms_statechart::{Configuration, ServerTypeId, ServerTypeRegistry};

use crate::blocks::BirthDeathBlock;
use crate::error::AvailError;
use crate::model::{RepairPolicy, DEFAULT_STATE_CAP};
use crate::sparse_model::SPARSE_STATE_CAP;
use crate::state_space::StateSpace;

/// Which steady-state solver evaluates the availability chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum AvailBackend {
    /// Pick automatically: the product form when the policy factorizes
    /// and the caller tolerates truncation (`ε > 0`), else dense LU up
    /// to [`DEFAULT_STATE_CAP`] states, else sparse Gauss–Seidel.
    #[default]
    Auto,
    /// Dense generator + LU solve (bit-for-bit the historical path).
    Dense,
    /// Transposed-CSR generator + sparse Gauss–Seidel sweeps.
    Sparse,
    /// Closed-form per-type marginals; exact availability and lazy
    /// descending-`π` state enumeration. Independent repair only.
    Product,
}

impl std::fmt::Display for AvailBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            AvailBackend::Auto => "auto",
            AvailBackend::Dense => "dense",
            AvailBackend::Sparse => "sparse",
            AvailBackend::Product => "product",
        };
        write!(f, "{name}")
    }
}

impl FromStr for AvailBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(AvailBackend::Auto),
            "dense" => Ok(AvailBackend::Dense),
            "sparse" => Ok(AvailBackend::Sparse),
            "product" => Ok(AvailBackend::Product),
            other => Err(format!(
                "unknown availability backend '{other}' (expected auto, dense, sparse, or product)"
            )),
        }
    }
}

/// Resolves a requested backend to a concrete one for a chain with
/// `states` system states under `policy`, given the caller's truncation
/// tolerance `epsilon`.
///
/// `Auto` prefers the product form whenever the policy factorizes and
/// the caller opted into truncation (`ε > 0`); with `ε = 0` it keeps
/// the dense path (bit-identical results) while it fits under
/// [`DEFAULT_STATE_CAP`], falling back to the sparse model beyond.
/// An explicit `Product` request under a non-factorizing policy
/// degrades to `Sparse` — the documented single-repairman fallback.
pub fn select_backend(
    requested: AvailBackend,
    policy: RepairPolicy,
    states: usize,
    epsilon: f64,
) -> AvailBackend {
    let resolved = match requested {
        AvailBackend::Auto => {
            if policy == RepairPolicy::Independent && epsilon > 0.0 {
                AvailBackend::Product
            } else if states > DEFAULT_STATE_CAP {
                AvailBackend::Sparse
            } else {
                AvailBackend::Dense
            }
        }
        explicit => explicit,
    };
    if resolved == AvailBackend::Product && policy != RepairPolicy::Independent {
        AvailBackend::Sparse
    } else {
        resolved
    }
}

/// Product-form availability model: the `k` closed-form per-type
/// marginals of an independent-repair chain. See the module docs.
#[derive(Debug, Clone)]
pub struct ProductFormModel {
    config: Configuration,
    space: StateSpace,
    /// `marginals[x][u]` = P(exactly `u` of the `Y_x` replicas up).
    marginals: Vec<Vec<f64>>,
}

impl ProductFormModel {
    /// Builds the model for `config`, tabulating fresh independent-repair
    /// blocks per type.
    ///
    /// # Errors
    /// [`AvailError::Arch`] on a registry/configuration mismatch.
    pub fn new(registry: &ServerTypeRegistry, config: &Configuration) -> Result<Self, AvailError> {
        if config.k() != registry.len() {
            return Err(AvailError::Arch(
                wfms_statechart::ArchError::LengthMismatch {
                    what: "configuration",
                    expected: registry.len(),
                    actual: config.k(),
                },
            ));
        }
        let mut blocks = Vec::with_capacity(config.k());
        for (j, &y) in config.as_slice().iter().enumerate() {
            let st = registry.get(ServerTypeId(j))?;
            blocks.push(Arc::new(BirthDeathBlock::for_type(
                st,
                y,
                RepairPolicy::Independent,
            )));
        }
        Self::from_blocks(config, &blocks)
    }

    /// Builds the model from pre-tabulated blocks (the assessment
    /// engine's incremental path; only new `(type, Y_x)` pairs cost a
    /// tabulation).
    ///
    /// # Errors
    /// * [`AvailError::UnsupportedPolicy`] when any block encodes a
    ///   non-independent repair ladder — the chain then has no product
    ///   form (use the sparse model).
    /// * [`AvailError::BlockMismatch`] / [`AvailError::Arch`] when the
    ///   blocks do not match `config`.
    pub fn from_blocks(
        config: &Configuration,
        blocks: &[Arc<BirthDeathBlock>],
    ) -> Result<Self, AvailError> {
        let space = StateSpace::new(config);
        let k = space.k();
        if blocks.len() != k {
            return Err(AvailError::Arch(
                wfms_statechart::ArchError::LengthMismatch {
                    what: "birth-death blocks",
                    expected: k,
                    actual: blocks.len(),
                },
            ));
        }
        for (j, block) in blocks.iter().enumerate() {
            if block.policy() != RepairPolicy::Independent {
                return Err(AvailError::UnsupportedPolicy { backend: "product" });
            }
            if block.replicas() != config.as_slice()[j] {
                return Err(AvailError::BlockMismatch {
                    type_index: j,
                    block_replicas: block.replicas(),
                    config_replicas: config.as_slice()[j],
                });
            }
        }
        let _obs_span = wfms_obs::span!("avail-product-form", states = space.len(), types = k);
        let marginals = blocks.iter().map(|b| b.marginal_distribution()).collect();
        Ok(ProductFormModel {
            config: config.clone(),
            space,
            marginals,
        })
    }

    /// Builds the model directly from per-type marginals — the
    /// assessment engine's one-coordinate *delta* path: for a move
    /// `Y → Y ± e_x` it clones the incumbent's marginals, replaces only
    /// type `x`'s with the freshly tabulated one, and skips the `k − 1`
    /// untouched recurrences entirely. Because
    /// [`BirthDeathBlock::marginal_distribution`] is a deterministic
    /// function of `(type, replicas, policy)`, the result is
    /// bit-identical to [`ProductFormModel::from_blocks`] over fresh
    /// blocks for the same configuration.
    ///
    /// # Errors
    /// [`AvailError::Arch`] when the marginal count or any marginal's
    /// length (`Y_x + 1` entries for type `x`) does not match `config`.
    pub fn from_marginals(
        config: &Configuration,
        marginals: Vec<Vec<f64>>,
    ) -> Result<Self, AvailError> {
        let space = StateSpace::new(config);
        let k = space.k();
        if marginals.len() != k {
            return Err(AvailError::Arch(
                wfms_statechart::ArchError::LengthMismatch {
                    what: "per-type marginals",
                    expected: k,
                    actual: marginals.len(),
                },
            ));
        }
        for (j, m) in marginals.iter().enumerate() {
            let expected = config.as_slice()[j] + 1;
            if m.len() != expected {
                return Err(AvailError::Arch(
                    wfms_statechart::ArchError::LengthMismatch {
                        what: "marginal up-count entries",
                        expected,
                        actual: m.len(),
                    },
                ));
            }
        }
        Ok(ProductFormModel {
            config: config.clone(),
            space,
            marginals,
        })
    }

    /// The underlying state space.
    pub fn state_space(&self) -> &StateSpace {
        &self.space
    }

    /// The configuration this model was built for.
    pub fn configuration(&self) -> &Configuration {
        &self.config
    }

    /// The per-type up-count marginals: `marginals()[x][u]` is the
    /// stationary probability that exactly `u` of the `Y_x` replicas of
    /// type `x` are up.
    pub fn marginals(&self) -> &[Vec<f64>] {
        &self.marginals
    }

    /// Exact WFMS availability, `Π_x (1 − m_x[0])` — no enumeration.
    pub fn availability(&self) -> f64 {
        let mut a = 1.0;
        for m in &self.marginals {
            a *= 1.0 - m[0];
        }
        a
    }

    /// `1 - availability` (exact).
    pub fn unavailability(&self) -> f64 {
        1.0 - self.availability()
    }

    /// Stationary probability of one system state, `Π_x m_x[X_x]`.
    ///
    /// # Errors
    /// [`AvailError::StateOutOfRange`] on a foreign state vector.
    pub fn state_probability(&self, state: &[usize]) -> Result<f64, AvailError> {
        self.space.encode(state)?;
        Ok(self.unchecked_probability(state))
    }

    fn unchecked_probability(&self, state: &[usize]) -> f64 {
        let mut p = 1.0;
        for (x, m) in state.iter().zip(&self.marginals) {
            p *= m[*x];
        }
        p
    }

    /// Materializes the full stationary vector in encoding order — a
    /// cross-check helper; the point of the product form is to *avoid*
    /// this `O(Π (Y_x + 1))` walk.
    ///
    /// # Errors
    /// [`AvailError::StateSpaceTooLarge`] beyond [`SPARSE_STATE_CAP`].
    pub fn steady_state(&self) -> Result<Vec<f64>, AvailError> {
        let n = self.space.len();
        if n > SPARSE_STATE_CAP {
            return Err(AvailError::StateSpaceTooLarge {
                states: n,
                cap: SPARSE_STATE_CAP,
            });
        }
        let mut pi = vec![0.0; n];
        for (idx, x) in self.space.iter() {
            pi[idx] = self.unchecked_probability(&x);
        }
        Ok(pi)
    }

    /// Lazily yields `(state, π)` pairs in descending `π` order (ties
    /// broken deterministically). Pull only as many states as needed:
    /// each step costs `O(k log heap)` and the heap grows by at most
    /// `k - 1` entries per emitted state.
    pub fn enumerate_descending(&self) -> BestFirstStates {
        BestFirstStates::new(&self.marginals)
    }
}

/// The multiplicative factor a one-coordinate move `Y_x → Y'_x` applies
/// to the product-form availability: `A' = A · (1 − m'_x[0]) / (1 − m_x[0])`
/// where `m_x[0]` / `m'_x[0]` are the all-down marginal entries before
/// and after the move (`q_x^{Y_x}` under independent repair). This is
/// the closed-form kernel behind `∂A/∂Y_x` move ranking: the factor
/// exceeds `1` exactly when the move raises availability, and
/// `A · (gain − 1)` is the availability gained.
///
/// Note the engine's *delta assessment* deliberately does **not** patch
/// a cached availability with this factor — a float divide is not
/// bitwise-invertible — it re-folds the product over the replaced
/// marginals instead ([`ProductFormModel::from_marginals`]); the gain
/// factor is for *ranking*, where closed-form speed matters and
/// bit-identity does not.
pub fn availability_gain(all_down_before: f64, all_down_after: f64) -> f64 {
    (1.0 - all_down_after) / (1.0 - all_down_before)
}

/// Heap entry of the best-first enumeration: a rank vector into the
/// descending-sorted marginals and its score `Π_x v_x[r_x]`.
#[derive(Debug)]
struct Frontier {
    score: f64,
    ranks: Vec<u32>,
}

impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Frontier {}

impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on score; equal scores pop in lexicographic rank
        // order so the emission sequence is fully deterministic.
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.ranks.cmp(&self.ranks))
    }
}

/// Best-first iterator over system states in descending stationary
/// probability — see [`ProductFormModel::enumerate_descending`] and the
/// module-level proof sketch.
#[derive(Debug)]
pub struct BestFirstStates {
    /// Per type: up-counts sorted by descending marginal probability.
    orders: Vec<Vec<usize>>,
    /// `values[x][r]` = marginal probability at rank `r` of type `x`.
    values: Vec<Vec<f64>>,
    heap: BinaryHeap<Frontier>,
    seen: HashSet<Vec<u32>>,
}

impl BestFirstStates {
    fn new(marginals: &[Vec<f64>]) -> Self {
        let mut orders = Vec::with_capacity(marginals.len());
        let mut values = Vec::with_capacity(marginals.len());
        for m in marginals {
            let mut order: Vec<usize> = (0..m.len()).collect();
            // Descending by probability, up-count as the deterministic
            // tie-break.
            order.sort_by(|&a, &b| m[b].total_cmp(&m[a]).then(a.cmp(&b)));
            values.push(order.iter().map(|&u| m[u]).collect());
            orders.push(order);
        }
        let root = vec![0u32; marginals.len()];
        let mut heap = BinaryHeap::new();
        let mut seen = HashSet::new();
        seen.insert(root.clone());
        heap.push(Frontier {
            score: Self::score_of(&values, &root),
            ranks: root,
        });
        BestFirstStates {
            orders,
            values,
            heap,
            seen,
        }
    }

    /// `Π_x values[x][ranks[x]]`, multiplied in type order — the same
    /// float product as [`ProductFormModel::state_probability`].
    fn score_of(values: &[Vec<f64>], ranks: &[u32]) -> f64 {
        let mut p = 1.0;
        for (v, &r) in values.iter().zip(ranks) {
            p *= v[r as usize];
        }
        p
    }
}

impl Iterator for BestFirstStates {
    type Item = (Vec<usize>, f64);

    fn next(&mut self) -> Option<Self::Item> {
        let top = self.heap.pop()?;
        for x in 0..top.ranks.len() {
            let next_rank = top.ranks[x] as usize + 1;
            if next_rank < self.orders[x].len() {
                let mut child = top.ranks.clone();
                child[x] += 1;
                if self.seen.insert(child.clone()) {
                    self.heap.push(Frontier {
                        score: Self::score_of(&self.values, &child),
                        ranks: child,
                    });
                }
            }
        }
        let state = top
            .ranks
            .iter()
            .zip(&self.orders)
            .map(|(&r, order)| order[r as usize])
            .collect();
        Some((state, top.score))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{closed_form_unavailability, AvailabilityModel};
    use crate::sparse_model::SparseAvailabilityModel;
    use wfms_markov::ctmc::SteadyStateMethod;
    use wfms_markov::linalg::GaussSeidelOptions;
    use wfms_statechart::paper_section52_registry;

    fn gs() -> GaussSeidelOptions {
        GaussSeidelOptions {
            tolerance: 1e-12,
            max_iterations: 100_000,
            relaxation: 1.0,
        }
    }

    #[test]
    fn backend_selection_rules() {
        use AvailBackend::*;
        use RepairPolicy::*;
        // Auto, exact: dense under the cap, sparse above.
        assert_eq!(select_backend(Auto, Independent, 27, 0.0), Dense);
        assert_eq!(
            select_backend(Auto, Independent, DEFAULT_STATE_CAP + 1, 0.0),
            Sparse
        );
        // Auto, truncated, factorizing policy: product regardless of size.
        assert_eq!(select_backend(Auto, Independent, 27, 1e-9), Product);
        assert_eq!(select_backend(Auto, Independent, 1_000_000, 1e-9), Product);
        // Single repairman never reaches the product form.
        assert_eq!(
            select_backend(Auto, SingleRepairmanPerType, 27, 1e-9),
            Dense
        );
        assert_eq!(
            select_backend(Product, SingleRepairmanPerType, 27, 1e-9),
            Sparse
        );
        // Explicit requests stick.
        assert_eq!(select_backend(Sparse, Independent, 27, 0.0), Sparse);
        assert_eq!(select_backend(Product, Independent, 27, 0.0), Product);
    }

    #[test]
    fn backend_parses_and_displays_round_trip() {
        for b in [
            AvailBackend::Auto,
            AvailBackend::Dense,
            AvailBackend::Sparse,
            AvailBackend::Product,
        ] {
            assert_eq!(b.to_string().parse::<AvailBackend>().unwrap(), b);
        }
        assert!("gauss".parse::<AvailBackend>().is_err());
    }

    #[test]
    fn product_availability_matches_closed_form_exactly_in_structure() {
        let reg = paper_section52_registry();
        for y in [vec![1, 1, 1], vec![2, 2, 3], vec![3, 3, 3]] {
            let config = Configuration::new(&reg, y).unwrap();
            let model = ProductFormModel::new(&reg, &config).unwrap();
            let closed = closed_form_unavailability(&reg, &config).unwrap();
            assert!(
                (model.unavailability() - closed).abs() < 1e-15 + 1e-12 * closed,
                "{config}: product {:e} vs closed {closed:e}",
                model.unavailability()
            );
        }
    }

    #[test]
    fn from_marginals_replacement_is_bit_identical_to_from_blocks() {
        // The engine's delta path: take a neighbour's marginals, replace
        // only the moved type's, and get the exact model `from_blocks`
        // would build for the new configuration — bit for bit.
        let reg = paper_section52_registry();
        let incumbent = Configuration::new(&reg, vec![2, 2, 3]).unwrap();
        let neighbour = Configuration::new(&reg, vec![2, 3, 3]).unwrap();
        let base = ProductFormModel::new(&reg, &incumbent).unwrap();
        let mut marginals = base.marginals().to_vec();
        let moved = BirthDeathBlock::for_type(
            reg.get(ServerTypeId(1)).unwrap(),
            3,
            RepairPolicy::Independent,
        );
        marginals[1] = moved.marginal_distribution();
        let patched = ProductFormModel::from_marginals(&neighbour, marginals).unwrap();
        let fresh = ProductFormModel::new(&reg, &neighbour).unwrap();
        assert_eq!(patched.marginals(), fresh.marginals());
        assert_eq!(
            patched.availability().to_bits(),
            fresh.availability().to_bits()
        );
        let lazy_patched: Vec<(Vec<usize>, f64)> = patched.enumerate_descending().collect();
        let lazy_fresh: Vec<(Vec<usize>, f64)> = fresh.enumerate_descending().collect();
        assert_eq!(lazy_patched, lazy_fresh);
    }

    #[test]
    fn from_marginals_rejects_mismatched_shapes() {
        let reg = paper_section52_registry();
        let config = Configuration::new(&reg, vec![2, 2, 2]).unwrap();
        let model = ProductFormModel::new(&reg, &config).unwrap();
        // Wrong marginal count.
        let short = model.marginals()[..2].to_vec();
        assert!(ProductFormModel::from_marginals(&config, short).is_err());
        // Wrong entry count for one type (Y_x + 1 expected).
        let mut bad = model.marginals().to_vec();
        bad[0].pop();
        assert!(ProductFormModel::from_marginals(&config, bad).is_err());
    }

    #[test]
    fn availability_gain_matches_the_recomputed_product() {
        let reg = paper_section52_registry();
        let before = Configuration::new(&reg, vec![2, 2, 2]).unwrap();
        let after = Configuration::new(&reg, vec![2, 3, 2]).unwrap();
        let a0 = ProductFormModel::new(&reg, &before).unwrap();
        let a1 = ProductFormModel::new(&reg, &after).unwrap();
        let gain = availability_gain(a0.marginals()[1][0], a1.marginals()[1][0]);
        assert!(gain > 1.0, "adding a replica raises availability");
        let predicted = a0.availability() * gain;
        assert!(
            (predicted - a1.availability()).abs() < 1e-15,
            "patched {predicted:e} vs recomputed {:e}",
            a1.availability()
        );
    }

    #[test]
    fn product_steady_state_matches_dense_lu() {
        let reg = paper_section52_registry();
        let config = Configuration::new(&reg, vec![2, 1, 3]).unwrap();
        let dense = AvailabilityModel::new(&reg, &config).unwrap();
        let pi_lu = dense.steady_state(SteadyStateMethod::Lu).unwrap();
        let product = ProductFormModel::new(&reg, &config).unwrap();
        let pi_pf = product.steady_state().unwrap();
        for (idx, x) in product.state_space().iter() {
            assert!(
                (pi_lu[idx] - pi_pf[idx]).abs() < 1e-10,
                "state {x:?}: LU {} vs product {}",
                pi_lu[idx],
                pi_pf[idx]
            );
        }
    }

    #[test]
    fn enumeration_is_descending_complete_and_consistent() {
        let reg = paper_section52_registry();
        let config = Configuration::new(&reg, vec![2, 2, 3]).unwrap();
        let model = ProductFormModel::new(&reg, &config).unwrap();
        let emitted: Vec<(Vec<usize>, f64)> = model.enumerate_descending().collect();
        let n = model.state_space().len();
        assert_eq!(emitted.len(), n, "every state exactly once");
        let mut seen = std::collections::HashSet::new();
        let mut last = f64::INFINITY;
        let mut total = 0.0;
        for (state, p) in &emitted {
            assert!(seen.insert(state.clone()), "duplicate {state:?}");
            assert!(*p <= last, "ascending step at {state:?}: {p} > {last}");
            // The emitted score is the same float product the point
            // query computes.
            assert_eq!(model.state_probability(state).unwrap(), *p);
            last = *p;
            total += *p;
        }
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        // The first state is the modal (fully-up, for realistic rates).
        assert_eq!(emitted[0].0, vec![2, 2, 3]);
    }

    #[test]
    fn enumeration_prefix_covers_almost_all_mass_quickly() {
        let reg = paper_section52_registry();
        let config = Configuration::uniform(&reg, 3).unwrap(); // 64 states
        let model = ProductFormModel::new(&reg, &config).unwrap();
        let mut covered = 0.0;
        let mut pulled = 0;
        for (_, p) in model.enumerate_descending() {
            covered += p;
            pulled += 1;
            if covered >= 1.0 - 1e-9 {
                break;
            }
        }
        assert!(
            pulled < 64,
            "descending enumeration should reach 1 - 1e-9 before exhausting \
             the space, needed {pulled}/64"
        );
    }

    #[test]
    fn single_repairman_blocks_are_rejected() {
        let reg = paper_section52_registry();
        let config = Configuration::uniform(&reg, 2).unwrap();
        let blocks: Vec<Arc<BirthDeathBlock>> = reg
            .iter()
            .map(|(id, st)| {
                Arc::new(BirthDeathBlock::for_type(
                    st,
                    config.as_slice()[id.0],
                    RepairPolicy::SingleRepairmanPerType,
                ))
            })
            .collect();
        assert!(matches!(
            ProductFormModel::from_blocks(&config, &blocks),
            Err(AvailError::UnsupportedPolicy { backend: "product" })
        ));
    }

    #[test]
    fn mismatched_blocks_are_rejected() {
        let reg = paper_section52_registry();
        let config = Configuration::uniform(&reg, 2).unwrap();
        let blocks: Vec<Arc<BirthDeathBlock>> = reg
            .iter()
            .map(|(_, st)| Arc::new(BirthDeathBlock::for_type(st, 3, RepairPolicy::Independent)))
            .collect();
        assert!(matches!(
            ProductFormModel::from_blocks(&config, &blocks),
            Err(AvailError::BlockMismatch { type_index: 0, .. })
        ));
        assert!(matches!(
            ProductFormModel::from_blocks(&config, &blocks[..2]),
            Err(AvailError::Arch(_))
        ));
    }

    #[test]
    fn product_matches_sparse_gauss_seidel() {
        let reg = paper_section52_registry();
        let config = Configuration::new(&reg, vec![3, 2, 3]).unwrap();
        let sparse =
            SparseAvailabilityModel::new(&reg, &config, RepairPolicy::Independent).unwrap();
        let pi_gs = sparse.steady_state(gs()).unwrap();
        let product = ProductFormModel::new(&reg, &config).unwrap();
        let pi_pf = product.steady_state().unwrap();
        for idx in 0..pi_gs.len() {
            assert!((pi_gs[idx] - pi_pf[idx]).abs() < 1e-9);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::model::{closed_form_unavailability, AvailabilityModel};
    use crate::sparse_model::SparseAvailabilityModel;
    use proptest::prelude::*;
    use wfms_markov::ctmc::SteadyStateMethod;
    use wfms_markov::linalg::GaussSeidelOptions;
    use wfms_statechart::{ServerType, ServerTypeKind, ServerTypeRegistry};

    fn arbitrary_registry_and_config() -> impl Strategy<Value = (ServerTypeRegistry, Configuration)>
    {
        let types = proptest::collection::vec((1e-5f64..1e-2, 0.01f64..1.0), 1..4);
        let reps = proptest::collection::vec(1usize..4, 1..4);
        (types, reps).prop_map(|(params, mut reps)| {
            let mut reg = ServerTypeRegistry::new();
            for (i, (lambda, mu)) in params.iter().enumerate() {
                reg.register(ServerType::with_exponential_service(
                    format!("t{i}"),
                    ServerTypeKind::WorkflowEngine,
                    *lambda,
                    *mu,
                    0.01,
                ))
                .unwrap();
            }
            reps.resize(reg.len(), 1);
            let config = Configuration::new(&reg, reps).unwrap();
            (reg, config)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Satellite invariant: the product-form π matches both the
        /// dense LU solve and the sparse Gauss–Seidel solve element-wise
        /// under independent repair.
        #[test]
        fn product_pi_matches_dense_and_sparse(
            (reg, config) in arbitrary_registry_and_config()
        ) {
            let product = ProductFormModel::new(&reg, &config).unwrap();
            let pi_pf = product.steady_state().unwrap();

            let dense = AvailabilityModel::new(&reg, &config).unwrap();
            let pi_lu = dense.steady_state(SteadyStateMethod::Lu).unwrap();

            let sparse = SparseAvailabilityModel::new(
                &reg, &config, RepairPolicy::Independent,
            ).unwrap();
            let pi_gs = sparse.steady_state(GaussSeidelOptions {
                tolerance: 1e-12,
                max_iterations: 100_000,
                relaxation: 1.0,
            }).unwrap();

            for idx in 0..pi_pf.len() {
                prop_assert!((pi_pf[idx] - pi_lu[idx]).abs() < 1e-9,
                    "idx {idx}: product {:e} vs LU {:e}", pi_pf[idx], pi_lu[idx]);
                prop_assert!((pi_pf[idx] - pi_gs[idx]).abs() < 1e-9,
                    "idx {idx}: product {:e} vs GS {:e}", pi_pf[idx], pi_gs[idx]);
            }
        }

        /// `closed_form_unavailability` and the product backend agree.
        #[test]
        fn closed_form_agrees_with_product_backend(
            (reg, config) in arbitrary_registry_and_config()
        ) {
            let product = ProductFormModel::new(&reg, &config).unwrap();
            let closed = closed_form_unavailability(&reg, &config).unwrap();
            prop_assert!(
                (product.unavailability() - closed).abs() < 1e-14 + 1e-10 * closed,
                "product {:e} vs closed {closed:e}", product.unavailability()
            );
        }

        /// The best-first enumeration is a descending permutation of the
        /// state space whose scores match the point query.
        #[test]
        fn enumeration_is_a_descending_permutation(
            (reg, config) in arbitrary_registry_and_config()
        ) {
            let model = ProductFormModel::new(&reg, &config).unwrap();
            let emitted: Vec<(Vec<usize>, f64)> =
                model.enumerate_descending().collect();
            prop_assert_eq!(emitted.len(), model.state_space().len());
            let mut last = f64::INFINITY;
            let mut seen = std::collections::HashSet::new();
            for (state, p) in &emitted {
                prop_assert!(seen.insert(state.clone()));
                prop_assert!(*p <= last);
                prop_assert_eq!(model.state_probability(state).unwrap(), *p);
                last = *p;
            }
        }
    }
}
