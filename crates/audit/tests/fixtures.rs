//! Seeded-violation fixtures: each test materialises a minimal fake
//! workspace in a temp directory, plants exactly one invariant
//! violation, and asserts the auditor reports the expected `A` code —
//! nothing more, nothing less. Doc-side checks are skipped for absent
//! files, so each fixture only carries the files its invariant needs.

use std::path::PathBuf;

use wfms_diag::Diagnostics;

struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("wfms-audit-fixture-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create fixture root");
        Fixture { root }
    }

    /// Writes `content` at `rel` under the fixture root.
    fn file(&self, rel: &str, content: &str) -> &Self {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parented path")).expect("create dirs");
        std::fs::write(path, content).expect("write fixture file");
        self
    }

    fn audit(&self) -> Diagnostics {
        wfms_audit::run_audit(&self.root).expect("fixture readable")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// Sorted distinct codes of a report.
fn codes(report: &Diagnostics) -> Vec<String> {
    report.distinct_codes()
}

/// A minimal obs crate doc whose only stable-name table lists exactly
/// the given names (pipe-table rows inside the crate docs).
fn obs_doc(names: &[&str]) -> String {
    let mut doc = String::from("//! | span | emitted by |\n//! |---|---|\n");
    for name in names {
        doc.push_str(&format!("//! | `{name}` | `wfms-x` |\n"));
    }
    doc.push_str("\npub fn noop() {}\n");
    doc
}

#[test]
fn undocumented_span_fires_a001() {
    let fx = Fixture::new("a001");
    fx.file("crates/obs/src/lib.rs", &obs_doc(&["documented-span"]))
        .file(
            "crates/perf/src/lib.rs",
            "pub fn f() {\n    let _s = wfms_obs::span!(\"mystery-span\");\n}\n",
        );
    let report = fx.audit();
    assert!(
        report
            .with_code("A001")
            .any(|d| d.message.contains("mystery-span")),
        "expected A001 for the undocumented span, got: {}",
        report.summary()
    );
}

#[test]
fn stale_documented_span_fires_a002() {
    let fx = Fixture::new("a002");
    fx.file("crates/obs/src/lib.rs", &obs_doc(&["ghost-span"]));
    let report = fx.audit();
    assert_eq!(codes(&report), ["A002"], "report: {}", report.summary());
    assert!(report
        .with_code("A002")
        .any(|d| d.message.contains("ghost-span")));
}

#[test]
fn required_gate_naming_nothing_fires_a003() {
    let fx = Fixture::new("a003");
    fx.file(
        "crates/cli/src/commands.rs",
        "pub const REQUIRED_STAGES: &[&str] = &[\"no-such-stage\"];\n",
    );
    let report = fx.audit();
    assert_eq!(codes(&report), ["A003"], "report: {}", report.summary());
    assert!(report
        .with_code("A003")
        .any(|d| d.message.contains("no-such-stage")));
}

#[test]
fn failpoint_site_drift_fires_a004_in_both_directions() {
    let fx = Fixture::new("a004");
    fx.file(
        "crates/markov/src/solver.rs",
        "pub fn f() {\n    wfms_fault::point!(\"linalg.rogue-site\");\n}\n",
    )
    .file(
        "DESIGN.md",
        "# Design\n\n| site | stage |\n|---|---|\n| `linalg.orphan-site` | solve |\n",
    );
    let report = fx.audit();
    assert_eq!(codes(&report), ["A004"], "report: {}", report.summary());
    // Planted-but-undocumented and documented-but-unplanted both drift.
    assert!(report
        .with_code("A004")
        .any(|d| d.message.contains("linalg.rogue-site")));
    assert!(report
        .with_code("A004")
        .any(|d| d.message.contains("linalg.orphan-site")));
}

#[test]
fn unregistered_diag_code_fires_a005() {
    let fx = Fixture::new("a005");
    fx.file(
        "crates/diag/src/codes.rs",
        "/// Orphan.\npub const W_ORPHAN: &str = \"W099\";\n",
    );
    let report = fx.audit();
    assert_eq!(codes(&report), ["A005"], "report: {}", report.summary());
    assert!(report.with_code("A005").any(|d| d.message.contains("W099")));
}

#[test]
fn hash_map_in_solver_crate_fires_a006() {
    let fx = Fixture::new("a006");
    fx.file(
        "crates/markov/src/lib.rs",
        "use std::collections::HashMap;\n\npub fn f() -> HashMap<u32, f64> {\n    HashMap::new()\n}\n",
    );
    let report = fx.audit();
    assert_eq!(codes(&report), ["A006"], "report: {}", report.summary());
}

#[test]
fn unordered_parallel_reduction_fires_a007() {
    let fx = Fixture::new("a007");
    fx.file(
        "crates/performability/src/lib.rs",
        "pub fn f(v: &[f64]) -> f64 {\n    v.par_iter().sum()\n}\n",
    );
    let report = fx.audit();
    assert_eq!(codes(&report), ["A007"], "report: {}", report.summary());
}

#[test]
fn unwrap_in_hot_path_fires_a008() {
    let fx = Fixture::new("a008");
    // `.unwrap_or_default()` must NOT fire — only the bare `.unwrap()`.
    fx.file(
        "crates/perf/src/lib.rs",
        "pub fn f(v: Option<f64>) -> f64 {\n    v.unwrap() + v.unwrap_or_default()\n}\n",
    );
    let report = fx.audit();
    assert_eq!(codes(&report), ["A008"], "report: {}", report.summary());
    assert_eq!(
        report.len(),
        1,
        "unwrap_or_default must not fire: {}",
        report.summary()
    );
}

#[test]
fn panic_in_hot_path_fires_a009() {
    let fx = Fixture::new("a009");
    fx.file(
        "crates/queueing/src/lib.rs",
        "pub fn f(x: f64) -> f64 {\n    if x < 0.0 {\n        panic!(\"negative load\");\n    }\n    x\n}\n",
    );
    let report = fx.audit();
    assert_eq!(codes(&report), ["A009"], "report: {}", report.summary());
}

#[test]
fn direct_index_in_cli_fires_a010_warning() {
    let fx = Fixture::new("a010");
    fx.file(
        "crates/cli/src/commands.rs",
        "pub fn f(v: &[f64], i: usize) -> f64 {\n    v[i]\n}\n",
    );
    let report = fx.audit();
    assert_eq!(codes(&report), ["A010"], "report: {}", report.summary());
    assert_eq!(report.error_count(), 0, "A010 is a warning, not an error");
    assert_eq!(report.warning_count(), 1);
}

#[test]
fn deprecated_search_call_fires_a011() {
    let fx = Fixture::new("a011");
    fx.file(
        "crates/core/src/tool.rs",
        "pub fn f() {\n    let _ = wfms_config::greedy_search(&registry, &load, &goals, &opts);\n}\n",
    );
    let report = fx.audit();
    assert_eq!(codes(&report), ["A011"], "report: {}", report.summary());
    assert!(report
        .with_code("A011")
        .any(|d| d.message.contains("greedy_search")));
}

#[test]
fn malformed_pragma_fires_a012() {
    let fx = Fixture::new("a012");
    fx.file(
        "crates/perf/src/lib.rs",
        "// audit:allow(A008)\npub fn f() {}\n",
    );
    let report = fx.audit();
    assert_eq!(codes(&report), ["A012"], "report: {}", report.summary());
}

#[test]
fn unknown_code_in_pragma_fires_a012() {
    let fx = Fixture::new("a012b");
    fx.file(
        "crates/perf/src/lib.rs",
        "// audit:allow(A999, reason = \"no such code\")\npub fn f() {}\n",
    );
    let report = fx.audit();
    assert_eq!(codes(&report), ["A012"], "report: {}", report.summary());
    assert!(report.with_code("A012").any(|d| d.message.contains("A999")));
}

#[test]
fn unused_pragma_fires_a013_warning() {
    let fx = Fixture::new("a013");
    fx.file(
        "crates/perf/src/lib.rs",
        "// audit:allow(A008, reason = \"nothing here needs it\")\npub fn f() -> f64 {\n    1.0\n}\n",
    );
    let report = fx.audit();
    assert_eq!(codes(&report), ["A013"], "report: {}", report.summary());
    assert_eq!(report.error_count(), 0, "A013 is a warning, not an error");
}

#[test]
fn justified_pragma_suppresses_and_counts_as_used() {
    let fx = Fixture::new("allow");
    fx.file(
        "crates/perf/src/lib.rs",
        "pub fn f(v: Option<f64>) -> f64 {\n    // audit:allow(A008, reason = \"fixture invariant: the caller always passes Some\")\n    v.unwrap()\n}\n",
    );
    let report = fx.audit();
    assert!(
        report.is_empty(),
        "a justified allow must suppress the finding without tripping A013: {}",
        report.summary()
    );
}

#[test]
fn file_scope_pragma_covers_the_whole_file() {
    let fx = Fixture::new("allow-file");
    fx.file(
        "crates/perf/src/lib.rs",
        concat!(
            "// audit:allow-file(A008, reason = \"fixture: every expect in this file is proven\")\n",
            "pub fn f(v: Option<f64>) -> f64 {\n    v.unwrap()\n}\n",
            "pub fn g(v: Option<f64>) -> f64 {\n    v.unwrap()\n}\n",
        ),
    );
    let report = fx.audit();
    assert!(report.is_empty(), "report: {}", report.summary());
}

#[test]
fn test_code_is_exempt_from_panic_safety() {
    let fx = Fixture::new("test-exempt");
    fx.file(
        "crates/perf/src/lib.rs",
        concat!(
            "pub fn f() -> f64 {\n    1.0\n}\n\n",
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n",
            "        assert_eq!(Some(1.0).unwrap(), 1.0);\n    }\n}\n",
        ),
    );
    let report = fx.audit();
    assert!(report.is_empty(), "report: {}", report.summary());
}

#[test]
fn clean_fixture_workspace_is_clean() {
    let fx = Fixture::new("clean");
    fx.file("crates/obs/src/lib.rs", &obs_doc(&["well-known-span"]))
        .file(
            "crates/perf/src/lib.rs",
            "pub fn f() {\n    let _s = wfms_obs::span!(\"well-known-span\");\n}\n",
        );
    let report = fx.audit();
    assert!(report.is_empty(), "report: {}", report.summary());
}

/// A minimal DESIGN.md whose decision-vocabulary table lists exactly
/// the given names.
fn decision_doc(names: &[&str]) -> String {
    let mut doc = String::from("### The decision vocabulary\n\n| name | role |\n|---|---|\n");
    for name in names {
        doc.push_str(&format!("| `{name}` | fixture |\n"));
    }
    doc
}

/// A journal module declaring exactly the given vocabulary values.
fn journal_src(values: &[&str]) -> String {
    let mut src = String::new();
    for (idx, value) in values.iter().enumerate() {
        src.push_str(&format!(
            "pub const OUTCOME_FIXTURE{idx}: &str = \"{value}\";\n"
        ));
    }
    src
}

#[test]
fn undocumented_decision_vocab_fires_a014() {
    let fx = Fixture::new("a014-code");
    fx.file(
        "crates/config/src/journal.rs",
        &journal_src(&["documented-outcome", "mystery-outcome"]),
    )
    .file("DESIGN.md", &decision_doc(&["documented-outcome"]));
    let report = fx.audit();
    assert!(
        report
            .with_code("A014")
            .any(|d| d.message.contains("mystery-outcome")),
        "expected A014 for the undocumented vocabulary name, got: {}",
        report.summary()
    );
    assert_eq!(codes(&report), vec!["A014"]);
}

#[test]
fn stale_documented_decision_vocab_fires_a014() {
    let fx = Fixture::new("a014-doc");
    fx.file(
        "crates/config/src/journal.rs",
        &journal_src(&["documented-outcome"]),
    )
    .file(
        "DESIGN.md",
        &decision_doc(&["documented-outcome", "ghost-outcome"]),
    );
    let report = fx.audit();
    assert!(
        report
            .with_code("A014")
            .any(|d| d.message.contains("ghost-outcome")),
        "expected A014 for the stale documented name, got: {}",
        report.summary()
    );
    assert_eq!(codes(&report), vec!["A014"]);
}

#[test]
fn matching_decision_vocab_is_clean() {
    let fx = Fixture::new("a014-clean");
    fx.file(
        "crates/config/src/journal.rs",
        &journal_src(&["accept-fixture"]),
    )
    .file("DESIGN.md", &decision_doc(&["accept-fixture"]));
    let report = fx.audit();
    assert!(report.is_empty(), "report: {}", report.summary());
}

/// A minimal DESIGN.md whose serving-protocol method table lists
/// exactly the given method names.
fn serving_doc(names: &[&str]) -> String {
    let mut doc = String::from("### The serving protocol\n\n| method | role |\n|---|---|\n");
    for name in names {
        doc.push_str(&format!("| `{name}` | fixture |\n"));
    }
    doc
}

/// A proto module declaring exactly the given wire method names.
fn proto_src(values: &[&str]) -> String {
    let mut src = String::new();
    for (idx, value) in values.iter().enumerate() {
        src.push_str(&format!(
            "pub const METHOD_FIXTURE{idx}: &str = \"{value}\";\n"
        ));
    }
    src
}

#[test]
fn undocumented_wire_method_fires_a015() {
    let fx = Fixture::new("a015-code");
    fx.file(
        "crates/proto/src/lib.rs",
        &proto_src(&["documented-method", "mystery-method"]),
    )
    .file("DESIGN.md", &serving_doc(&["documented-method"]));
    let report = fx.audit();
    assert!(
        report
            .with_code("A015")
            .any(|d| d.message.contains("mystery-method")),
        "expected A015 for the undocumented wire method, got: {}",
        report.summary()
    );
    assert_eq!(codes(&report), vec!["A015"]);
}

#[test]
fn stale_documented_wire_method_fires_a015() {
    let fx = Fixture::new("a015-doc");
    fx.file(
        "crates/proto/src/lib.rs",
        &proto_src(&["documented-method"]),
    )
    .file(
        "DESIGN.md",
        &serving_doc(&["documented-method", "ghost-method"]),
    );
    let report = fx.audit();
    assert!(
        report
            .with_code("A015")
            .any(|d| d.message.contains("ghost-method")),
        "expected A015 for the stale documented method, got: {}",
        report.summary()
    );
    assert_eq!(codes(&report), vec!["A015"]);
}

#[test]
fn matching_wire_methods_are_clean() {
    let fx = Fixture::new("a015-clean");
    fx.file("crates/proto/src/lib.rs", &proto_src(&["fixture-method"]))
        .file("DESIGN.md", &serving_doc(&["fixture-method"]));
    let report = fx.audit();
    assert!(report.is_empty(), "report: {}", report.summary());
}

/// A minimal DESIGN.md whose error-vocabulary table lists exactly the
/// given error kinds.
fn error_doc(names: &[&str]) -> String {
    let mut doc = String::from("### Error vocabulary\n\n| kind | meaning |\n|---|---|\n");
    for name in names {
        doc.push_str(&format!("| `{name}` | fixture |\n"));
    }
    doc
}

/// A proto module declaring exactly the given wire error kinds.
fn proto_err_src(values: &[&str]) -> String {
    let mut src = String::new();
    for (idx, value) in values.iter().enumerate() {
        src.push_str(&format!(
            "pub const ERR_FIXTURE{idx}: &str = \"{value}\";\n"
        ));
    }
    src
}

#[test]
fn undocumented_wire_error_fires_a016() {
    let fx = Fixture::new("a016-code");
    fx.file(
        "crates/proto/src/lib.rs",
        &proto_err_src(&["documented-error", "mystery-error"]),
    )
    .file("DESIGN.md", &error_doc(&["documented-error"]));
    let report = fx.audit();
    assert!(
        report
            .with_code("A016")
            .any(|d| d.message.contains("mystery-error")),
        "expected A016 for the undocumented wire error kind, got: {}",
        report.summary()
    );
    assert_eq!(codes(&report), vec!["A016"]);
}

#[test]
fn stale_documented_wire_error_fires_a016() {
    let fx = Fixture::new("a016-doc");
    fx.file(
        "crates/proto/src/lib.rs",
        &proto_err_src(&["documented-error"]),
    )
    .file(
        "DESIGN.md",
        &error_doc(&["documented-error", "ghost-error"]),
    );
    let report = fx.audit();
    assert!(
        report
            .with_code("A016")
            .any(|d| d.message.contains("ghost-error")),
        "expected A016 for the stale documented error kind, got: {}",
        report.summary()
    );
    assert_eq!(codes(&report), vec!["A016"]);
}

#[test]
fn matching_wire_errors_are_clean() {
    let fx = Fixture::new("a016-clean");
    fx.file(
        "crates/proto/src/lib.rs",
        &proto_err_src(&["fixture-error"]),
    )
    .file("DESIGN.md", &error_doc(&["fixture-error"]));
    let report = fx.audit();
    assert!(report.is_empty(), "report: {}", report.summary());
}
