//! The self-hosting golden test: the audited tree is this repository,
//! and HEAD must be clean. Every invariant the auditor enforces is a
//! contract earlier PRs established; a red run here means either a real
//! regression or a new contract that needs a justified allow.

use std::path::Path;

#[test]
fn workspace_head_is_audit_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = wfms_audit::run_audit(&root).expect("workspace sources readable");
    let rendered: Vec<String> = report.iter().map(ToString::to_string).collect();
    assert!(
        !report.has_errors(),
        "wfms audit found {} error(s) on HEAD:\n{}",
        report.error_count(),
        rendered.join("\n")
    );
    assert_eq!(
        report.warning_count(),
        0,
        "wfms audit found warning(s) on HEAD:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn audit_report_round_trips_through_json() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = wfms_audit::run_audit(&root).expect("workspace sources readable");
    let json = serde_json::to_string(&report).expect("serializable");
    let back: wfms_diag::Diagnostics = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(report.len(), back.len());
    for (a, b) in report.iter().zip(back.iter()) {
        assert_eq!(a.code, b.code);
        assert_eq!(a.severity, b.severity);
        assert_eq!(a.message, b.message);
        assert_eq!(a.location.to_string(), b.location.to_string());
    }
}
