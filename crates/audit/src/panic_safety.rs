//! Pass 3 — panic safety (`A008`–`A010`).
//!
//! The robustness contract (DESIGN.md §10) says hot-path library code
//! degrades gracefully instead of aborting: solver and orchestration
//! crates return typed errors, and panics are reserved for provable
//! programming errors — each of which must carry an
//! `audit:allow(A008/A009, reason = …)` stating the proof. The
//! experiment binaries under `src/bin/` are exempt by design: they are
//! terminal fail-fast programs whose only caller is a human.
//!
//! `A010` additionally warns on direct slice indexing, but only in the
//! CLI crate — the user-input boundary, where an out-of-range index is
//! reachable from a command line rather than from a proven invariant.

use wfms_diag::Diagnostics;

use crate::codes;
use crate::emit;
use crate::scan::Workspace;

/// Library code bound by the graceful-degradation contract.
const HOT_SCOPES: &[&str] = &[
    "crates/markov/src/",
    "crates/avail/src/",
    "crates/performability/src/",
    "crates/config/src/",
    "crates/perf/src/",
    "crates/queueing/src/",
    "crates/sim/src/",
    "crates/cli/src/",
    "crates/bench/src/",
];

/// Macros that abort the process.
const PANIC_MACROS: &[&str] = &["panic!(", "unreachable!(", "todo!(", "unimplemented!("];

pub fn run(ws: &Workspace, diags: &mut Diagnostics) {
    for file in ws.sources_under(HOT_SCOPES) {
        if file.is_bin() {
            continue;
        }
        let cli_boundary = file.rel.starts_with("crates/cli/src/");
        for (idx, code) in file.code.iter().enumerate() {
            let line = idx + 1;
            let unwraps = code.contains(".unwrap()");
            let expects = code.contains(".expect(") && !code.contains(".expect_err(");
            if (unwraps || expects) && !file.allowed(codes::A_UNWRAP, line) {
                let which = if unwraps { ".unwrap()" } else { ".expect(…)" };
                emit(
                    diags,
                    codes::A_UNWRAP,
                    format!(
                        "{which} in hot-path library code: return a typed error, or prove \
                         the invariant and add `audit:allow(A008, reason = …)`"
                    ),
                    &file.rel,
                    line,
                );
            }
            if let Some(mac) = PANIC_MACROS.iter().find(|m| code.contains(*m)) {
                if !file.allowed(codes::A_PANIC, line) {
                    let name = mac.trim_end_matches('(');
                    emit(
                        diags,
                        codes::A_PANIC,
                        format!(
                            "`{name}` in hot-path library code: degrade gracefully, or prove \
                             unreachability and add `audit:allow(A009, reason = …)`"
                        ),
                        &file.rel,
                        line,
                    );
                }
            }
            if cli_boundary && has_direct_index(code) && !file.allowed(codes::A_DIRECT_INDEX, line)
            {
                emit(
                    diags,
                    codes::A_DIRECT_INDEX,
                    "direct slice indexing at the CLI input boundary: prefer `.get(…)` \
                     with a real error"
                        .to_string(),
                    &file.rel,
                    line,
                );
            }
        }
    }
}

/// `ident[`, `)[` or `][` — an index expression, as opposed to slice
/// types (`&[T]`), attributes (`#[…]`), or array literals (`= […]`).
fn has_direct_index(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    chars.windows(2).any(|w| {
        w[1] == '[' && (w[0].is_ascii_alphanumeric() || w[0] == '_' || w[0] == ')' || w[0] == ']')
    })
}
