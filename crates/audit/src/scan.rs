//! Workspace loading and the per-file source model.
//!
//! The auditor works on a deliberately simple, line-oriented view of
//! each Rust source file — no full parse, no type resolution. Per file
//! it keeps four aligned layers:
//!
//! * `raw` — the file exactly as read (doc parsing and pragma reasons
//!   need the original text);
//! * `code` — comments removed, string/char-literal *contents* blanked,
//!   and every line inside a `#[cfg(test)]` item blanked entirely, so
//!   pattern checks (`.unwrap()`, `HashMap`, …) never fire on comments,
//!   string payloads, or test code;
//! * `literals` — the string literals of each non-test line, in order,
//!   for extracting stable names out of `span!("…")` / `point!("…")` /
//!   `wfms_obs::counter("…")` sites and `REQUIRED_*` tables;
//! * `allows` — the parsed `audit:allow` pragmas.
//!
//! # Allow pragmas
//!
//! ```text
//! // audit:allow(A008, reason = "why this site is sound")
//! // audit:allow-file(A006, reason = "why the whole file is exempt")
//! ```
//!
//! A line pragma applies to the code on its own line, or — when the
//! line holds nothing but the comment — to the next line that does.
//! A file pragma applies to every line of the file. Pragmas are part of
//! the audited surface themselves: a malformed one (unknown code,
//! missing reason) is an `A012` error, and one that suppresses nothing
//! is an `A013` warning, so the allowlist can only shrink back to what
//! is actually justified.

use std::cell::Cell;
use std::io;
use std::path::{Path, PathBuf};

use crate::codes;

/// One parsed, well-formed `audit:allow` pragma.
#[derive(Debug)]
pub struct Allow {
    /// The audit code it suppresses.
    pub code: String,
    /// The mandatory justification.
    pub reason: String,
    /// One-based line of the pragma comment itself.
    pub line: usize,
    /// One-based line the pragma applies to (for line pragmas).
    pub target_line: usize,
    /// True for `audit:allow-file` (whole-file scope).
    pub file_scope: bool,
    /// Set once the pragma suppresses at least one finding.
    pub used: Cell<bool>,
}

/// A syntactically present but invalid pragma.
#[derive(Debug)]
pub struct MalformedAllow {
    /// One-based line of the pragma comment.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

/// One source file, parsed into the layers described in the module docs.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// The file exactly as read, split into lines.
    pub raw: Vec<String>,
    /// Comment-free, string-blanked, test-blanked view (see module docs).
    pub code: Vec<String>,
    /// String literals per non-test line, in source order.
    pub literals: Vec<Vec<String>>,
    /// Well-formed allow pragmas.
    pub allows: Vec<Allow>,
    /// Malformed pragmas (reported as `A012`).
    pub malformed: Vec<MalformedAllow>,
}

impl SourceFile {
    /// Parses `text` into the layered model.
    pub fn parse(rel: String, text: &str) -> SourceFile {
        let raw: Vec<String> = text.lines().map(str::to_string).collect();
        let mut code = Vec::with_capacity(raw.len());
        let mut literals = Vec::with_capacity(raw.len());
        let mut comments: Vec<Option<(usize, String)>> = Vec::with_capacity(raw.len());
        let mut state = LexState::Normal;
        for line in &raw {
            let (code_line, lits, comment) = strip_line(line, &mut state);
            code.push(code_line);
            literals.push(lits);
            comments.push(comment.map(|c| (0, c)));
        }
        mask_test_items(&mut code, &mut literals);
        let mut file = SourceFile {
            rel,
            raw,
            code,
            literals,
            allows: Vec::new(),
            malformed: Vec::new(),
        };
        for (idx, comment) in comments.iter().enumerate() {
            if let Some((_, text)) = comment {
                file.parse_pragma(idx, text);
            }
        }
        file
    }

    /// True when the file lives under a `src/bin/` directory (terminal
    /// experiment / entry-point binaries).
    pub fn is_bin(&self) -> bool {
        self.rel.contains("/src/bin/")
    }

    /// True when an allow pragma covers `code` at one-based `line`;
    /// marks the pragma used.
    pub fn allowed(&self, code: &str, line: usize) -> bool {
        for allow in &self.allows {
            if allow.code == code && (allow.file_scope || allow.target_line == line) {
                allow.used.set(true);
                return true;
            }
        }
        false
    }

    /// The first string literal at or shortly after one-based `line`
    /// (macro arguments may sit on the following line).
    pub fn literal_near(&self, line: usize, lookahead: usize) -> Option<&str> {
        let start = line - 1;
        for idx in start..(start + 1 + lookahead).min(self.literals.len()) {
            if let Some(first) = self.literals[idx].first() {
                return Some(first);
            }
        }
        None
    }

    fn parse_pragma(&mut self, idx: usize, comment: &str) {
        let Some(pos) = comment.find("audit:allow") else {
            return;
        };
        let line = idx + 1;
        let rest = &comment[pos + "audit:allow".len()..];
        let (file_scope, rest) = match rest.strip_prefix("-file") {
            Some(r) => (true, r),
            None => (false, rest),
        };
        let Some(body) = rest
            .trim_start()
            .strip_prefix('(')
            .and_then(|r| r.rsplit_once(')'))
            .map(|(body, _)| body)
        else {
            self.malformed.push(MalformedAllow {
                line,
                message: "expected `audit:allow(<code>, reason = \"…\")`".to_string(),
            });
            return;
        };
        let (code_part, reason_part) = match body.split_once(',') {
            Some(parts) => parts,
            None => {
                self.malformed.push(MalformedAllow {
                    line,
                    message: "missing `, reason = \"…\"` clause".to_string(),
                });
                return;
            }
        };
        let code = code_part.trim();
        if !codes::is_known(code) {
            self.malformed.push(MalformedAllow {
                line,
                message: format!("unknown audit code {code:?}"),
            });
            return;
        }
        let reason = reason_part
            .trim()
            .strip_prefix("reason")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('='))
            .map(str::trim)
            .and_then(|r| r.strip_prefix('"'))
            .and_then(|r| r.rfind('"').map(|end| &r[..end]))
            .unwrap_or("");
        if reason.trim().is_empty() {
            self.malformed.push(MalformedAllow {
                line,
                message: "empty or missing reason".to_string(),
            });
            return;
        }
        // A pragma on a line of its own covers the next code line.
        let target_line = if self.code[idx].trim().is_empty() {
            ((idx + 1)..self.code.len())
                .find(|&j| !self.code[j].trim().is_empty())
                .map(|j| j + 1)
                .unwrap_or(line)
        } else {
            line
        };
        self.allows.push(Allow {
            code: code.to_string(),
            reason: reason.to_string(),
            line,
            target_line,
            file_scope,
            used: Cell::new(false),
        });
    }
}

/// Lexer state carried across lines: inside a block comment or inside
/// a (possibly multi-line) string literal.
enum LexState {
    Normal,
    Block,
    Str {
        raw: bool,
        hashes: usize,
        buf: String,
    },
}

/// Strips one line: returns `(code, literals, comment_text)`.
///
/// `comment_text` is only returned for plain `//` comments — doc
/// comments (`///`, `//!`) are documentation, not pragma carriers.
fn strip_line(line: &str, state: &mut LexState) -> (String, Vec<String>, Option<String>) {
    let bytes: Vec<char> = line.chars().collect();
    let n = bytes.len();
    let mut code = String::with_capacity(n);
    let mut lits = Vec::new();
    let mut comment = None;
    let mut i = 0;
    while i < n {
        match state {
            LexState::Block => {
                if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                    *state = LexState::Normal;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            LexState::Str { raw, hashes, buf } => {
                if !*raw && bytes[i] == '\\' && i + 1 < n {
                    buf.push(bytes[i]);
                    buf.push(bytes[i + 1]);
                    i += 2;
                    continue;
                }
                if bytes[i] == '"' {
                    if *raw && *hashes > 0 {
                        let following = bytes[i + 1..].iter().take_while(|&&h| h == '#').count();
                        if following < *hashes {
                            buf.push('"');
                            i += 1;
                            continue;
                        }
                        i += *hashes;
                    }
                    i += 1; // closing quote
                    code.push_str("\"\"");
                    lits.push(std::mem::take(buf));
                    *state = LexState::Normal;
                } else {
                    buf.push(bytes[i]);
                    i += 1;
                }
                continue;
            }
            LexState::Normal => {}
        }
        let c = bytes[i];
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            let is_doc = i + 2 < n && (bytes[i + 2] == '/' || bytes[i + 2] == '!');
            if !is_doc {
                comment = Some(bytes[i + 2..].iter().collect::<String>());
            }
            break;
        }
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            *state = LexState::Block;
            i += 2;
            continue;
        }
        if c == '"' {
            // Possibly a raw string: count the `r#…#` prefix already
            // emitted to `code` and strip it back out.
            let mut hashes = 0;
            let mut raw = false;
            {
                let emitted: Vec<char> = code.chars().collect();
                let mut j = emitted.len();
                while j > 0 && emitted[j - 1] == '#' {
                    hashes += 1;
                    j -= 1;
                }
                if j > 0 && emitted[j - 1] == 'r' {
                    raw = true;
                    code.truncate(code.len() - hashes - 1);
                } else {
                    hashes = 0;
                }
            }
            *state = LexState::Str {
                raw,
                hashes,
                buf: String::new(),
            };
            i += 1;
            continue;
        }
        if c == '\'' {
            // Char literal vs lifetime: a literal closes within a few
            // chars (`'x'`, `'\n'`, `'\''`); a lifetime never closes.
            if i + 2 < n && bytes[i + 1] == '\\' {
                let close = (i + 2..n.min(i + 8)).find(|&j| bytes[j] == '\'');
                if let Some(j) = close {
                    code.push_str("' '");
                    i = j + 1;
                    continue;
                }
            } else if i + 2 < n && bytes[i + 2] == '\'' {
                code.push_str("' '");
                i += 3;
                continue;
            }
            code.push(c);
            i += 1;
            continue;
        }
        code.push(c);
        i += 1;
    }
    (code, lits, comment)
}

/// Blanks every line belonging to a `#[cfg(test)]` item (module or
/// single item) in `code` and `literals`.
fn mask_test_items(code: &mut [String], literals: &mut [Vec<String>]) {
    let n = code.len();
    let mut i = 0;
    while i < n {
        if !code[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Find where the annotated item's body opens (or where a
        // braceless item ends).
        let mut open = None;
        for j in i..n {
            if let Some(col) = code[j].find('{') {
                open = Some((j, col));
                break;
            }
            if code[j].contains(';') {
                open = None;
                for k in i..=j {
                    code[k].clear();
                    literals[k].clear();
                }
                i = j + 1;
                break;
            }
        }
        let Some((start, col)) = open else {
            if code[i].contains("#[cfg(test)]") {
                // braceless item handled above, or nothing found: stop.
                i += 1;
            }
            continue;
        };
        let mut depth = 0i64;
        let mut end = n - 1;
        'outer: for (j, line) in code.iter().enumerate().take(n).skip(start) {
            let from = if j == start { col } else { 0 };
            for ch in line[from..].chars() {
                match ch {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            end = j;
                            break 'outer;
                        }
                    }
                    _ => {}
                }
            }
        }
        for k in i..=end {
            code[k].clear();
            literals[k].clear();
        }
        i = end + 1;
    }
}

/// The loaded workspace: every Rust source under `crates/*/src` and the
/// root `src/`, in sorted path order, plus the root path for doc reads.
#[derive(Debug)]
pub struct Workspace {
    /// The workspace root.
    pub root: PathBuf,
    /// Parsed sources, sorted by relative path.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads and parses the workspace under `root`.
    ///
    /// # Errors
    /// Propagates filesystem errors other than missing optional
    /// directories.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut rels = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            for entry in std::fs::read_dir(&crates_dir)? {
                let entry = entry?;
                let src = entry.path().join("src");
                if src.is_dir() {
                    collect_rs(&src, root, &mut rels)?;
                }
            }
        }
        let root_src = root.join("src");
        if root_src.is_dir() {
            collect_rs(&root_src, root, &mut rels)?;
        }
        rels.sort();
        let mut files = Vec::with_capacity(rels.len());
        for rel in rels {
            let text = std::fs::read_to_string(root.join(&rel))?;
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            files.push(SourceFile::parse(rel_str, &text));
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// The parsed source at `rel`, if present.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// All sources whose relative path starts with one of `prefixes`.
    pub fn sources_under<'a>(
        &'a self,
        prefixes: &'a [&'a str],
    ) -> impl Iterator<Item = &'a SourceFile> {
        self.files
            .iter()
            .filter(move |f| prefixes.iter().any(|p| f.rel.starts_with(p)))
    }

    /// Raw lines of a documentation file under the root (`README.md`,
    /// `DESIGN.md`), or `None` when absent.
    pub fn doc_lines(&self, rel: &str) -> Option<Vec<String>> {
        std::fs::read_to_string(self.root.join(rel))
            .ok()
            .map(|t| t.lines().map(str::to_string).collect())
    }
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Extracts the backticked tokens of the first cell of a markdown table
/// row (`| `a`, `b` | … |` → `["a", "b"]`); empty for non-row lines.
pub fn first_cell_names(line: &str) -> Vec<String> {
    let trimmed = line.trim_start().trim_start_matches("//!").trim_start();
    if !trimmed.starts_with('|') {
        return Vec::new();
    }
    let Some(cell) = trimmed.trim_start_matches('|').split('|').next() else {
        return Vec::new();
    };
    backticked(cell)
}

/// The plain (non-backticked) first cell of a markdown table row.
pub fn first_cell_plain(line: &str) -> Option<String> {
    let trimmed = line.trim_start();
    if !trimmed.starts_with('|') {
        return None;
    }
    trimmed
        .trim_start_matches('|')
        .split('|')
        .next()
        .map(|c| c.trim().to_string())
        .filter(|c| !c.is_empty() && !c.starts_with('-'))
}

/// All `` `token` `` spans in `text`.
pub fn backticked(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find('`') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('`') else { break };
        let token = &after[..end];
        if !token.is_empty() {
            out.push(token.to_string());
        }
        rest = &after[end + 1..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        let f = SourceFile::parse(
            "x.rs".into(),
            "let a = \"has .unwrap() inside\"; // comment .expect(\nlet b = x.unwrap();",
        );
        assert!(!f.code[0].contains(".unwrap()"));
        assert!(!f.code[0].contains(".expect("));
        assert!(f.code[1].contains(".unwrap()"));
        assert_eq!(f.literals[0], vec!["has .unwrap() inside"]);
    }

    #[test]
    fn char_literals_and_lifetimes_survive() {
        let f = SourceFile::parse(
            "x.rs".into(),
            "fn f<'a>(x: &'a str) -> char { let q = '\"'; x.chars().next().unwrap() }",
        );
        assert!(f.code[0].contains(".unwrap()"));
        assert!(f.code[0].contains("<'a>"));
    }

    #[test]
    fn cfg_test_blocks_are_masked() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n    fn t() { y.unwrap(); }\n}\n\
                   fn live2() { z.unwrap(); }";
        let f = SourceFile::parse("x.rs".into(), src);
        assert!(f.code[0].contains(".unwrap()"));
        assert!(f.code[3].is_empty());
        assert!(f.code[5].contains(".unwrap()"));
    }

    #[test]
    fn pragmas_parse_line_and_file_scope() {
        let src = "// audit:allow(A008, reason = \"checked above\")\n\
                   let x = y.unwrap();\n\
                   let z = w.unwrap(); // audit:allow-file(A006, reason = \"lookup only\")\n";
        let f = SourceFile::parse("x.rs".into(), src);
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].code, "A008");
        assert_eq!(f.allows[0].target_line, 2);
        assert!(!f.allows[0].file_scope);
        assert!(f.allows[1].file_scope);
        assert!(f.allowed("A008", 2));
        assert!(!f.allowed("A008", 3));
        assert!(f.allowed("A006", 999));
        assert!(f.allows.iter().all(|a| a.used.get()));
    }

    #[test]
    fn malformed_pragmas_are_collected() {
        let src = "// audit:allow(A008)\n// audit:allow(Z999, reason = \"x\")\n\
                   // audit:allow(A008, reason = \"\")\n";
        let f = SourceFile::parse("x.rs".into(), src);
        assert_eq!(f.malformed.len(), 3);
        assert!(f.allows.is_empty());
    }

    #[test]
    fn markdown_helpers_extract_cells() {
        assert_eq!(
            first_cell_names("//! | `uniformize` / `assess` | `wfms-markov` |"),
            vec!["uniformize", "assess"]
        );
        assert_eq!(
            first_cell_names("| span | emitted by |"),
            Vec::<String>::new()
        );
        assert_eq!(first_cell_plain("| W007 | E | rule |"), Some("W007".into()));
        assert_eq!(first_cell_plain("|---|---|"), None);
    }
}
