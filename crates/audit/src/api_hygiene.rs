//! Pass 4 — API hygiene (`A011`).
//!
//! PR 3 replaced the free-function search API of `wfms-config`
//! (`assess`, `greedy_search`, `exhaustive_search`,
//! `branch_and_bound_search`, `annealing_search`) with the memoizing
//! [`AssessmentEngine`]. The free functions remain as thin
//! compatibility wrappers for external callers, but *internal* code —
//! including the experiment binaries — must construct an engine, so the
//! wrappers can eventually be retired and so every internal call site
//! benefits from the engine's caches and preflight checks.
//!
//! The check is textual: a call `needle(` whose preceding character is
//! neither an identifier character (`cmd_assess(`), a `.` (method
//! calls like `engine.assess(`), nor part of an `fn` definition. The
//! defining crate (`wfms-config`) and test code are exempt.
//!
//! [`AssessmentEngine`]: https://docs.rs/wfms-config

use wfms_diag::Diagnostics;

use crate::codes;
use crate::emit;
use crate::scan::Workspace;

/// The deprecated free functions.
const DEPRECATED: &[&str] = &[
    "assess",
    "greedy_search",
    "exhaustive_search",
    "branch_and_bound_search",
    "annealing_search",
];

pub fn run(ws: &Workspace, diags: &mut Diagnostics) {
    for file in &ws.files {
        if file.rel.starts_with("crates/config/src/") || file.rel.starts_with("crates/audit/") {
            continue;
        }
        for (idx, code) in file.code.iter().enumerate() {
            let line = idx + 1;
            for needle in DEPRECATED {
                if !is_call_site(code, needle) {
                    continue;
                }
                if file.allowed(codes::A_DEPRECATED_SEARCH_API, line) {
                    continue;
                }
                emit(
                    diags,
                    codes::A_DEPRECATED_SEARCH_API,
                    format!(
                        "call to deprecated free function `{needle}`: construct an \
                         AssessmentEngine (`ConfigurationTool::engine` or \
                         `AssessmentEngine::new`) instead"
                    ),
                    &file.rel,
                    line,
                );
                break;
            }
        }
    }
}

/// True when `code` calls free function `needle` (not a method, not an
/// identifier suffix, not a definition).
fn is_call_site(code: &str, needle: &str) -> bool {
    let mut search = 0;
    while let Some(pos) = code[search..].find(needle) {
        let idx = search + pos;
        search = idx + needle.len();
        let after = &code[idx + needle.len()..];
        if !after.starts_with('(') {
            continue;
        }
        let before = &code[..idx];
        if before
            .chars()
            .next_back()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        {
            continue;
        }
        if before.trim_end().ends_with("fn") {
            continue;
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::is_call_site;

    #[test]
    fn call_site_detection() {
        assert!(is_call_site(
            "let r = greedy_search(reg, load);",
            "greedy_search"
        ));
        assert!(is_call_site(
            "wfms_config::annealing_search(a, b)",
            "annealing_search"
        ));
        assert!(!is_call_site("let r = engine.assess(config);", "assess"));
        assert!(!is_call_site("fn assess(x: u32) {}", "assess"));
        assert!(!is_call_site(
            "pub fn greedy_search(a: A) {}",
            "greedy_search"
        ));
        assert!(!is_call_site("cmd_assess(args)", "assess"));
        assert!(!is_call_site("reassess(args)", "assess"));
    }
}
