//! The stable audit-code registry.
//!
//! `A0xx` codes are the implementation-side sibling of the `W/M/Q/C`
//! model diagnostics in `wfms-diag::codes`: each one names a repository
//! invariant that `wfms audit` enforces statically over the workspace
//! sources and documentation. The numbers are stable identifiers —
//! renaming or renumbering one is a breaking change to downstream
//! tooling, exactly like an obs span name or a failpoint site.
//!
//! Codes are grouped by pass:
//!
//! * `A001`–`A005` — **registry consistency**: the stable-name tables
//!   (obs spans/metrics, failpoint sites, diagnostic codes) must agree
//!   between code and docs in both directions;
//! * `A006`–`A007` — **determinism**: no hash-order-dependent data
//!   structures or unordered parallel reductions in the solver crates;
//! * `A008`–`A010` — **panic safety**: no `unwrap`/`expect`/`panic!`
//!   in hot-path library code without a justified allow;
//! * `A011` — **API hygiene**: no internal callers of the deprecated
//!   free-function search API;
//! * `A012`–`A013` — the allowlist itself is machine-checked: pragmas
//!   must be well-formed and must actually suppress something;
//! * `A014` — **registry consistency, continued**: the decision-journal
//!   vocabulary (`wfms-config::journal`) must agree with the DESIGN.md
//!   §7 decision-vocabulary table and the README Explainability table
//!   in both directions.
//! * `A015` — **registry consistency, continued**: the wire method
//!   names (`METHOD_*` constants in `wfms-proto`) must agree with the
//!   DESIGN.md §13 protocol method table and the README Serving table
//!   in both directions.
//! * `A016` — **registry consistency, continued**: the wire error
//!   vocabulary (`ERR_*` constants in `wfms-proto`) must agree with the
//!   DESIGN.md §13 error-vocabulary table and the README error
//!   vocabulary table in both directions.
//!
//! The [`all`] table carries the default severity, a one-line summary,
//! and the DESIGN.md section whose contract the check enforces;
//! `DESIGN.md` §11 documents the same table, and the registry pass of
//! the auditor would flag drift between the two if the analogous check
//! for its own table were ever added.

use wfms_diag::Severity;

// ------------------------------------------- registry consistency

/// An obs span or metric stable name is emitted in code but missing
/// from the documentation tables.
pub const A_OBS_NAME_UNDOCUMENTED: &str = "A001";
/// An obs stable name appears in a documentation table but is never
/// emitted by any instrumentation site.
pub const A_OBS_NAME_STALE: &str = "A002";
/// A CLI `REQUIRED_STAGES` / `REQUIRED_COUNTERS` /
/// `REQUIRED_ZERO_COUNTERS` entry names a stage or counter no code
/// emits.
pub const A_REQUIRED_NAME_UNEMITTED: &str = "A003";
/// A failpoint site drifted between the `point!` sites in code and the
/// DESIGN.md §10 site table (either direction).
pub const A_FAILPOINT_DRIFT: &str = "A004";
/// The `wfms-diag` code registry (`codes::all()`) drifted from the
/// README diagnostic tables (either direction).
pub const A_DIAG_TABLE_DRIFT: &str = "A005";

// ------------------------------------------------- determinism

/// A hash-order-dependent collection (`HashMap` / `HashSet`) in a
/// solver crate without an order-insensitivity allow.
pub const A_HASH_ORDER: &str = "A006";
/// An unordered parallel reduction (`par_iter` + `reduce`/`fold`/
/// `sum`/`product`) in a solver crate — float accumulation must go
/// through the blessed ordered kernels.
pub const A_UNORDERED_REDUCTION: &str = "A007";

// ------------------------------------------------ panic safety

/// `.unwrap()` / `.expect(...)` in hot-path library code.
pub const A_UNWRAP: &str = "A008";
/// `panic!` / `unreachable!` / `todo!` / `unimplemented!` in hot-path
/// library code.
pub const A_PANIC: &str = "A009";
/// Direct slice indexing in the CLI crate (user-input boundary).
pub const A_DIRECT_INDEX: &str = "A010";

// ------------------------------------------------- API hygiene

/// An internal (non-test) caller of the deprecated free-function
/// search API (`assess` / `greedy_search` / `exhaustive_search` /
/// `branch_and_bound_search` / `annealing_search`).
pub const A_DEPRECATED_SEARCH_API: &str = "A011";

// -------------------------------------------------- allowlist

/// A malformed `audit:allow` pragma (unparseable, unknown code, or
/// missing reason).
pub const A_MALFORMED_ALLOW: &str = "A012";
/// An `audit:allow` pragma that suppressed nothing — stale entries
/// must be removed so the allowlist stays minimal.
pub const A_UNUSED_ALLOW: &str = "A013";

// --------------------------------- registry consistency (continued)

/// The decision-journal vocabulary (`OUTCOME_*` / `REASON_*` /
/// `EVENT_*` constants in `wfms-config::journal`) drifted from the
/// DESIGN.md §7 decision-vocabulary table or the README Explainability
/// table (either direction).
pub const A_DECISION_VOCAB_DRIFT: &str = "A014";

/// The wire protocol's method names (`METHOD_*` constants in
/// `wfms-proto`) drifted from the DESIGN.md §13 protocol method table
/// or the README Serving table (either direction). Method names reach
/// clients over TCP, so they carry the same stability contract as the
/// journal vocabulary — and the same drift check.
pub const A_PROTO_METHOD_DRIFT: &str = "A015";

/// The wire protocol's error vocabulary (`ERR_*` constants in
/// `wfms-proto`) drifted from the DESIGN.md §13 error-vocabulary table
/// or the README error vocabulary table (either direction). Error kinds
/// drive client retry policy (`wfms call` retries `overloaded`,
/// `unavailable`, and `deadline-exceeded`), so they carry the same
/// stability contract as the method names — and the same drift check.
pub const A_PROTO_ERROR_DRIFT: &str = "A016";

/// One row of the audit-code registry.
#[derive(Debug, Clone)]
pub struct CodeInfo {
    /// The stable code, e.g. `"A006"`.
    pub code: String,
    /// Default severity of findings with this code.
    pub severity: Severity,
    /// One-line summary of the rule.
    pub summary: String,
    /// The DESIGN.md section whose contract the rule enforces.
    pub contract: String,
}

fn info(code: &str, severity: Severity, summary: &str, contract: &str) -> CodeInfo {
    CodeInfo {
        code: code.to_string(),
        severity,
        summary: summary.to_string(),
        contract: contract.to_string(),
    }
}

/// The full registry, in code order.
pub fn all() -> Vec<CodeInfo> {
    use Severity::{Error, Warning};
    vec![
        info(
            A_OBS_NAME_UNDOCUMENTED,
            Error,
            "every emitted obs span/metric stable name must appear in the doc tables",
            "DESIGN.md \u{a7}7",
        ),
        info(
            A_OBS_NAME_STALE,
            Error,
            "every documented obs stable name must be emitted by some instrumentation site",
            "DESIGN.md \u{a7}7",
        ),
        info(
            A_REQUIRED_NAME_UNEMITTED,
            Error,
            "CLI REQUIRED_* stage/counter gates must reference emitted names",
            "DESIGN.md \u{a7}7",
        ),
        info(
            A_FAILPOINT_DRIFT,
            Error,
            "point! sites and the DESIGN.md \u{a7}10 site table must match exactly",
            "DESIGN.md \u{a7}10",
        ),
        info(
            A_DIAG_TABLE_DRIFT,
            Error,
            "wfms-diag codes::all() and the README diagnostic tables must match exactly",
            "DESIGN.md \u{a7}6",
        ),
        info(
            A_HASH_ORDER,
            Error,
            "no HashMap/HashSet in solver crates unless proven order-insensitive",
            "DESIGN.md \u{a7}8",
        ),
        info(
            A_UNORDERED_REDUCTION,
            Error,
            "parallel reductions must use the ordered-fold kernels",
            "DESIGN.md \u{a7}8",
        ),
        info(
            A_UNWRAP,
            Error,
            "no unwrap/expect in hot-path library code without a justified allow",
            "DESIGN.md \u{a7}10",
        ),
        info(
            A_PANIC,
            Error,
            "no panic!/unreachable!/todo!/unimplemented! in hot-path library code",
            "DESIGN.md \u{a7}10",
        ),
        info(
            A_DIRECT_INDEX,
            Warning,
            "prefer checked access over direct indexing at the CLI input boundary",
            "DESIGN.md \u{a7}10",
        ),
        info(
            A_DEPRECATED_SEARCH_API,
            Error,
            "internal code must use AssessmentEngine, not the deprecated free functions",
            "DESIGN.md \u{a7}8",
        ),
        info(
            A_MALFORMED_ALLOW,
            Error,
            "audit:allow pragmas must name a known code and give a reason",
            "DESIGN.md \u{a7}11",
        ),
        info(
            A_UNUSED_ALLOW,
            Warning,
            "audit:allow pragmas that suppress nothing must be removed",
            "DESIGN.md \u{a7}11",
        ),
        info(
            A_DECISION_VOCAB_DRIFT,
            Error,
            "the decision-journal vocabulary and its doc tables must match exactly",
            "DESIGN.md \u{a7}7",
        ),
        info(
            A_PROTO_METHOD_DRIFT,
            Error,
            "the wire method names and their doc tables must match exactly",
            "DESIGN.md \u{a7}13",
        ),
        info(
            A_PROTO_ERROR_DRIFT,
            Error,
            "the wire error vocabulary and its doc tables must match exactly",
            "DESIGN.md \u{a7}13",
        ),
    ]
}

/// Looks one code up in the registry.
pub fn lookup(code: &str) -> Option<CodeInfo> {
    all().into_iter().find(|c| c.code == code)
}

/// True when `code` is a registered audit code.
pub fn is_known(code: &str) -> bool {
    lookup(code).is_some()
}
