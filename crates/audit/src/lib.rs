//! # wfms-audit
//!
//! A workspace invariant auditor: the implementation-side sibling of
//! the `wfms-diag` model lints. Where `wfms lint` asks "is this
//! *model* well-formed?", `wfms audit` asks "does this *repository*
//! still honour its own contracts?" — statically, over the sources and
//! the documentation, with no execution.
//!
//! Four passes, each owning a band of the stable `A0xx` registry
//! ([`codes`]):
//!
//! 1. **registry consistency** ([`registry`], `A001`–`A005`) — obs
//!    span/metric names, failpoint sites, and diagnostic codes must
//!    match their documentation tables in both directions;
//! 2. **determinism** ([`determinism`], `A006`–`A007`) — no
//!    hash-order-dependent collections or unordered parallel
//!    reductions in the solver crates;
//! 3. **panic safety** ([`panic_safety`], `A008`–`A010`) — no
//!    `unwrap`/`expect`/`panic!` in hot-path library code without a
//!    justified allow;
//! 4. **API hygiene** ([`api_hygiene`], `A011`) — no internal callers
//!    of the deprecated free-function search API.
//!
//! Findings reuse the `wfms-diag` vocabulary (`Severity`, `Location`,
//! `Diagnostic`, `Diagnostics`) so they serialize, render, and gate
//! exactly like model diagnostics. Suppressions are in-source pragmas
//! (`// audit:allow(A008, reason = "…")`, see [`scan`]) and are
//! themselves audited: malformed ones are `A012` errors, unused ones
//! `A013` warnings.
//!
//! The crate is dependency-free apart from `wfms-diag` — no parser
//! framework, no filesystem walker crate — so it can run first in CI
//! and under Miri.
//!
//! ```no_run
//! let report = wfms_audit::run_audit(std::path::Path::new(".")).unwrap();
//! if report.has_errors() {
//!     eprintln!("{}", report.summary());
//! }
//! ```

pub mod api_hygiene;
pub mod codes;
pub mod determinism;
pub mod panic_safety;
pub mod registry;
pub mod scan;

use std::io;
use std::path::Path;

use wfms_diag::{Diagnostic, Diagnostics, Location, Severity};

pub use scan::Workspace;

/// Loads the workspace under `root` and runs every audit pass.
///
/// # Errors
/// Propagates filesystem errors from loading the sources; audit
/// *findings* are never errors at this level — inspect the returned
/// [`Diagnostics`].
pub fn run_audit(root: &Path) -> io::Result<Diagnostics> {
    let workspace = Workspace::load(root)?;
    Ok(audit_workspace(&workspace))
}

/// Runs every audit pass over an already-loaded workspace.
pub fn audit_workspace(workspace: &Workspace) -> Diagnostics {
    let mut diags = Diagnostics::new();
    // Pragma syntax first: a malformed allow may be silently failing to
    // suppress findings reported below, and the fix starts with it.
    for file in &workspace.files {
        for malformed in &file.malformed {
            emit(
                &mut diags,
                codes::A_MALFORMED_ALLOW,
                format!("malformed audit pragma: {}", malformed.message),
                &file.rel,
                malformed.line,
            );
        }
    }
    registry::run(workspace, &mut diags);
    determinism::run(workspace, &mut diags);
    panic_safety::run(workspace, &mut diags);
    api_hygiene::run(workspace, &mut diags);
    // Allowlist hygiene last: only now is it known which pragmas fired.
    for file in &workspace.files {
        for allow in &file.allows {
            if !allow.used.get() {
                emit(
                    &mut diags,
                    codes::A_UNUSED_ALLOW,
                    format!(
                        "audit:allow({}) suppresses nothing — remove it so the allowlist \
                         stays minimal",
                        allow.code
                    ),
                    &file.rel,
                    allow.line,
                );
            }
        }
    }
    diags
}

/// Pushes one finding with the registry severity for `code`.
pub(crate) fn emit(diags: &mut Diagnostics, code: &str, message: String, path: &str, line: usize) {
    let severity = codes::lookup(code).map_or(Severity::Error, |info| info.severity);
    diags.push(Diagnostic::new(
        code,
        severity,
        Location::File {
            path: path.to_string(),
            line,
        },
        message,
    ));
}
