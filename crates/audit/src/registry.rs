//! Pass 1 — registry consistency (`A001`–`A005`, `A014`–`A016`).
//!
//! The repo's stable-name vocabularies each live in two places: the
//! emission sites in code and a documentation table. This pass parses
//! both sides and errors on any drift, in both directions:
//!
//! * obs **span** names — `span!("…")` sites vs the span table in
//!   `crates/obs/src/lib.rs` *and* the README Observability table;
//! * obs **metric** names — `wfms_obs::counter/gauge/histogram("…")`
//!   sites vs the metric tables in `crates/obs/src/lib.rs`;
//! * the CLI `REQUIRED_STAGES` / `REQUIRED_COUNTERS` /
//!   `REQUIRED_ZERO_COUNTERS` gates — every entry must name an emitted
//!   span or counter;
//! * **failpoint** sites — `point!("…")` sites vs the DESIGN.md §10
//!   site table;
//! * **diagnostic** codes — the `wfms-diag` `codes.rs` constants vs the
//!   README Diagnostics tables, and every constant must be registered
//!   in `codes::all()`;
//! * the **decision vocabulary** — the `OUTCOME_*`/`REASON_*`/`EVENT_*`
//!   constants of `wfms-config::journal` vs the DESIGN.md §7
//!   decision-vocabulary table and the README Explainability table;
//! * the **wire method names** — the `METHOD_*` constants of
//!   `wfms-proto` vs the DESIGN.md §13 protocol method table and the
//!   README Serving table;
//! * the **wire error vocabulary** — the `ERR_*` constants of
//!   `wfms-proto` vs the DESIGN.md §13 error-vocabulary table and the
//!   README error vocabulary table.
//!
//! Doc checks are skipped when the corresponding file is absent, so
//! fixture workspaces only need the files relevant to the invariant
//! under test.

use std::collections::BTreeMap;

use wfms_diag::Diagnostics;

use crate::codes;
use crate::emit;
use crate::scan::{backticked, first_cell_names, first_cell_plain, SourceFile, Workspace};

/// Crates whose sources define (rather than emit) the vocabularies, and
/// are therefore excluded from the emission scan.
const EMISSION_EXEMPT: &[&str] = &["crates/obs/", "crates/fault/", "crates/audit/"];

/// An emitted stable name and its first emission site.
type Sites = BTreeMap<String, (String, usize)>;

pub fn run(ws: &Workspace, diags: &mut Diagnostics) {
    let mut spans = Sites::new();
    let mut metrics = Sites::new();
    let mut failpoints = Sites::new();
    for file in &ws.files {
        if EMISSION_EXEMPT.iter().any(|p| file.rel.starts_with(p)) || file.is_bin() {
            continue;
        }
        collect_emissions(file, &mut spans, &mut metrics, &mut failpoints);
    }
    check_obs_names(ws, &spans, &metrics, diags);
    check_required_gates(ws, &spans, &metrics, diags);
    check_failpoints(ws, &failpoints, diags);
    check_diag_codes(ws, diags);
    check_decision_vocab(ws, diags);
    check_proto_methods(ws, diags);
    check_proto_errors(ws, diags);
}

fn collect_emissions(
    file: &SourceFile,
    spans: &mut Sites,
    metrics: &mut Sites,
    points: &mut Sites,
) {
    for (idx, code) in file.code.iter().enumerate() {
        let line = idx + 1;
        if code.contains("span!(") {
            if let Some(name) = file.literal_near(line, 2) {
                record(spans, name, file, line);
            }
        }
        for needle in [
            "wfms_obs::counter(",
            "wfms_obs::gauge(",
            "wfms_obs::histogram(",
        ] {
            if code.contains(needle) {
                if let Some(name) = file.literal_near(line, 2) {
                    record(metrics, name, file, line);
                }
            }
        }
        if code.contains("point!(") {
            match file.literal_near(line, 1).filter(|n| is_site_name(n)) {
                Some(name) => record(points, name, file, line),
                // Variable-site macros (`point!(fault_site)`): the
                // candidate site names are string literals defined a few
                // lines earlier — collect every site-shaped literal in
                // the surrounding window.
                None => {
                    let lo = idx.saturating_sub(10);
                    let hi = (idx + 3).min(file.literals.len());
                    for lits in &file.literals[lo..hi] {
                        for lit in lits {
                            if is_site_name(lit) {
                                record(points, lit, file, line);
                            }
                        }
                    }
                }
            }
        }
    }
}

fn record(sites: &mut Sites, name: &str, file: &SourceFile, line: usize) {
    sites
        .entry(name.to_string())
        .or_insert_with(|| (file.rel.clone(), line));
}

/// A failpoint site is dotted lowercase (`linalg.sor`,
/// `engine.state-cache-fill`).
fn is_site_name(name: &str) -> bool {
    name.contains('.')
        && !name.is_empty()
        && name.chars().all(|c| {
            c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '-' || c == '_'
        })
}

/// Doc table names with the line each first appeared on.
type DocNames = BTreeMap<String, usize>;

/// First-cell backticked names of every markdown table row in `lines`
/// (optionally restricted to one `## section`).
fn table_names(lines: &[String], section: Option<&str>) -> DocNames {
    let mut names = DocNames::new();
    let mut in_section = section.is_none();
    for (idx, line) in lines.iter().enumerate() {
        if let Some(heading) = section {
            let trimmed = line.trim_start().trim_start_matches("//!").trim_start();
            if let Some(title) = trimmed.strip_prefix("## ") {
                in_section = title.trim_start().starts_with(heading);
                continue;
            }
        }
        if !in_section {
            continue;
        }
        for name in first_cell_names(line) {
            names.entry(name).or_insert(idx + 1);
        }
    }
    names
}

fn check_obs_names(ws: &Workspace, spans: &Sites, metrics: &Sites, diags: &mut Diagnostics) {
    const OBS_DOC: &str = "crates/obs/src/lib.rs";
    let obs_table = ws
        .file(OBS_DOC)
        .map(|f| table_names(&f.raw, None))
        .unwrap_or_default();
    let readme = ws.doc_lines("README.md");
    let readme_spans = readme
        .as_deref()
        .map(|lines| table_names(lines, Some("Observability")))
        .unwrap_or_default();
    let have_obs_doc = ws.file(OBS_DOC).is_some();
    let have_readme = readme.is_some();

    for (name, (file, line)) in spans {
        if ws
            .file(file)
            .is_some_and(|f| f.allowed(codes::A_OBS_NAME_UNDOCUMENTED, *line))
        {
            continue;
        }
        if have_obs_doc && !obs_table.contains_key(name) {
            emit(
                diags,
                codes::A_OBS_NAME_UNDOCUMENTED,
                format!("span `{name}` is emitted here but missing from the {OBS_DOC} stable-name table"),
                file,
                *line,
            );
        }
        if have_readme && !readme_spans.contains_key(name) {
            emit(
                diags,
                codes::A_OBS_NAME_UNDOCUMENTED,
                format!("span `{name}` is emitted here but missing from the README.md Observability span table"),
                file,
                *line,
            );
        }
    }
    for (name, (file, line)) in metrics {
        if ws
            .file(file)
            .is_some_and(|f| f.allowed(codes::A_OBS_NAME_UNDOCUMENTED, *line))
        {
            continue;
        }
        if have_obs_doc && !obs_table.contains_key(name) {
            emit(
                diags,
                codes::A_OBS_NAME_UNDOCUMENTED,
                format!(
                    "metric `{name}` is emitted here but missing from the {OBS_DOC} metric tables"
                ),
                file,
                *line,
            );
        }
    }
    // Reverse direction: documented names must be emitted somewhere.
    for (name, line) in &obs_table {
        if !spans.contains_key(name) && !metrics.contains_key(name) {
            emit(
                diags,
                codes::A_OBS_NAME_STALE,
                format!("documented obs name `{name}` is not emitted by any instrumentation site"),
                OBS_DOC,
                *line,
            );
        }
    }
    for (name, line) in &readme_spans {
        if !spans.contains_key(name) {
            emit(
                diags,
                codes::A_OBS_NAME_STALE,
                format!("README.md Observability table lists span `{name}`, which no code emits"),
                "README.md",
                *line,
            );
        }
    }
}

fn check_required_gates(ws: &Workspace, spans: &Sites, metrics: &Sites, diags: &mut Diagnostics) {
    const CLI: &str = "crates/cli/src/commands.rs";
    let Some(file) = ws.file(CLI) else { return };
    for (table, emitted, kind) in [
        ("REQUIRED_STAGES", spans, "span"),
        ("REQUIRED_COUNTERS", metrics, "counter"),
        ("REQUIRED_ZERO_COUNTERS", metrics, "counter"),
    ] {
        for (name, line) in const_table_entries(file, table) {
            if !emitted.contains_key(&name) {
                emit(
                    diags,
                    codes::A_REQUIRED_NAME_UNEMITTED,
                    format!("{table} entry `{name}` names a {kind} no code emits"),
                    CLI,
                    line,
                );
            }
        }
    }
}

/// The string entries of `pub const NAME: &[&str] = …;` with their
/// one-based lines, spanning the declaration to its terminating `;`.
fn const_table_entries(file: &SourceFile, name: &str) -> Vec<(String, usize)> {
    let mut entries = Vec::new();
    let Some(start) = file
        .code
        .iter()
        .position(|l| l.contains(name) && l.contains("const"))
    else {
        return entries;
    };
    for idx in start..file.code.len() {
        for lit in &file.literals[idx] {
            entries.push((lit.clone(), idx + 1));
        }
        if file.code[idx].contains(';') {
            break;
        }
    }
    entries
}

fn check_failpoints(ws: &Workspace, failpoints: &Sites, diags: &mut Diagnostics) {
    let Some(design) = ws.doc_lines("DESIGN.md") else {
        return;
    };
    let documented = failpoint_table(&design);
    for (name, (file, line)) in failpoints {
        if ws
            .file(file)
            .is_some_and(|f| f.allowed(codes::A_FAILPOINT_DRIFT, *line))
        {
            continue;
        }
        if !documented.contains_key(name) {
            emit(
                diags,
                codes::A_FAILPOINT_DRIFT,
                format!("failpoint site `{name}` is planted here but missing from the DESIGN.md robustness-contract site table"),
                file,
                *line,
            );
        }
    }
    for (name, line) in &documented {
        if !failpoints.contains_key(name) {
            emit(
                diags,
                codes::A_FAILPOINT_DRIFT,
                format!(
                    "DESIGN.md documents failpoint site `{name}`, which no `point!` site plants"
                ),
                "DESIGN.md",
                *line,
            );
        }
    }
}

/// The site column of the DESIGN.md robustness-contract table: the
/// first table whose rows are dotted site names.
fn failpoint_table(lines: &[String]) -> DocNames {
    let mut names = DocNames::new();
    for (idx, line) in lines.iter().enumerate() {
        for name in first_cell_names(line) {
            if is_site_name(&name) {
                names.entry(name).or_insert(idx + 1);
            }
        }
    }
    names
}

fn check_diag_codes(ws: &Workspace, diags: &mut Diagnostics) {
    const DIAG: &str = "crates/diag/src/codes.rs";
    let Some(file) = ws.file(DIAG) else { return };
    let mut registered = DocNames::new();
    for (idx, code) in file.code.iter().enumerate() {
        if !(code.contains("pub const") && code.contains("&str")) {
            continue;
        }
        let Some(value) = file.literals[idx].first() else {
            continue;
        };
        registered.entry(value.clone()).or_insert(idx + 1);
        // Every registered constant must also be wired into the
        // `codes::all()` table — count its uses beyond the declaration.
        if let Some(const_name) = code
            .split_whitespace()
            .skip_while(|w| *w != "const")
            .nth(1)
            .map(|w| w.trim_end_matches(':'))
        {
            let uses: usize = file
                .code
                .iter()
                .map(|l| l.matches(const_name).count())
                .sum();
            if uses < 2 {
                emit(
                    diags,
                    codes::A_DIAG_TABLE_DRIFT,
                    format!("diagnostic code {value} ({const_name}) is declared but never registered in codes::all()"),
                    DIAG,
                    idx + 1,
                );
            }
        }
    }
    let Some(readme) = ws.doc_lines("README.md") else {
        return;
    };
    let mut documented = DocNames::new();
    let mut in_section = false;
    for (idx, line) in readme.iter().enumerate() {
        if let Some(title) = line.strip_prefix("## ") {
            in_section = title.trim_start().starts_with("Diagnostics");
            continue;
        }
        if !in_section {
            continue;
        }
        if let Some(cell) = first_cell_plain(line) {
            for code in std::iter::once(cell.clone()).chain(backticked(&cell)) {
                if is_diag_code(&code) {
                    documented.entry(code).or_insert(idx + 1);
                }
            }
        }
    }
    for (code, line) in &registered {
        if !documented.contains_key(code) {
            emit(
                diags,
                codes::A_DIAG_TABLE_DRIFT,
                format!("diagnostic code {code} is registered in wfms-diag but missing from the README.md Diagnostics tables"),
                DIAG,
                *line,
            );
        }
    }
    for (code, line) in &documented {
        if !registered.contains_key(code) {
            emit(
                diags,
                codes::A_DIAG_TABLE_DRIFT,
                format!(
                    "README.md documents diagnostic code {code}, which wfms-diag does not register"
                ),
                "README.md",
                *line,
            );
        }
    }
}

/// First-cell backticked names of every table row under headings whose
/// title contains `heading_needle` (case-insensitive). A heading that
/// does not match closes the section, so the scan never bleeds into
/// neighbouring tables.
fn heading_scoped_names(lines: &[String], heading_needle: &str) -> DocNames {
    let mut names = DocNames::new();
    let mut in_section = false;
    for (idx, line) in lines.iter().enumerate() {
        if line.trim_start().starts_with('#') {
            in_section = line.to_lowercase().contains(heading_needle);
            continue;
        }
        if !in_section {
            continue;
        }
        for name in first_cell_names(line) {
            names.entry(name).or_insert(idx + 1);
        }
    }
    names
}

/// The decision-journal vocabulary: `pub const OUTCOME_* / REASON_* /
/// EVENT_*: &str` declarations in `wfms-config::journal` vs the
/// DESIGN.md §7 decision-vocabulary table and the README Explainability
/// table, in both directions. These names reach disk (`--journal`
/// JSONL, timeline instants), so they carry the same stability contract
/// as obs span names — and the same drift check.
fn check_decision_vocab(ws: &Workspace, diags: &mut Diagnostics) {
    const JOURNAL: &str = "crates/config/src/journal.rs";
    let Some(file) = ws.file(JOURNAL) else { return };
    let mut vocab = DocNames::new();
    for (idx, code) in file.code.iter().enumerate() {
        if !(code.contains("pub const") && code.contains("&str")) {
            continue;
        }
        let is_vocab_const = code
            .split_whitespace()
            .skip_while(|w| *w != "const")
            .nth(1)
            .is_some_and(|w| {
                w.starts_with("OUTCOME_") || w.starts_with("REASON_") || w.starts_with("EVENT_")
            });
        if !is_vocab_const {
            continue;
        }
        if let Some(value) = file.literals[idx].first() {
            vocab.entry(value.clone()).or_insert(idx + 1);
        }
    }

    for (doc, needle, what) in [
        (
            "DESIGN.md",
            "decision vocabulary",
            "DESIGN.md \u{a7}7 decision-vocabulary table",
        ),
        (
            "README.md",
            "explainability",
            "README.md Explainability table",
        ),
    ] {
        let Some(lines) = ws.doc_lines(doc) else {
            continue;
        };
        let documented = heading_scoped_names(&lines, needle);
        for (name, line) in &vocab {
            if file.allowed(codes::A_DECISION_VOCAB_DRIFT, *line) {
                continue;
            }
            if !documented.contains_key(name) {
                emit(
                    diags,
                    codes::A_DECISION_VOCAB_DRIFT,
                    format!("decision-vocabulary name `{name}` is declared here but missing from the {what}"),
                    JOURNAL,
                    *line,
                );
            }
        }
        for (name, line) in &documented {
            if !vocab.contains_key(name) {
                emit(
                    diags,
                    codes::A_DECISION_VOCAB_DRIFT,
                    format!("{what} lists `{name}`, which wfms-config::journal does not declare"),
                    doc,
                    *line,
                );
            }
        }
    }
}

/// The wire protocol's method vocabulary: `pub const METHOD_*: &str`
/// declarations in `wfms-proto` vs the DESIGN.md §13 protocol method
/// table and the README Serving table, in both directions. Method
/// names reach clients over TCP (and are matched by the daemon's
/// dispatcher), so they carry the same stability contract as the
/// decision-journal vocabulary — and the same drift check.
fn check_proto_methods(ws: &Workspace, diags: &mut Diagnostics) {
    const PROTO: &str = "crates/proto/src/lib.rs";
    let Some(file) = ws.file(PROTO) else { return };
    let mut methods = DocNames::new();
    for (idx, code) in file.code.iter().enumerate() {
        if !(code.contains("pub const") && code.contains("&str")) {
            continue;
        }
        let is_method_const = code
            .split_whitespace()
            .skip_while(|w| *w != "const")
            .nth(1)
            .is_some_and(|w| w.starts_with("METHOD_"));
        if !is_method_const {
            continue;
        }
        if let Some(value) = file.literals[idx].first() {
            methods.entry(value.clone()).or_insert(idx + 1);
        }
    }

    for (doc, needle, what) in [
        (
            "DESIGN.md",
            "serving protocol",
            "DESIGN.md \u{a7}13 protocol method table",
        ),
        ("README.md", "serving", "README.md Serving table"),
    ] {
        let Some(lines) = ws.doc_lines(doc) else {
            continue;
        };
        let documented = heading_scoped_names(&lines, needle);
        for (name, line) in &methods {
            if file.allowed(codes::A_PROTO_METHOD_DRIFT, *line) {
                continue;
            }
            if !documented.contains_key(name) {
                emit(
                    diags,
                    codes::A_PROTO_METHOD_DRIFT,
                    format!("wire method `{name}` is declared here but missing from the {what}"),
                    PROTO,
                    *line,
                );
            }
        }
        for (name, line) in &documented {
            if !methods.contains_key(name) {
                emit(
                    diags,
                    codes::A_PROTO_METHOD_DRIFT,
                    format!("{what} lists `{name}`, which wfms-proto does not declare"),
                    doc,
                    *line,
                );
            }
        }
    }
}

/// The wire protocol's error vocabulary: `pub const ERR_*: &str`
/// declarations in `wfms-proto` vs the DESIGN.md §13 error-vocabulary
/// table and the README error vocabulary table, in both directions.
/// Error kinds drive client retry policy (the retry client retries
/// exactly the kinds `wfms_proto::is_retryable` blesses), so they carry
/// the same stability contract as the method names — and the same
/// drift check.
fn check_proto_errors(ws: &Workspace, diags: &mut Diagnostics) {
    const PROTO: &str = "crates/proto/src/lib.rs";
    let Some(file) = ws.file(PROTO) else { return };
    let mut errors = DocNames::new();
    for (idx, code) in file.code.iter().enumerate() {
        if !(code.contains("pub const") && code.contains("&str")) {
            continue;
        }
        let is_error_const = code
            .split_whitespace()
            .skip_while(|w| *w != "const")
            .nth(1)
            .is_some_and(|w| w.starts_with("ERR_"));
        if !is_error_const {
            continue;
        }
        if let Some(value) = file.literals[idx].first() {
            errors.entry(value.clone()).or_insert(idx + 1);
        }
    }

    for (doc, what) in [
        ("DESIGN.md", "DESIGN.md \u{a7}13 error-vocabulary table"),
        ("README.md", "README.md error vocabulary table"),
    ] {
        let Some(lines) = ws.doc_lines(doc) else {
            continue;
        };
        let documented = heading_scoped_names(&lines, "error vocabulary");
        for (name, line) in &errors {
            if file.allowed(codes::A_PROTO_ERROR_DRIFT, *line) {
                continue;
            }
            if !documented.contains_key(name) {
                emit(
                    diags,
                    codes::A_PROTO_ERROR_DRIFT,
                    format!(
                        "wire error kind `{name}` is declared here but missing from the {what}"
                    ),
                    PROTO,
                    *line,
                );
            }
        }
        for (name, line) in &documented {
            if !errors.contains_key(name) {
                emit(
                    diags,
                    codes::A_PROTO_ERROR_DRIFT,
                    format!("{what} lists `{name}`, which wfms-proto does not declare"),
                    doc,
                    *line,
                );
            }
        }
    }
}

/// `W001`-shaped: one uppercase letter then exactly three digits.
fn is_diag_code(token: &str) -> bool {
    let mut chars = token.chars();
    chars.next().is_some_and(|c| c.is_ascii_uppercase())
        && token.len() == 4
        && chars.all(|c| c.is_ascii_digit())
}
