//! Pass 2 — determinism lints (`A006`–`A007`).
//!
//! The solver crates promise bit-identical results regardless of thread
//! count (DESIGN.md §8) and float-identical fast paths (§9). Two code
//! shapes silently break that promise:
//!
//! * **hash-order-dependent collections** — iterating a `HashMap` /
//!   `HashSet` yields a randomized order per process, so any float
//!   accumulation or output built from such an iteration is
//!   run-to-run nondeterministic. Every use in a solver crate must be
//!   proven order-insensitive (lookup-only, membership-only) and carry
//!   an `audit:allow(A006, …)` saying why;
//! * **unordered parallel reductions** — `par_iter` chains ending in
//!   `reduce`/`fold`/`sum`/`product` combine partial results in
//!   scheduler order. Float accumulation must go through the blessed
//!   ordered kernels (`map` + `collect` then a sequential fold).

use wfms_diag::Diagnostics;

use crate::codes;
use crate::emit;
use crate::scan::Workspace;

/// The crates bound by the bit-identity contract.
const SOLVER_SCOPES: &[&str] = &[
    "crates/markov/src/",
    "crates/avail/src/",
    "crates/performability/src/",
    "crates/config/src/",
];

/// Rayon entry points that start a parallel chain.
const PAR_STARTS: &[&str] = &[
    "par_iter()",
    "into_par_iter()",
    "par_chunks(",
    "par_bridge()",
];

/// Unordered combinators that end one.
const UNORDERED_ENDS: &[&str] = &[".reduce(", ".fold(", ".sum(", ".sum::<", ".product("];

pub fn run(ws: &Workspace, diags: &mut Diagnostics) {
    for file in ws.sources_under(SOLVER_SCOPES) {
        if file.is_bin() {
            continue;
        }
        for (idx, code) in file.code.iter().enumerate() {
            let line = idx + 1;
            if (code.contains("HashMap") || code.contains("HashSet"))
                && !file.allowed(codes::A_HASH_ORDER, line)
            {
                let which = if code.contains("HashMap") {
                    "HashMap"
                } else {
                    "HashSet"
                };
                emit(
                    diags,
                    codes::A_HASH_ORDER,
                    format!(
                        "{which} in a solver crate: prove the use order-insensitive and \
                         add `audit:allow(A006, reason = …)`, or switch to an ordered structure"
                    ),
                    &file.rel,
                    line,
                );
            }
            if let Some(start) = PAR_STARTS.iter().find_map(|p| code.find(p)) {
                let chain = statement_from(&file.code, idx, start);
                if UNORDERED_ENDS.iter().any(|e| chain.contains(e))
                    && !file.allowed(codes::A_UNORDERED_REDUCTION, line)
                {
                    emit(
                        diags,
                        codes::A_UNORDERED_REDUCTION,
                        "unordered parallel reduction in a solver crate: collect in input \
                         order and fold sequentially (or justify with `audit:allow(A007, …)`)"
                            .to_string(),
                        &file.rel,
                        line,
                    );
                }
            }
        }
    }
}

/// The statement text from column `col` of line `idx` through the next
/// `;` (bounded lookahead — method chains in this codebase are short).
fn statement_from(code: &[String], idx: usize, col: usize) -> String {
    let mut text = String::new();
    for (offset, line) in code[idx..].iter().take(12).enumerate() {
        let slice = if offset == 0 {
            &line[col..]
        } else {
            line.as_str()
        };
        text.push_str(slice);
        text.push(' ');
        if slice.contains(';') {
            break;
        }
    }
    text
}
