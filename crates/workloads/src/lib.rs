//! Reference workflow specifications for the WFMS configuration models.
//!
//! * [`ep`] — the paper's electronic-purchase workflow (Fig. 3), whose
//!   top level maps to the eight-state CTMC of Fig. 4, against the
//!   three-server-type registry of Sec. 5.2.
//! * [`enterprise`] — a five-server-type scenario (one ORB, two
//!   workflow-engine types, two application-server types, as in Fig. 2)
//!   with TPC-C-style order fulfillment, insurance-claim, and
//!   loan-approval workflow types.

#![warn(missing_docs)]

pub mod enterprise;
pub mod ep;

pub use enterprise::{
    enterprise_mix, enterprise_registry, insurance_claim_workflow, loan_approval_workflow,
    order_fulfillment_workflow,
};
pub use ep::{ep_workflow, validated_ep_workflow, EP_DEFAULT_ARRIVAL_RATE, EP_SIM_ARRIVAL_RATE};
