//! The electronic-purchase (EP) workflow of Fig. 3 of the paper.
//!
//! A simplified e-commerce workflow "similar to the TPC-C benchmark …
//! with the key difference that we combine multiple transaction types
//! into a workflow". It exercises the full spectrum of control-flow
//! structures the paper demands: branching splits (payment mode),
//! parallelism (the `Shipment_S` state spawns the orthogonal `Notify_SC`
//! and `Delivery_SC` subworkflows), joins (shipment completion), and
//! loops (payment reminders; a re-pick loop inside delivery).
//!
//! Mapped through `wfms_statechart::map_chart`, the top level yields the
//! eight-state CTMC of Fig. 4 (seven execution states plus the absorbing
//! state). The paper declares its numeric annotations fictitious; the
//! values here are the documented defaults of this reproduction:
//!
//! | transition | probability | rationale |
//! |---|---|---|
//! | NewOrder → CreditCardCheck | 0.75 | three quarters pay by card |
//! | NewOrder → Shipment | 0.25 | invoice customers skip the check |
//! | CreditCardCheck → Shipment | 0.90 | valid cards |
//! | CreditCardCheck → EP_EXIT | 0.10 | card problems terminate |
//! | Shipment → CreditCardPayment | 0.73 | card share among survivors |
//! | Shipment → InvoicePayment | 0.27 | |
//! | InvoicePayment → Archive | 0.60 | pays on first invoice |
//! | InvoicePayment → PaymentReminder | 0.40 | reminder loop |
//! | PaymentReminder → InvoicePayment | 1.00 | |
//! | CreditCardPayment / Archive → next | 1.00 | |
//!
//! Per Fig. 1, an automated activity induces 3 requests at the workflow
//! engine, 2 at the communication server, and 3 at the application
//! server; an interactive activity runs on a client and induces none at
//! the application server.

use wfms_statechart::{
    ActivityKind, ActivitySpec, ChartBuilder, CondExpr, EcaRule, ServerTypeRegistry, StateChart,
    WorkflowSpec,
};

/// Load vector of an automated activity (registry order: communication
/// server, workflow engine, application server) per Fig. 1.
const AUTOMATED_LOAD: [f64; 3] = [2.0, 3.0, 3.0];
/// Load vector of an interactive activity per Fig. 1 (no app server).
const INTERACTIVE_LOAD: [f64; 3] = [2.0, 3.0, 0.0];

fn automated(name: &str, mean_minutes: f64) -> ActivitySpec {
    ActivitySpec::new(
        name,
        ActivityKind::Automated,
        mean_minutes,
        AUTOMATED_LOAD.to_vec(),
    )
}

fn interactive(name: &str, mean_minutes: f64) -> ActivitySpec {
    ActivitySpec::new(
        name,
        ActivityKind::Interactive,
        mean_minutes,
        INTERACTIVE_LOAD.to_vec(),
    )
}

/// The `Notify_SC` subworkflow: prepare and send the customer
/// notification.
fn notify_chart() -> StateChart {
    ChartBuilder::new("Notify_SC")
        .initial("N_INIT_S")
        .activity_state("PrepareNotice_S", "PrepareNotice")
        .activity_state("SendNotice_S", "SendNotice")
        .final_state("N_EXIT_S")
        .transition("N_INIT_S", "PrepareNotice_S", 1.0, EcaRule::default())
        .transition(
            "PrepareNotice_S",
            "SendNotice_S",
            1.0,
            EcaRule::on_done("PrepareNotice"),
        )
        .transition(
            "SendNotice_S",
            "N_EXIT_S",
            1.0,
            EcaRule::on_done("SendNotice"),
        )
        .build()
        .expect("static chart")
}

/// The `Delivery_SC` subworkflow: pick, pack (with a 5 % re-pick loop),
/// and dispatch the goods.
fn delivery_chart() -> StateChart {
    ChartBuilder::new("Delivery_SC")
        .initial("D_INIT_S")
        .activity_state("PickGoods_S", "PickGoods")
        .activity_state("PackGoods_S", "PackGoods")
        .activity_state("DispatchGoods_S", "DispatchGoods")
        .final_state("D_EXIT_S")
        .transition("D_INIT_S", "PickGoods_S", 1.0, EcaRule::default())
        .transition(
            "PickGoods_S",
            "PackGoods_S",
            1.0,
            EcaRule::on_done("PickGoods"),
        )
        .transition(
            "PackGoods_S",
            "PickGoods_S",
            0.05,
            EcaRule::on_done("PackGoods").with_condition(CondExpr::var("PickError")),
        )
        .transition(
            "PackGoods_S",
            "DispatchGoods_S",
            0.95,
            EcaRule::on_done("PackGoods").with_condition(CondExpr::var("PickError").not()),
        )
        .transition(
            "DispatchGoods_S",
            "D_EXIT_S",
            1.0,
            EcaRule::on_done("DispatchGoods"),
        )
        .build()
        .expect("static chart")
}

/// Builds the complete EP workflow specification (top-level chart of
/// Fig. 3 plus the two shipment subworkflows and the activity table).
///
/// The spec is valid against [`wfms_statechart::paper_section52_registry`]
/// (three server types).
pub fn ep_workflow() -> WorkflowSpec {
    let pay_by_card = CondExpr::var("PayByCreditCard");
    let chart = ChartBuilder::new("EP")
        .initial("EP_INIT_S")
        .activity_state("NewOrder_S", "NewOrder")
        .activity_state("CreditCardCheck_S", "CreditCardCheck")
        .parallel_state("Shipment_S", vec![notify_chart(), delivery_chart()])
        .activity_state("CreditCardPayment_S", "CreditCardPayment")
        .activity_state("InvoicePayment_S", "InvoicePayment")
        .activity_state("PaymentReminder_S", "PaymentReminder")
        .activity_state("Archive_S", "Archive")
        .final_state("EP_EXIT_S")
        .transition("EP_INIT_S", "NewOrder_S", 1.0, EcaRule::default())
        .transition(
            "NewOrder_S",
            "CreditCardCheck_S",
            0.75,
            EcaRule::on_done("NewOrder").with_condition(pay_by_card.clone()),
        )
        .transition(
            "NewOrder_S",
            "Shipment_S",
            0.25,
            EcaRule::on_done("NewOrder").with_condition(pay_by_card.clone().not()),
        )
        .transition(
            "CreditCardCheck_S",
            "Shipment_S",
            0.90,
            EcaRule::on_done("CreditCardCheck").with_condition(CondExpr::var("CardOk")),
        )
        .transition(
            "CreditCardCheck_S",
            "EP_EXIT_S",
            0.10,
            EcaRule::on_done("CreditCardCheck").with_condition(CondExpr::var("CardOk").not()),
        )
        .transition(
            "Shipment_S",
            "CreditCardPayment_S",
            0.73,
            EcaRule::default().with_condition(pay_by_card.clone()),
        )
        .transition(
            "Shipment_S",
            "InvoicePayment_S",
            0.27,
            EcaRule::default().with_condition(pay_by_card.not()),
        )
        .transition(
            "CreditCardPayment_S",
            "Archive_S",
            1.0,
            EcaRule::on_done("CreditCardPayment"),
        )
        .transition(
            "InvoicePayment_S",
            "Archive_S",
            0.60,
            EcaRule::on_done("InvoicePayment").with_condition(CondExpr::var("Paid")),
        )
        .transition(
            "InvoicePayment_S",
            "PaymentReminder_S",
            0.40,
            EcaRule::on_done("InvoicePayment").with_condition(CondExpr::var("Paid").not()),
        )
        .transition(
            "PaymentReminder_S",
            "InvoicePayment_S",
            1.0,
            EcaRule::on_done("PaymentReminder"),
        )
        .transition("Archive_S", "EP_EXIT_S", 1.0, EcaRule::on_done("Archive"))
        .build()
        .expect("static chart");

    WorkflowSpec::new(
        "EP",
        chart,
        [
            interactive("NewOrder", 5.0),
            automated("CreditCardCheck", 1.0),
            // Shipment subworkflow activities.
            automated("PrepareNotice", 1.0),
            automated("SendNotice", 0.5),
            interactive("PickGoods", 20.0),
            interactive("PackGoods", 10.0),
            automated("DispatchGoods", 2.0),
            // Payment tail.
            automated("CreditCardPayment", 1.0),
            // Invoice payment waits on the customer: long and highly variable.
            ActivitySpec::new(
                "InvoicePayment",
                ActivityKind::Interactive,
                2_880.0, // two days
                INTERACTIVE_LOAD.to_vec(),
            )
            .with_duration_scv(2.0),
            automated("PaymentReminder", 1.0),
            automated("Archive", 0.5),
        ],
    )
}

/// The arrival rate used by the reproduction's analytic EP experiments:
/// ten purchases per minute (a busy shop; puts the engine type at ~43 %
/// utilization per replica on the Sec. 5.2 registry, so performance goals
/// genuinely constrain the configuration search).
pub const EP_DEFAULT_ARRIVAL_RATE: f64 = 10.0;

/// A lighter arrival rate for simulation-based studies (keeps event
/// counts manageable while still completing tens of thousands of
/// instances per run).
pub const EP_SIM_ARRIVAL_RATE: f64 = 0.5;

/// Validates the EP workflow against a registry (convenience used by the
/// experiment binaries).
///
/// # Errors
/// Propagates [`wfms_statechart::SpecError`].
pub fn validated_ep_workflow(
    registry: &ServerTypeRegistry,
) -> Result<WorkflowSpec, wfms_statechart::SpecError> {
    let spec = ep_workflow();
    wfms_statechart::validate_spec(&spec, registry)?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfms_statechart::{map_chart, paper_section52_registry, validate_spec, MappedKind};

    #[test]
    fn ep_spec_validates_against_paper_registry() {
        let reg = paper_section52_registry();
        validate_spec(&ep_workflow(), &reg).unwrap();
        assert!(validated_ep_workflow(&reg).is_ok());
    }

    #[test]
    fn ep_top_level_maps_to_the_eight_state_ctmc_of_figure_4() {
        // "Besides the absorbing state s_A, the CTMC consists of seven
        // further states, each representing the seven states of the
        // workflow's top-level state chart."
        let spec = ep_workflow();
        let mapping = map_chart(&spec.chart, &spec).unwrap();
        assert_eq!(mapping.n(), 8);
        assert_eq!(mapping.labels.last().unwrap(), "s_A");
        assert_eq!(mapping.labels[mapping.start], "NewOrder_S");
        // One nested state (the parallel shipment), six activities.
        let nested = mapping
            .kinds
            .iter()
            .filter(|k| matches!(k, MappedKind::Nested(_)))
            .count();
        assert_eq!(nested, 1);
        let activities = mapping
            .kinds
            .iter()
            .filter(|k| matches!(k, MappedKind::Activity(_)))
            .count();
        assert_eq!(activities, 6);
    }

    #[test]
    fn ep_has_branching_parallelism_join_and_loop() {
        let spec = ep_workflow();
        // Branching: NewOrder has two successors.
        let new_order = spec.chart.state_by_name("NewOrder_S").unwrap();
        assert_eq!(spec.chart.outgoing(new_order).count(), 2);
        // Parallelism: the shipment state embeds two charts.
        match &spec.chart.states[spec.chart.state_by_name("Shipment_S").unwrap().0].kind {
            wfms_statechart::StateKind::Nested { charts } => assert_eq!(charts.len(), 2),
            other => panic!("expected nested shipment, got {other:?}"),
        }
        // Loop: PaymentReminder feeds back into InvoicePayment.
        let reminder = spec.chart.state_by_name("PaymentReminder_S").unwrap();
        let back = spec.chart.outgoing(reminder).next().unwrap();
        assert_eq!(spec.chart.states[back.to.0].name, "InvoicePayment_S");
        // Nesting depth 2 (subworkflows inside the top level).
        assert_eq!(spec.chart.nesting_depth(), 2);
    }

    #[test]
    fn ep_probability_splits_sum_to_one() {
        let spec = ep_workflow();
        for (i, s) in spec.chart.states.iter().enumerate() {
            if matches!(s.kind, wfms_statechart::StateKind::Final) {
                continue;
            }
            let sum: f64 = spec
                .chart
                .outgoing(wfms_statechart::StateId(i))
                .map(|t| t.probability)
                .sum();
            assert!((sum - 1.0).abs() < 1e-9, "state {}: {sum}", s.name);
        }
    }

    #[test]
    fn delivery_subworkflow_contains_the_repick_loop() {
        let spec = ep_workflow();
        let shipment = spec.chart.state_by_name("Shipment_S").unwrap();
        let charts = match &spec.chart.states[shipment.0].kind {
            wfms_statechart::StateKind::Nested { charts } => charts,
            _ => unreachable!(),
        };
        let delivery = charts.iter().find(|c| c.name == "Delivery_SC").unwrap();
        let pack = delivery.state_by_name("PackGoods_S").unwrap();
        let back_to_pick = delivery
            .outgoing(pack)
            .any(|t| delivery.states[t.to.0].name == "PickGoods_S");
        assert!(back_to_pick);
    }

    #[test]
    fn interactive_activities_put_no_load_on_app_servers() {
        let spec = ep_workflow();
        for a in spec.activities.values() {
            match a.kind {
                ActivityKind::Interactive => assert_eq!(a.load[2], 0.0, "{}", a.name),
                ActivityKind::Automated => assert!(a.load[2] > 0.0, "{}", a.name),
            }
        }
    }
}
