//! An enterprise-scale scenario: five server types and three additional
//! workflow types, exercising the architecture of Fig. 2 with multiple
//! workflow-engine and application-server types.

use wfms_statechart::{
    ActivityKind, ActivitySpec, ChartBuilder, EcaRule, ServerType, ServerTypeKind,
    ServerTypeRegistry, WorkflowSpec,
};

/// Index of the communication server in [`enterprise_registry`].
pub const COMM: usize = 0;
/// Index of the order-processing workflow engine.
pub const ENGINE_ORDER: usize = 1;
/// Index of the finance workflow engine.
pub const ENGINE_FINANCE: usize = 2;
/// Index of the CRM application server.
pub const APP_CRM: usize = 3;
/// Index of the ERP application server.
pub const APP_ERP: usize = 4;

/// Five-type registry: one ORB, two workflow-engine types, two
/// application-server types. Failure rates follow the paper's maturity
/// ranking (middleware > engines > application servers); all repairs
/// average 10 minutes.
pub fn enterprise_registry() -> ServerTypeRegistry {
    let mut reg = ServerTypeRegistry::new();
    let month = 43_200.0;
    let week = 10_080.0;
    let day = 1_440.0;
    let mttr = 10.0;
    let entries = [
        ("orb", ServerTypeKind::Communication, month, 50.0 / 60_000.0),
        (
            "engine-order",
            ServerTypeKind::WorkflowEngine,
            week,
            100.0 / 60_000.0,
        ),
        (
            "engine-finance",
            ServerTypeKind::WorkflowEngine,
            week,
            100.0 / 60_000.0,
        ),
        (
            "app-crm",
            ServerTypeKind::ApplicationServer,
            day,
            200.0 / 60_000.0,
        ),
        (
            "app-erp",
            ServerTypeKind::ApplicationServer,
            day,
            200.0 / 60_000.0,
        ),
    ];
    for (name, kind, mttf, service) in entries {
        reg.register(ServerType::with_exponential_service(
            name,
            kind,
            1.0 / mttf,
            1.0 / mttr,
            service,
        ))
        .expect("static parameters");
    }
    reg
}

/// Load vector helper: `comm` requests at the ORB, `engine` at the given
/// engine type, `app` at the given app type (zero elsewhere).
fn load(engine_idx: usize, engine: f64, app_idx: usize, app: f64, comm: f64) -> Vec<f64> {
    let mut v = vec![0.0; 5];
    v[COMM] = comm;
    v[engine_idx] = engine;
    if app > 0.0 {
        v[app_idx] = app;
    }
    v
}

fn order_auto(name: &str, minutes: f64) -> ActivitySpec {
    ActivitySpec::new(
        name,
        ActivityKind::Automated,
        minutes,
        load(ENGINE_ORDER, 3.0, APP_ERP, 3.0, 2.0),
    )
}

fn order_inter(name: &str, minutes: f64) -> ActivitySpec {
    ActivitySpec::new(
        name,
        ActivityKind::Interactive,
        minutes,
        load(ENGINE_ORDER, 3.0, APP_ERP, 0.0, 2.0),
    )
}

fn finance_auto(name: &str, minutes: f64, app_idx: usize) -> ActivitySpec {
    ActivitySpec::new(
        name,
        ActivityKind::Automated,
        minutes,
        load(ENGINE_FINANCE, 3.0, app_idx, 3.0, 2.0),
    )
}

fn finance_inter(name: &str, minutes: f64) -> ActivitySpec {
    ActivitySpec::new(
        name,
        ActivityKind::Interactive,
        minutes,
        load(ENGINE_FINANCE, 3.0, APP_CRM, 0.0, 2.0),
    )
}

/// TPC-C-style order-fulfillment workflow on the order engine + ERP:
/// order entry, stock check with back-order loop, delivery, payment.
pub fn order_fulfillment_workflow() -> WorkflowSpec {
    let chart = ChartBuilder::new("OrderFulfillment")
        .initial("OF_INIT")
        .activity_state("EnterOrder", "OF_EnterOrder")
        .activity_state("CheckStock", "OF_CheckStock")
        .activity_state("BackOrder", "OF_BackOrder")
        .activity_state("Deliver", "OF_Deliver")
        .activity_state("Payment", "OF_Payment")
        .final_state("OF_EXIT")
        .transition("OF_INIT", "EnterOrder", 1.0, EcaRule::default())
        .transition(
            "EnterOrder",
            "CheckStock",
            1.0,
            EcaRule::on_done("OF_EnterOrder"),
        )
        .transition("CheckStock", "Deliver", 0.85, EcaRule::default())
        .transition("CheckStock", "BackOrder", 0.15, EcaRule::default())
        .transition(
            "BackOrder",
            "CheckStock",
            1.0,
            EcaRule::on_done("OF_BackOrder"),
        )
        .transition("Deliver", "Payment", 1.0, EcaRule::on_done("OF_Deliver"))
        .transition("Payment", "OF_EXIT", 1.0, EcaRule::on_done("OF_Payment"))
        .build()
        .expect("static chart");
    WorkflowSpec::new(
        "OrderFulfillment",
        chart,
        [
            order_inter("OF_EnterOrder", 3.0),
            order_auto("OF_CheckStock", 0.5),
            order_auto("OF_BackOrder", 120.0),
            order_inter("OF_Deliver", 45.0),
            order_auto("OF_Payment", 1.0),
        ],
    )
}

/// Insurance-claim workflow on the finance engine: claim intake, parallel
/// damage assessment (police report via CRM, appraisal via ERP), an
/// approval loop, and payout.
pub fn insurance_claim_workflow() -> WorkflowSpec {
    let police = ChartBuilder::new("PoliceReport_SC")
        .initial("PR_INIT")
        .activity_state("RequestReport", "IC_RequestReport")
        .activity_state("ReceiveReport", "IC_ReceiveReport")
        .final_state("PR_EXIT")
        .transition("PR_INIT", "RequestReport", 1.0, EcaRule::default())
        .transition("RequestReport", "ReceiveReport", 1.0, EcaRule::default())
        .transition("ReceiveReport", "PR_EXIT", 1.0, EcaRule::default())
        .build()
        .expect("static chart");
    let appraisal = ChartBuilder::new("Appraisal_SC")
        .initial("AP_INIT")
        .activity_state("ScheduleVisit", "IC_ScheduleVisit")
        .activity_state("AppraiseDamage", "IC_AppraiseDamage")
        .final_state("AP_EXIT")
        .transition("AP_INIT", "ScheduleVisit", 1.0, EcaRule::default())
        .transition("ScheduleVisit", "AppraiseDamage", 1.0, EcaRule::default())
        .transition("AppraiseDamage", "AP_EXIT", 1.0, EcaRule::default())
        .build()
        .expect("static chart");
    let chart = ChartBuilder::new("InsuranceClaim")
        .initial("IC_INIT")
        .activity_state("FileClaim", "IC_FileClaim")
        .parallel_state("Assess", vec![police, appraisal])
        .activity_state("Review", "IC_Review")
        .activity_state("RequestInfo", "IC_RequestInfo")
        .activity_state("Payout", "IC_Payout")
        .final_state("IC_EXIT")
        .transition("IC_INIT", "FileClaim", 1.0, EcaRule::default())
        .transition("FileClaim", "Assess", 1.0, EcaRule::on_done("IC_FileClaim"))
        .transition("Assess", "Review", 1.0, EcaRule::default())
        .transition("Review", "Payout", 0.7, EcaRule::default())
        .transition("Review", "RequestInfo", 0.2, EcaRule::default())
        .transition("Review", "IC_EXIT", 0.1, EcaRule::default()) // rejected
        .transition(
            "RequestInfo",
            "Review",
            1.0,
            EcaRule::on_done("IC_RequestInfo"),
        )
        .transition("Payout", "IC_EXIT", 1.0, EcaRule::on_done("IC_Payout"))
        .build()
        .expect("static chart");
    WorkflowSpec::new(
        "InsuranceClaim",
        chart,
        [
            finance_inter("IC_FileClaim", 10.0),
            finance_auto("IC_RequestReport", 2.0, APP_CRM),
            // Waiting on an external authority: long, highly variable.
            finance_auto("IC_ReceiveReport", 1_440.0, APP_CRM).with_duration_scv(3.0),
            finance_inter("IC_ScheduleVisit", 15.0),
            finance_inter("IC_AppraiseDamage", 90.0),
            finance_inter("IC_Review", 30.0),
            finance_auto("IC_RequestInfo", 480.0, APP_CRM),
            finance_auto("IC_Payout", 2.0, APP_ERP),
        ],
    )
}

/// Loan-approval workflow on the finance engine: application, automated
/// scoring, a manual-review loop for borderline cases, signing,
/// disbursement.
pub fn loan_approval_workflow() -> WorkflowSpec {
    let chart = ChartBuilder::new("LoanApproval")
        .initial("LA_INIT")
        .activity_state("Apply", "LA_Apply")
        .activity_state("CreditScore", "LA_CreditScore")
        .activity_state("ManualReview", "LA_ManualReview")
        .activity_state("Sign", "LA_Sign")
        .activity_state("Disburse", "LA_Disburse")
        .final_state("LA_EXIT")
        .transition("LA_INIT", "Apply", 1.0, EcaRule::default())
        .transition("Apply", "CreditScore", 1.0, EcaRule::on_done("LA_Apply"))
        .transition("CreditScore", "Sign", 0.5, EcaRule::default())
        .transition("CreditScore", "ManualReview", 0.35, EcaRule::default())
        .transition("CreditScore", "LA_EXIT", 0.15, EcaRule::default()) // declined
        .transition("ManualReview", "ManualReview", 0.25, EcaRule::default()) // escalation retry
        .transition("ManualReview", "Sign", 0.45, EcaRule::default())
        .transition("ManualReview", "LA_EXIT", 0.30, EcaRule::default())
        .transition("Sign", "Disburse", 1.0, EcaRule::on_done("LA_Sign"))
        .transition("Disburse", "LA_EXIT", 1.0, EcaRule::on_done("LA_Disburse"))
        .build()
        .expect("static chart");
    WorkflowSpec::new(
        "LoanApproval",
        chart,
        [
            finance_inter("LA_Apply", 20.0),
            finance_auto("LA_CreditScore", 1.0, APP_CRM),
            finance_inter("LA_ManualReview", 240.0),
            finance_inter("LA_Sign", 60.0),
            finance_auto("LA_Disburse", 2.0, APP_ERP),
        ],
    )
}

/// The default enterprise workload mix: workflow specs with their arrival
/// rates (instances per minute). The volumes are sized so the busiest
/// server types (order engine, ERP) run at a meaningful fraction of one
/// replica's capacity — losing a replica of a 2-way-replicated type then
/// visibly degrades (or saturates) the service, which is exactly the
/// regime the performability model is about.
pub fn enterprise_mix() -> Vec<(WorkflowSpec, f64)> {
    vec![
        (order_fulfillment_workflow(), 60.0),
        (insurance_claim_workflow(), 12.0),
        (loan_approval_workflow(), 6.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfms_statechart::validate_spec;

    #[test]
    fn registry_has_five_types_in_documented_order() {
        let reg = enterprise_registry();
        assert_eq!(reg.len(), 5);
        assert_eq!(
            reg.get(wfms_statechart::ServerTypeId(COMM)).unwrap().name,
            "orb"
        );
        assert_eq!(
            reg.get(wfms_statechart::ServerTypeId(APP_ERP))
                .unwrap()
                .name,
            "app-erp"
        );
    }

    #[test]
    fn all_enterprise_workflows_validate() {
        let reg = enterprise_registry();
        for (spec, rate) in enterprise_mix() {
            validate_spec(&spec, &reg).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert!(rate > 0.0);
        }
    }

    #[test]
    fn order_fulfillment_has_backorder_loop() {
        let spec = order_fulfillment_workflow();
        let back = spec.chart.state_by_name("BackOrder").unwrap();
        let t = spec.chart.outgoing(back).next().unwrap();
        assert_eq!(spec.chart.states[t.to.0].name, "CheckStock");
    }

    #[test]
    fn insurance_claim_runs_parallel_assessment() {
        let spec = insurance_claim_workflow();
        match &spec.chart.states[spec.chart.state_by_name("Assess").unwrap().0].kind {
            wfms_statechart::StateKind::Nested { charts } => {
                assert_eq!(charts.len(), 2);
                assert_eq!(charts[0].name, "PoliceReport_SC");
            }
            other => panic!("expected parallel assessment, got {other:?}"),
        }
    }

    #[test]
    fn loan_approval_has_self_loop_review() {
        let spec = loan_approval_workflow();
        let review = spec.chart.state_by_name("ManualReview").unwrap();
        assert!(spec.chart.outgoing(review).any(|t| t.to == review));
    }

    #[test]
    fn workflows_split_load_across_engines() {
        // Order workflow must not touch the finance engine and vice versa.
        let order = order_fulfillment_workflow();
        for a in order.activities.values() {
            assert_eq!(a.load[ENGINE_FINANCE], 0.0, "{}", a.name);
            assert!(a.load[ENGINE_ORDER] > 0.0, "{}", a.name);
        }
        let loan = loan_approval_workflow();
        for a in loan.activities.values() {
            assert_eq!(a.load[ENGINE_ORDER], 0.0, "{}", a.name);
            assert!(a.load[ENGINE_FINANCE] > 0.0, "{}", a.name);
        }
    }
}
