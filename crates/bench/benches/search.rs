//! Configuration-search benchmarks: the greedy heuristic versus the
//! exhaustive baseline for the EP scenario.

use criterion::{criterion_group, criterion_main, Criterion};

use wfms_config::{exhaustive_search, greedy_search, Goals, SearchOptions};
use wfms_perf::{aggregate_load, analyze_workflow, AnalysisOptions, SystemLoad, WorkloadItem};
use wfms_statechart::{paper_section52_registry, ServerTypeRegistry};
use wfms_workloads::{ep_workflow, EP_DEFAULT_ARRIVAL_RATE};

fn setup() -> (ServerTypeRegistry, SystemLoad) {
    let reg = paper_section52_registry();
    let analysis = analyze_workflow(&ep_workflow(), &reg, &AnalysisOptions::default()).expect("EP");
    let load = aggregate_load(
        &[WorkloadItem {
            analysis,
            arrival_rate: EP_DEFAULT_ARRIVAL_RATE * 3.0,
        }],
        &reg,
    )
    .expect("aggregates");
    (reg, load)
}

fn bench_search(c: &mut Criterion) {
    let (reg, load) = setup();
    let goals = Goals::new(0.05, 0.9999).expect("valid");
    let opts = SearchOptions::default();
    let mut group = c.benchmark_group("configuration_search");
    group.sample_size(20);
    group.bench_function("greedy_ep", |b| {
        b.iter(|| greedy_search(&reg, &load, &goals, &opts).expect("reachable"))
    });
    group.bench_function("branch_and_bound_ep", |b| {
        b.iter(|| {
            wfms_config::branch_and_bound_search(&reg, &load, &goals, &opts).expect("reachable")
        })
    });
    group.bench_function("exhaustive_ep", |b| {
        b.iter(|| exhaustive_search(&reg, &load, &goals, &opts).expect("reachable"))
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
