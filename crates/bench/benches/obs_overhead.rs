//! OBS-OVERHEAD — cost of the observability layer on the EXP-P1
//! analytic path: the same workflow analysis and turnaround distribution
//! with the global recorder disabled (the default everywhere) versus
//! enabled, and with the timeline journal disabled versus enabled. The
//! disabled cases must stay within noise (< 2 %) of the pre-obs
//! baseline: every disabled span is a single relaxed atomic load, and
//! the timeline adds exactly one more relaxed load per emission point.

use criterion::{criterion_group, criterion_main, Criterion};

use wfms_perf::{analyze_workflow, AnalysisOptions, TurnaroundDistribution};
use wfms_statechart::paper_section52_registry;
use wfms_workloads::ep_workflow;

fn analysis_pass() -> f64 {
    let reg = paper_section52_registry();
    let spec = ep_workflow();
    let analysis = analyze_workflow(&spec, &reg, &AnalysisOptions::default()).expect("EP");
    let dist = TurnaroundDistribution::new(&analysis, 1e-9).expect("uniformizable");
    dist.percentile(0.9).expect("percentile")
}

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ep_analysis_obs");

    wfms_obs::disable();
    wfms_obs::global().reset();
    group.bench_function("recorder_disabled", |b| b.iter(analysis_pass));

    wfms_obs::enable();
    group.bench_function("recorder_enabled", |b| {
        b.iter(|| {
            let p90 = analysis_pass();
            // Drain so the span buffer never hits its cap mid-measurement.
            wfms_obs::global().reset();
            p90
        })
    });
    wfms_obs::disable();
    wfms_obs::global().reset();

    // The disabled timeline must be indistinguishable from no timeline:
    // its emission hook in every span is one relaxed atomic load.
    wfms_obs::timeline::disable();
    wfms_obs::timeline::reset();
    group.bench_function("timeline_disabled", |b| b.iter(analysis_pass));

    wfms_obs::timeline::enable();
    group.bench_function("timeline_enabled", |b| {
        b.iter(|| {
            let p90 = analysis_pass();
            // Drain so no track ever hits its event cap mid-measurement.
            let _ = wfms_obs::timeline::take();
            p90
        })
    });
    wfms_obs::timeline::disable();
    wfms_obs::timeline::reset();

    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
