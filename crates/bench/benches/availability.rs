//! Availability-model scaling: CTMC assembly + solve versus the closed
//! form, as the state space `Π (Y_x + 1)` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wfms_avail::{closed_form_unavailability, AvailabilityModel};
use wfms_markov::ctmc::SteadyStateMethod;
use wfms_statechart::{Configuration, ServerType, ServerTypeKind, ServerTypeRegistry};

fn registry(k: usize) -> ServerTypeRegistry {
    let mut reg = ServerTypeRegistry::new();
    for i in 0..k {
        reg.register(ServerType::with_exponential_service(
            format!("t{i}"),
            ServerTypeKind::ApplicationServer,
            1.0 / 1_440.0,
            0.1,
            0.01,
        ))
        .expect("valid");
    }
    reg
}

fn bench_model_build_and_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("availability_end_to_end");
    group.sample_size(10);
    for (k, y) in [(3usize, 2usize), (3, 5), (4, 4), (5, 3), (6, 2)] {
        let reg = registry(k);
        let config = Configuration::uniform(&reg, y).expect("valid");
        let states: usize = (y + 1).pow(k as u32);
        group.bench_with_input(
            BenchmarkId::new("ctmc", format!("k{k}_y{y}_{states}states")),
            &(reg.clone(), config.clone()),
            |b, (reg, config)| {
                b.iter(|| {
                    let model = AvailabilityModel::new(reg, config).expect("builds");
                    let pi = model.steady_state(SteadyStateMethod::Lu).expect("solves");
                    model.unavailability(&pi).expect("lengths")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("closed_form", format!("k{k}_y{y}")),
            &(reg, config),
            |b, (reg, config)| {
                b.iter(|| closed_form_unavailability(reg, config).expect("computes"))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_model_build_and_solve);
criterion_main!(benches);
