//! Solver micro-benchmarks: Gauss–Seidel (the paper's method) vs LU vs
//! power iteration for the steady state of availability CTMCs of growing
//! size, and for workflow first-passage systems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wfms_avail::AvailabilityModel;
use wfms_markov::ctmc::SteadyStateMethod;
use wfms_markov::linalg::GaussSeidelOptions;
use wfms_statechart::{Configuration, ServerType, ServerTypeKind, ServerTypeRegistry};

fn registry(k: usize) -> ServerTypeRegistry {
    let mut reg = ServerTypeRegistry::new();
    for i in 0..k {
        reg.register(ServerType::with_exponential_service(
            format!("t{i}"),
            ServerTypeKind::WorkflowEngine,
            1.0 / (1_440.0 * (i + 1) as f64),
            0.1,
            0.01,
        ))
        .expect("valid");
    }
    reg
}

fn bench_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("availability_steady_state");
    group.sample_size(10);
    for (k, y) in [(3usize, 2usize), (3, 4), (4, 3), (5, 3)] {
        let reg = registry(k);
        let config = Configuration::uniform(&reg, y).expect("valid");
        let model = AvailabilityModel::new(&reg, &config).expect("builds");
        let states = model.state_space().len();
        group.bench_with_input(
            BenchmarkId::new("lu", format!("k{k}_y{y}_{states}states")),
            &model,
            |b, m| b.iter(|| m.steady_state(SteadyStateMethod::Lu).expect("solves")),
        );
        group.bench_with_input(
            BenchmarkId::new("gauss_seidel", format!("k{k}_y{y}_{states}states")),
            &model,
            |b, m| {
                b.iter(|| {
                    m.steady_state(SteadyStateMethod::GaussSeidel(GaussSeidelOptions {
                        tolerance: 1e-10,
                        ..Default::default()
                    }))
                    .expect("solves")
                })
            },
        );
        // Power iteration mixes at the slowest failure/repair timescale and
        // is orders of magnitude slower here; bench it only on the smallest
        // chain so the comparison stays visible without dominating runtime.
        if (k, y) == (3, 2) {
            group.bench_with_input(
                BenchmarkId::new("power", format!("k{k}_y{y}_{states}states")),
                &model,
                |b, m| {
                    b.iter(|| {
                        m.steady_state(SteadyStateMethod::Power {
                            tolerance: 1e-8,
                            max_iterations: 10_000_000,
                        })
                        .expect("solves")
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_first_passage(c: &mut Criterion) {
    use wfms_perf::{analyze_workflow, AnalysisOptions};
    use wfms_workloads::ep_workflow;
    let reg = wfms_statechart::paper_section52_registry();
    let spec = ep_workflow();
    c.bench_function("ep_full_workflow_analysis", |b| {
        b.iter(|| analyze_workflow(&spec, &reg, &AnalysisOptions::default()).expect("analyzes"))
    });
}

criterion_group!(benches, bench_steady_state, bench_first_passage);
criterion_main!(benches);
