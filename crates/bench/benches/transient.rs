//! Transient-analysis benchmarks: the paper's truncated-uniformization
//! reward computation versus the exact fundamental-matrix route, across
//! truncation quantiles (the z_max ablation of DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wfms_markov::{
    reward_until_absorption_exact, reward_until_absorption_uniformized, TruncationOptions,
};
use wfms_perf::{analyze_workflow, AnalysisOptions};
use wfms_statechart::paper_section52_registry;
use wfms_workloads::ep_workflow;

fn bench_reward(c: &mut Criterion) {
    let reg = paper_section52_registry();
    let spec = ep_workflow();
    let analysis = analyze_workflow(&spec, &reg, &AnalysisOptions::default()).expect("EP");
    let ctmc = analysis.ctmc.clone();
    let rewards: Vec<f64> = (0..ctmc.n())
        .map(|i| analysis.state_loads[(1, i)])
        .collect();
    let start = analysis.start;

    c.bench_function("reward_exact_fundamental_matrix", |b| {
        b.iter(|| reward_until_absorption_exact(&ctmc, &rewards, start).expect("computes"))
    });

    let mut group = c.benchmark_group("reward_uniformized_by_quantile");
    for quantile in [0.9, 0.99, 0.999, 0.99999] {
        group.bench_with_input(BenchmarkId::from_parameter(quantile), &quantile, |b, &q| {
            b.iter(|| {
                reward_until_absorption_uniformized(
                    &ctmc,
                    &rewards,
                    start,
                    TruncationOptions {
                        quantile: q,
                        hard_cap: 10_000_000,
                    },
                )
                .expect("computes")
            })
        });
    }
    group.finish();
}

fn bench_turnaround_cdf(c: &mut Criterion) {
    use wfms_markov::Uniformized;
    let reg = paper_section52_registry();
    let analysis = analyze_workflow(&ep_workflow(), &reg, &AnalysisOptions::default()).expect("EP");
    let uni = Uniformized::new(&analysis.ctmc).expect("uniformizes");
    let t = analysis.mean_turnaround;
    c.bench_function("turnaround_cdf_at_mean", |b| {
        b.iter(|| {
            uni.absorption_cdf(analysis.start, t, 1e-9)
                .expect("computes")
        })
    });
}

criterion_group!(benches, bench_reward, bench_turnaround_cdf);
criterion_main!(benches);
