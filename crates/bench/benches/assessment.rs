//! End-to-end assessment cost: what one candidate-configuration
//! evaluation (availability CTMC + performability MRM) costs the
//! configuration-search loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wfms_config::{assess, Goals};
use wfms_perf::{aggregate_load, analyze_workflow, AnalysisOptions, WorkloadItem};
use wfms_statechart::{paper_section52_registry, Configuration};
use wfms_workloads::{ep_workflow, EP_DEFAULT_ARRIVAL_RATE};

fn bench_assess(c: &mut Criterion) {
    let reg = paper_section52_registry();
    let analysis = analyze_workflow(&ep_workflow(), &reg, &AnalysisOptions::default()).expect("EP");
    let load = aggregate_load(
        &[WorkloadItem {
            analysis,
            arrival_rate: EP_DEFAULT_ARRIVAL_RATE,
        }],
        &reg,
    )
    .expect("aggregates");
    let goals = Goals::new(0.05, 0.9999).expect("valid");

    let mut group = c.benchmark_group("assess_configuration");
    for y in [1usize, 2, 3, 4] {
        let config = Configuration::uniform(&reg, y).expect("valid");
        group.bench_with_input(BenchmarkId::from_parameter(y), &config, |b, config| {
            b.iter(|| assess(&reg, config, &load, &goals).expect("assesses"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_assess);
criterion_main!(benches);
