//! Simulator throughput: wall-clock cost per simulated workflow instance
//! (EP, with and without failure injection).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use wfms_sim::{run, SimOptions};
use wfms_statechart::{paper_section52_registry, Configuration};
use wfms_workloads::ep_workflow;

fn bench_simulation(c: &mut Criterion) {
    let reg = paper_section52_registry();
    let spec = ep_workflow();
    let config = Configuration::uniform(&reg, 2).expect("valid");
    let mut group = c.benchmark_group("simulate_ep_5000_minutes");
    group.sample_size(10);
    for failures in [false, true] {
        let opts = SimOptions {
            duration_minutes: 5_000.0,
            warmup_minutes: 500.0,
            seed: 9,
            failures_enabled: failures,
            ..SimOptions::default()
        };
        group.bench_with_input(BenchmarkId::new("failures", failures), &opts, |b, opts| {
            b.iter(|| run(&reg, &config, &[(&spec, 0.5)], opts).expect("simulates"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
