//! EXP-B1 — performability (Sec. 6): expected waiting time with
//! failure-induced degradation versus the failure-blind performance
//! model, across configurations, with the degraded-state breakdown.

use wfms_bench::Table;
use wfms_perf::{aggregate_load, analyze_workflow, waiting_times, AnalysisOptions, WorkloadItem};
use wfms_performability::{evaluate, DegradedPolicy};
use wfms_statechart::{paper_section52_registry, Configuration};
use wfms_workloads::ep_workflow;

fn main() {
    wfms_bench::obs::start();
    let registry = paper_section52_registry();
    // Load the system heavily enough that losing a replica hurts:
    // ξ chosen so the engine type runs at ~85 % on two replicas.
    let analysis =
        analyze_workflow(&ep_workflow(), &registry, &AnalysisOptions::default()).expect("EP");
    let b_engine = registry
        .get(wfms_statechart::ServerTypeId(1))
        .expect("id")
        .service_time_mean;
    let xi = 2.0 * 0.85 / (analysis.expected_requests[1] * b_engine);
    let load = aggregate_load(
        &[WorkloadItem {
            analysis,
            arrival_rate: xi,
        }],
        &registry,
    )
    .expect("aggregates");

    println!("EXP-B1: performability W^Y vs failure-blind waiting (EP at ξ = {xi:.1}/min)\n");
    let mut table = Table::new(&[
        "Y",
        "blind worst wait (s)",
        "performability W (s)",
        "inflation",
        "P(saturated)",
        "P(down)",
    ]);
    for replicas in [
        vec![2, 2, 2],
        vec![2, 3, 2],
        vec![3, 3, 3],
        vec![3, 4, 3],
        vec![4, 4, 4],
    ] {
        let config = Configuration::new(&registry, replicas).expect("valid");
        let blind = waiting_times(&load, &registry, config.as_slice()).expect("computes");
        let blind_worst = blind
            .iter()
            .filter_map(|o| o.waiting_time())
            .fold(f64::NAN, f64::max);
        match evaluate(&registry, &config, &load, DegradedPolicy::Conditional) {
            Ok(report) => {
                let w = report.max_expected_waiting();
                table.row(vec![
                    format!("{config}"),
                    format!("{:.3}", blind_worst * 60.0),
                    format!("{:.3}", w * 60.0),
                    format!("{:+.1}%", 100.0 * (w - blind_worst) / blind_worst),
                    format!("{:.2e}", report.probability_saturated),
                    format!("{:.2e}", report.probability_down),
                ]);
            }
            Err(e) => table.row(vec![
                format!("{config}"),
                format!("{:.3}", blind_worst * 60.0),
                format!("{e}"),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    table.print();
    println!(
        "\nReading: at this load a lost engine replica saturates the survivor, so\n\
         under the conditional policy the Y(2,2,2) degradation shows up as\n\
         P(saturated) ≈ 1.6e-2 (about 23 minutes per day of saturated operation)\n\
         rather than as a higher finite wait; with three or more replicas the\n\
         degraded states stay stable and appear as the percent-level inflation."
    );

    // Breakdown for Y(2,2,2): which degraded states carry the inflation.
    let config = Configuration::uniform(&registry, 2).expect("valid");
    let report =
        evaluate(&registry, &config, &load, DegradedPolicy::Conditional).expect("evaluates");
    println!("\nDegraded-state contributions for {config} (top engine-relevant states):");
    let mut detail = Table::new(&["state X", "probability", "engine wait (s)"]);
    let mut rows: Vec<_> = report
        .details
        .iter()
        .filter(|d| d.probability > 1e-9)
        .collect();
    rows.sort_by(|a, b| b.probability.total_cmp(&a.probability));
    for d in rows.iter().take(8) {
        let w = d.outcomes[1]
            .waiting_time()
            .map(|w| format!("{:.3}", w * 60.0))
            .unwrap_or_else(|| "saturated/down".into());
        detail.row(vec![
            format!("{:?}", d.state),
            format!("{:.3e}", d.probability),
            w,
        ]);
    }
    detail.print();
    println!(
        "\nPenalty-policy variant (60 s charged to non-serving states): W = {:.3} s",
        evaluate(
            &registry,
            &config,
            &load,
            DegradedPolicy::Penalty { waiting_time: 1.0 }
        )
        .expect("evaluates")
        .max_expected_waiting()
            * 60.0
    );
    wfms_bench::obs::finish("exp_b1_performability");
}
