//! EXP-C1 — the greedy configuration heuristic (Sec. 7.2) versus the
//! exhaustive minimum-cost baseline, over a grid of goal pairs, including
//! the anti-oversizing check and a comparison with an eager
//! non-interleaved variant that adds a server per violated goal without
//! re-evaluating in between.

use wfms_bench::Table;
use wfms_config::{AssessmentEngine, Goals, SearchOptions};
use wfms_perf::{aggregate_load, analyze_workflow, AnalysisOptions, SystemLoad, WorkloadItem};
use wfms_statechart::{paper_section52_registry, Configuration, ServerTypeRegistry};
use wfms_workloads::{ep_workflow, EP_DEFAULT_ARRIVAL_RATE};

/// Eager non-interleaved baseline: the variant the paper's greedy avoids.
/// Each iteration assesses once and then adds a server for *every*
/// violated goal — performance-critical type and availability-critical
/// type — without re-evaluating in between ("adds servers to two
/// different server types only after re-evaluating whether the goals are
/// still not met", Sec. 7.2, is exactly the safeguard this skips).
fn eager_non_interleaved(
    registry: &ServerTypeRegistry,
    load: &SystemLoad,
    goals: &Goals,
    budget: usize,
) -> Option<(Vec<usize>, usize)> {
    let mut config = Configuration::minimal(registry);
    let engine = AssessmentEngine::new(registry, load, goals, SearchOptions::default()).ok()?;
    loop {
        let a = engine.assess(&config).ok()?;
        if a.meets_goals() {
            return Some((config.as_slice().to_vec(), config.total_servers()));
        }
        if config.total_servers() >= budget {
            return None;
        }
        if !a.goals.waiting_time_met {
            let target = match &a.expected_waiting {
                Some(w) => {
                    let mut best = 0;
                    for x in 1..w.len() {
                        if w[x] > w[best] {
                            best = x;
                        }
                    }
                    best
                }
                None => {
                    let mut best = 0;
                    let mut util = f64::MIN;
                    for (id, t) in registry.iter() {
                        let u = load.request_rates[id.0] * t.service_time_mean
                            / config.as_slice()[id.0] as f64;
                        if u > util {
                            util = u;
                            best = id.0;
                        }
                    }
                    best
                }
            };
            config = config
                .with_added_replica(wfms_statechart::ServerTypeId(target))
                .ok()?;
        }
        if !a.goals.availability_met {
            // Availability-critical type from the same (now stale) assessment.
            let mut worst = 0;
            let mut worst_q = f64::MIN;
            for (id, t) in registry.iter() {
                let q = (t.failure_rate / (t.failure_rate + t.repair_rate))
                    .powi(a.replicas[id.0] as i32);
                if q > worst_q {
                    worst_q = q;
                    worst = id.0;
                }
            }
            config = config
                .with_added_replica(wfms_statechart::ServerTypeId(worst))
                .ok()?;
        }
    }
}

fn main() {
    wfms_bench::obs::start();
    let registry = paper_section52_registry();
    let analysis =
        analyze_workflow(&ep_workflow(), &registry, &AnalysisOptions::default()).expect("EP");
    // A heavy EP load so performance goals genuinely bind.
    let load = aggregate_load(
        &[WorkloadItem {
            analysis,
            arrival_rate: EP_DEFAULT_ARRIVAL_RATE * 3.0,
        }],
        &registry,
    )
    .expect("aggregates");
    let opts = SearchOptions::default();

    println!("EXP-C1: greedy vs exhaustive minimum-cost configuration (EP at 3x default load)\n");
    let mut table = Table::new(&[
        "wait goal (s)",
        "avail goal",
        "greedy Y",
        "greedy cost",
        "optimal cost",
        "eager cost",
        "greedy evals",
        "exhaustive evals",
    ]);

    let wait_goals = [0.6, 0.15, 0.03];
    let avail_goals = [0.999, 0.9999, 0.999_999];
    for &w in &wait_goals {
        for &a in &avail_goals {
            let goals = Goals::new(w / 60.0, a).expect("valid goals");
            let greedy =
                AssessmentEngine::new(&registry, &load, &goals, opts).and_then(|e| e.greedy());
            let optimal =
                AssessmentEngine::new(&registry, &load, &goals, opts).and_then(|e| e.exhaustive());
            let naive = eager_non_interleaved(&registry, &load, &goals, opts.max_total_servers);
            match (greedy, optimal) {
                (Ok(g), Ok(o)) => {
                    assert!(g.assessment.meets_goals());
                    table.row(vec![
                        format!("{w}"),
                        format!("{a}"),
                        format!("{:?}", g.replicas()),
                        g.cost().to_string(),
                        o.cost().to_string(),
                        naive
                            .map(|(_, c)| c.to_string())
                            .unwrap_or_else(|| "-".into()),
                        g.evaluations.to_string(),
                        o.evaluations.to_string(),
                    ]);
                }
                (g, o) => {
                    table.row(vec![
                        format!("{w}"),
                        format!("{a}"),
                        format!("{}", g.err().map(|e| e.to_string()).unwrap_or_default()),
                        "-".into(),
                        format!("{}", o.err().map(|e| e.to_string()).unwrap_or_default()),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
        }
    }
    table.print();
    println!(
        "\nThe interleaved greedy matches the exhaustive optimum on this grid\n\
         (within +1 server in the worst case) at a fraction of the evaluations;\n\
         the eager non-interleaved variant oversizes when both goals bind at once."
    );
    wfms_bench::obs::finish("exp_c1_greedy");
}
