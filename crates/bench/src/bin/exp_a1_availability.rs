//! EXP-A1 — Sec. 5.2 availability example.
//!
//! Reproduces the three numbers the paper states: ~71 h/year downtime for
//! the unreplicated system, ~10 s/year for 3-way replication, and under a
//! minute for the asymmetric (2,2,3) configuration. Cross-checks the CTMC
//! solve (LU and the paper's Gauss–Seidel) against the closed form.

use wfms_avail::{closed_form_unavailability, AvailabilityModel, MINUTES_PER_YEAR};
use wfms_bench::{human_downtime, Table};
use wfms_markov::ctmc::SteadyStateMethod;
use wfms_markov::linalg::GaussSeidelOptions;
use wfms_statechart::{paper_section52_registry, Configuration};

fn main() {
    wfms_bench::obs::start();
    let registry = paper_section52_registry();
    println!("EXP-A1: availability of the Sec. 5.2 scenario");
    println!("(λ = 1/month, 1/week, 1/day; MTTR = 10 min for all types)\n");

    let cases: [(&str, Vec<usize>, &str); 3] = [
        ("unreplicated", vec![1, 1, 1], "≈ 71 h/year"),
        ("3-way replication", vec![3, 3, 3], "≈ 10 s/year"),
        ("asymmetric (2,2,3)", vec![2, 2, 3], "< 1 min/year"),
    ];

    let mut table = Table::new(&[
        "configuration",
        "Y",
        "paper",
        "measured (LU)",
        "Gauss-Seidel Δ",
        "closed-form Δ",
    ]);
    for (name, replicas, paper) in cases {
        let config = Configuration::new(&registry, replicas).expect("valid");
        let model = AvailabilityModel::new(&registry, &config).expect("builds");
        let pi_lu = model.steady_state(SteadyStateMethod::Lu).expect("solves");
        let u_lu = model.unavailability(&pi_lu).expect("lengths match");
        let pi_gs = model
            .steady_state(SteadyStateMethod::GaussSeidel(GaussSeidelOptions::default()))
            .expect("solves");
        let u_gs = model.unavailability(&pi_gs).expect("lengths match");
        let u_closed = closed_form_unavailability(&registry, &config).expect("valid");
        table.row(vec![
            name.to_string(),
            format!("{config}"),
            paper.to_string(),
            human_downtime(u_lu),
            format!("{:+.2e}", (u_gs - u_lu) * MINUTES_PER_YEAR),
            format!("{:+.2e}", (u_closed - u_lu) * MINUTES_PER_YEAR),
        ]);
    }
    table.print();
    println!("\n(Δ columns: downtime difference in minutes/year versus the LU solve.)");
    wfms_bench::obs::finish("exp_a1_availability");
}
