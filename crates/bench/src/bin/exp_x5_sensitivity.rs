//! EXP-X5 (extension) — parameter sensitivity of the goal metrics.
//!
//! Which calibrated parameter (Sec. 7.1) deserves the most scrutiny?
//! Log-log elasticities of the worst expected waiting time and the
//! system unavailability for the EP scenario.

use wfms_bench::Table;
use wfms_config::{sensitivity, SensitivityOptions};
use wfms_perf::{aggregate_load, analyze_workflow, AnalysisOptions, WorkloadItem};
use wfms_statechart::{paper_section52_registry, Configuration};
use wfms_workloads::{ep_workflow, EP_DEFAULT_ARRIVAL_RATE};

fn main() {
    let registry = paper_section52_registry();
    let analysis =
        analyze_workflow(&ep_workflow(), &registry, &AnalysisOptions::default()).expect("EP");
    let load = aggregate_load(
        &[WorkloadItem {
            analysis,
            arrival_rate: EP_DEFAULT_ARRIVAL_RATE * 3.0,
        }],
        &registry,
    )
    .expect("aggregates");
    let config = Configuration::uniform(&registry, 2).expect("valid");

    println!("EXP-X5: goal-metric elasticities at {config} (EP at 3x default load, 5% step)\n");
    let entries =
        sensitivity(&registry, &config, &load, &SensitivityOptions::default()).expect("computes");
    let mut table = Table::new(&["parameter", "d ln(worst wait)", "d ln(unavailability)"]);
    let mut rows = entries.clone();
    rows.sort_by(|a, b| {
        b.waiting_elasticity
            .unwrap_or(0.0)
            .abs()
            .total_cmp(&a.waiting_elasticity.unwrap_or(0.0).abs())
    });
    for e in &rows {
        table.row(vec![
            e.label.clone(),
            e.waiting_elasticity
                .map(|v| format!("{v:+.3}"))
                .unwrap_or_else(|| "n/a".into()),
            format!("{:+.3}", e.unavailability_elasticity),
        ]);
    }
    table.print();
    println!(
        "\nReading: waiting is dominated by the engine's service time (queueing\n\
         amplification beyond elasticity 1) and by the load level; availability\n\
         is dominated by the application server's failure/repair rates, whose\n\
         elasticities mirror each other (U_x ≈ (λ/μ)^Y). Calibration effort\n\
         should go to the engine's service-time moments and the app server's\n\
         dependability statistics first."
    );
}
