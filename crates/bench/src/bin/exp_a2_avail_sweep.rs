//! EXP-A2 — availability sweep over the replication space.
//!
//! The full `Y ∈ {1,2,3}³` table of the Sec. 5.2 model, ordered by cost,
//! plus the repair-policy ablation (independent repair, the paper-faithful
//! default, versus one repairman per server type).

use wfms_avail::{AvailabilityModel, RepairPolicy};
use wfms_bench::{human_downtime, Table};
use wfms_markov::ctmc::SteadyStateMethod;
use wfms_statechart::{paper_section52_registry, Configuration};

fn main() {
    let registry = paper_section52_registry();
    println!("EXP-A2: availability across all Y in {{1,2,3}}^3 (Sec. 5 model)\n");

    let mut configs = Vec::new();
    for y1 in 1..=3usize {
        for y2 in 1..=3usize {
            for y3 in 1..=3usize {
                configs.push(vec![y1, y2, y3]);
            }
        }
    }
    configs.sort_by_key(|c| (c.iter().sum::<usize>(), c.clone()));

    let mut table = Table::new(&[
        "Y",
        "cost",
        "availability",
        "downtime (indep. repair)",
        "downtime (1 repairman/type)",
    ]);
    for replicas in configs {
        let config = Configuration::new(&registry, replicas).expect("valid");
        let independent =
            AvailabilityModel::with_policy(&registry, &config, RepairPolicy::Independent)
                .expect("builds");
        let pi = independent
            .steady_state(SteadyStateMethod::Lu)
            .expect("solves");
        let u_ind = independent.unavailability(&pi).expect("lengths");
        let single = AvailabilityModel::with_policy(
            &registry,
            &config,
            RepairPolicy::SingleRepairmanPerType,
        )
        .expect("builds");
        let pi_s = single.steady_state(SteadyStateMethod::Lu).expect("solves");
        let u_single = single.unavailability(&pi_s).expect("lengths");
        table.row(vec![
            format!("{config}"),
            config.total_servers().to_string(),
            format!("{:.8}", 1.0 - u_ind),
            human_downtime(u_ind),
            human_downtime(u_single),
        ]);
    }
    table.print();
    println!(
        "\nReading: replicas of the failure-prone application server buy the most\n\
         availability per added server; the repair policy only matters once\n\
         multiple replicas of one type can be down simultaneously."
    );
}
