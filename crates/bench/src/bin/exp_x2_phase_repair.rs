//! EXP-X2 (extension) — non-exponential repair times via phase-type
//! expansion (Sec. 5.1's "reasonably small set of exponential states").
//!
//! Sweeps the repair-time variability (SCV) at fixed mean for the
//! Sec. 5.2 server types under a single repair crew per type, and shows
//! the Y = 1 insensitivity alongside the multi-replica sensitivity.

use wfms_avail::{single_repairman_type_unavailability, system_unavailability_with_repair_phases};
use wfms_bench::{human_downtime, Table};
use wfms_markov::PhaseType;
use wfms_statechart::{paper_section52_registry, Configuration};

fn main() {
    println!("EXP-X2: repair-time distribution vs availability (single crew per type)\n");

    // Per-type sweep: application server (1/day failures), 10-minute mean
    // repair, replicas 1..3, SCV from near-deterministic to bursty.
    let lambda = 1.0 / 1_440.0;
    let mean_repair = 10.0;
    let mut table = Table::new(&[
        "repair SCV",
        "distribution",
        "Y=1 downtime",
        "Y=2 downtime",
        "Y=3 downtime",
    ]);
    for scv in [0.1, 0.25, 1.0, 4.0, 16.0] {
        let repair = PhaseType::fit(mean_repair, scv).expect("fits");
        let label = match &repair {
            PhaseType::Exponential { .. } => "exponential".to_string(),
            PhaseType::Erlang { k, .. } => format!("Erlang-{k}"),
            PhaseType::Hyperexponential { .. } => "hyper-exp".to_string(),
        };
        let mut row = vec![format!("{scv}"), label];
        for y in 1..=3usize {
            let u = single_repairman_type_unavailability(y, lambda, &repair).expect("solves");
            row.push(human_downtime(u));
        }
        table.row(row);
    }
    table.print();
    println!(
        "\nY = 1 is identical in every row (renewal-reward: only the mean repair\n\
         time matters); with replicas sharing one crew, variability hurts."
    );

    // Whole-system maintenance-window scenario.
    println!("\nMaintenance windows (near-deterministic 30-min downtimes) vs exponential,");
    println!("Sec. 5.2 registry, one crew per type:\n");
    let reg = paper_section52_registry();
    let mut table = Table::new(&["Y", "exponential repairs", "30-min windows (Erlang-10)"]);
    for y in [vec![1, 1, 1], vec![2, 2, 2], vec![2, 2, 3]] {
        let config = Configuration::new(&reg, y).expect("valid");
        let exp_repairs: Vec<PhaseType> = reg
            .iter()
            .map(|(_, t)| PhaseType::Exponential {
                rate: t.repair_rate,
            })
            .collect();
        let window_repairs: Vec<PhaseType> = reg
            .iter()
            .map(|_| PhaseType::fit(30.0, 0.1).expect("fits"))
            .collect();
        let u_exp =
            system_unavailability_with_repair_phases(&reg, &config, &exp_repairs).expect("solves");
        let u_win = system_unavailability_with_repair_phases(&reg, &config, &window_repairs)
            .expect("solves");
        table.row(vec![
            format!("{config}"),
            human_downtime(u_exp),
            human_downtime(u_win),
        ]);
    }
    table.print();
    println!(
        "\nTripling the mean repair time (10 -> 30 min maintenance windows)\n\
         roughly triples the unreplicated downtime but is damped by replication;\n\
         the near-deterministic duration partially offsets the longer mean for\n\
         replicated types."
    );
}
