//! EXP-X3 (extension) — search-method comparison and sparse scaling.
//!
//! Compares the paper's greedy heuristic, the exhaustive optimum, and the
//! simulated-annealing search (the paper's named "full-fledged
//! optimization" alternative) on the five-type enterprise scenario, then
//! demonstrates the sparse availability solver on state spaces far past
//! the dense cap.

use std::time::Instant;

use wfms_avail::{closed_form_unavailability, RepairPolicy, SparseAvailabilityModel};
use wfms_bench::Table;
use wfms_config::{AnnealingOptions, AssessmentEngine, Goals, SearchOptions};
use wfms_markov::linalg::GaussSeidelOptions;
use wfms_perf::{aggregate_load, analyze_workflow, AnalysisOptions, WorkloadItem};
use wfms_statechart::{Configuration, ServerType, ServerTypeKind, ServerTypeRegistry};
use wfms_workloads::{enterprise_mix, enterprise_registry};

fn main() {
    let registry = enterprise_registry();
    let mut items = Vec::new();
    for (spec, rate) in enterprise_mix() {
        let analysis =
            analyze_workflow(&spec, &registry, &AnalysisOptions::default()).expect("analyzes");
        items.push(WorkloadItem {
            analysis,
            arrival_rate: rate,
        });
    }
    let load = aggregate_load(&items, &registry).expect("aggregates");

    println!("EXP-X3: search methods on the 5-type enterprise scenario\n");
    let goals = Goals::new(0.01, 0.9999)
        .expect("valid")
        .with_type_waiting(4, 0.005) // tighter SLA on the ERP app server
        .expect("valid");
    let opts = SearchOptions::builder().max_total_servers(64).build();

    let mut table = Table::new(&["method", "Y", "cost", "evaluations", "wall time"]);
    let t0 = Instant::now();
    let greedy = AssessmentEngine::new(&registry, &load, &goals, opts)
        .expect("valid")
        .greedy()
        .expect("reachable");
    table.row(vec![
        "greedy (paper)".into(),
        format!("{:?}", greedy.replicas()),
        greedy.cost().to_string(),
        greedy.evaluations.to_string(),
        format!("{:.1?}", t0.elapsed()),
    ]);
    let t0 = Instant::now();
    let anneal_opts = AnnealingOptions {
        steps: 600,
        ..AnnealingOptions::default()
    };
    let annealed = AssessmentEngine::new(
        &registry,
        &load,
        &goals,
        SearchOptions::builder()
            .max_total_servers(anneal_opts.max_total_servers)
            .build(),
    )
    .expect("valid")
    .annealing(&anneal_opts)
    .expect("reachable");
    table.row(vec![
        "simulated annealing".into(),
        format!("{:?}", annealed.assessment.replicas),
        annealed.cost().to_string(),
        annealed.evaluations.to_string(),
        format!("{:.1?}", t0.elapsed()),
    ]);
    let t0 = Instant::now();
    let bnb = AssessmentEngine::new(&registry, &load, &goals, opts)
        .expect("valid")
        .branch_and_bound()
        .expect("reachable");
    table.row(vec![
        "branch & bound".into(),
        format!("{:?}", bnb.replicas()),
        bnb.cost().to_string(),
        bnb.evaluations.to_string(),
        format!("{:.1?}", t0.elapsed()),
    ]);
    let t0 = Instant::now();
    let optimal = AssessmentEngine::new(&registry, &load, &goals, opts)
        .expect("valid")
        .exhaustive()
        .expect("reachable");
    table.row(vec![
        "exhaustive".into(),
        format!("{:?}", optimal.replicas()),
        optimal.cost().to_string(),
        optimal.evaluations.to_string(),
        format!("{:.1?}", t0.elapsed()),
    ]);
    table.print();
    assert_eq!(bnb.cost(), optimal.cost(), "B&B is provably optimal");

    // Sparse availability scaling.
    println!("\nSparse availability solver past the dense cap (independent repair):\n");
    let mut table = Table::new(&[
        "k",
        "Y",
        "states",
        "transitions",
        "solve",
        "|Δ| vs closed form",
    ]);
    for (k, y) in [(6usize, 4usize), (8, 3), (8, 4), (10, 3)] {
        let mut reg = ServerTypeRegistry::new();
        for i in 0..k {
            reg.register(ServerType::with_exponential_service(
                format!("t{i}"),
                ServerTypeKind::ApplicationServer,
                1.0 / (1_440.0 * (1 + i % 3) as f64),
                0.1,
                0.01,
            ))
            .expect("valid");
        }
        let config = Configuration::uniform(&reg, y).expect("valid");
        let t0 = Instant::now();
        let model =
            SparseAvailabilityModel::new(&reg, &config, RepairPolicy::Independent).expect("builds");
        let pi = model
            .steady_state(GaussSeidelOptions {
                tolerance: 1e-10,
                max_iterations: 10_000,
                relaxation: 1.0,
            })
            .expect("converges");
        let elapsed = t0.elapsed();
        let u = model.unavailability(&pi).expect("lengths");
        let closed = closed_form_unavailability(&reg, &config).expect("valid");
        table.row(vec![
            k.to_string(),
            y.to_string(),
            model.state_space().len().to_string(),
            model.transitions().to_string(),
            format!("{elapsed:.1?}"),
            format!("{:.1e}", (u - closed).abs()),
        ]);
    }
    table.print();
}
