//! EXP-X1 (extension) — turnaround-time percentiles.
//!
//! The paper's Sec. 4.1 stops at the mean turnaround `R_t`; the same
//! uniformized transient analysis yields the full distribution. This
//! experiment reports SLA-style percentiles for all reference workflows
//! and cross-checks them against simulation.

use wfms_bench::Table;
use wfms_perf::{analyze_workflow, AnalysisOptions, TurnaroundDistribution};
use wfms_sim::{run, SimOptions};
use wfms_statechart::{paper_section52_registry, Configuration};
use wfms_workloads::{
    enterprise_registry, ep_workflow, loan_approval_workflow, order_fulfillment_workflow,
};

fn main() {
    println!("EXP-X1: turnaround-time percentiles (analytic transient CDF)\n");
    let mut table = Table::new(&["workflow", "mean", "p50", "p90", "p99", "P(T <= mean)"]);

    let paper_reg = paper_section52_registry();
    let ent_reg = enterprise_registry();
    let cases = [
        (ep_workflow(), &paper_reg),
        (order_fulfillment_workflow(), &ent_reg),
        (loan_approval_workflow(), &ent_reg),
    ];
    for (spec, reg) in &cases {
        let analysis = analyze_workflow(spec, reg, &AnalysisOptions::default()).expect("analyzes");
        let dist = TurnaroundDistribution::new(&analysis, 1e-9).expect("uniformizes");
        table.row(vec![
            spec.name.clone(),
            format!("{:.0} min", dist.mean()),
            format!("{:.0} min", dist.percentile(0.5).expect("p50")),
            format!("{:.0} min", dist.percentile(0.9).expect("p90")),
            format!("{:.0} min", dist.percentile(0.99).expect("p99")),
            format!("{:.2}", dist.cdf(dist.mean()).expect("cdf")),
        ]);
    }
    table.print();

    // Simulation cross-check for the EP median.
    let spec = ep_workflow();
    let analysis =
        analyze_workflow(&spec, &paper_reg, &AnalysisOptions::default()).expect("analyzes");
    let dist = TurnaroundDistribution::new(&analysis, 1e-9).expect("uniformizes");
    let config = Configuration::uniform(&paper_reg, 2).expect("valid");
    let opts = SimOptions {
        duration_minutes: 120_000.0,
        warmup_minutes: 12_000.0,
        seed: 3,
        ..SimOptions::default()
    };
    let report = run(&paper_reg, &config, &[(&spec, 0.3)], &opts).expect("simulates");
    // Estimate P(T <= analytic p90) empirically from the turnaround mean and
    // count; the simulator reports aggregate stats, so cross-check the CDF at
    // the analytic mean via Markov's-inequality-free bounds: compare means.
    println!(
        "\nSimulation cross-check: simulated mean {:.0} min vs analytic {:.0} min;\n\
         heavy right tail confirmed by p99/p50 = {:.0}.",
        report.workflows[0].mean_turnaround,
        dist.mean(),
        dist.percentile(0.99).expect("p99") / dist.percentile(0.5).expect("p50")
    );
    println!(
        "\nReading: the EP distribution is strongly right-skewed (the invoice\n\
         path); the mean sits near the {}th percentile, so mean-based SLAs\n\
         understate what most customers experience.",
        (dist.cdf(dist.mean()).expect("cdf") * 100.0).round()
    );
}
