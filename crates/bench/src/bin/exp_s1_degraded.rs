//! EXP-S1 — degraded-mode performance (Secs. 2 and 6): the waiting-time
//! vector `w^i` the performance model assigns to every system state of
//! the Sec. 5.2 scenario, i.e. the per-state rewards that feed the
//! performability MRM.

use wfms_avail::AvailabilityModel;
use wfms_bench::Table;
use wfms_markov::ctmc::SteadyStateMethod;
use wfms_perf::{aggregate_load, analyze_workflow, waiting_times, AnalysisOptions, WorkloadItem};
use wfms_statechart::{paper_section52_registry, Configuration};
use wfms_workloads::{ep_workflow, EP_DEFAULT_ARRIVAL_RATE};

fn main() {
    let registry = paper_section52_registry();
    let analysis =
        analyze_workflow(&ep_workflow(), &registry, &AnalysisOptions::default()).expect("EP");
    let load = aggregate_load(
        &[WorkloadItem {
            analysis,
            arrival_rate: EP_DEFAULT_ARRIVAL_RATE,
        }],
        &registry,
    )
    .expect("aggregates");
    let config = Configuration::new(&registry, vec![2, 2, 3]).expect("valid");
    let model = AvailabilityModel::new(&registry, &config).expect("builds");
    let pi = model.steady_state(SteadyStateMethod::Lu).expect("solves");

    println!(
        "EXP-S1: per-system-state waiting times w^i for {config} under the EP load\n\
         (every state of the availability CTMC; '-' = type down, 'sat' = saturated)\n"
    );
    let mut table = Table::new(&[
        "state X",
        "π_i",
        "w_comm (s)",
        "w_engine (s)",
        "w_app (s)",
        "operational",
    ]);
    let mut states: Vec<_> = model.distribution(&pi).expect("lengths").collect();
    states.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (state, prob) in states {
        let outcomes = waiting_times(&load, &registry, &state).expect("computes");
        let cell = |x: usize| match &outcomes[x] {
            wfms_perf::WaitingOutcome::Stable { waiting_time, .. } => {
                format!("{:.3}", waiting_time * 60.0)
            }
            wfms_perf::WaitingOutcome::Saturated { .. } => "sat".to_string(),
            wfms_perf::WaitingOutcome::Down => "-".to_string(),
        };
        table.row(vec![
            format!("{state:?}"),
            format!("{prob:.3e}"),
            cell(0),
            cell(1),
            cell(2),
            if state.iter().all(|&x| x > 0) {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    table.print();
    println!(
        "\nStates are ordered by probability; the fully-up state dominates, and\n\
         the first meaningful degradation is a single lost application server."
    );
}
