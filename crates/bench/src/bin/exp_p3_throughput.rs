//! EXP-P3 — maximum sustainable throughput versus replication (Sec. 4.3):
//! which server type saturates first, and how adding replicas to the
//! bottleneck moves the ceiling.

use wfms_bench::Table;
use wfms_perf::{
    aggregate_load, analyze_workflow, max_sustainable_throughput, AnalysisOptions, WorkloadItem,
};
use wfms_statechart::{paper_section52_registry, Configuration, ServerTypeId};
use wfms_workloads::{ep_workflow, EP_DEFAULT_ARRIVAL_RATE};

fn main() {
    let registry = paper_section52_registry();
    let spec = ep_workflow();
    let analysis = analyze_workflow(&spec, &registry, &AnalysisOptions::default()).expect("EP");
    let load = aggregate_load(
        &[WorkloadItem {
            analysis,
            arrival_rate: EP_DEFAULT_ARRIVAL_RATE,
        }],
        &registry,
    )
    .expect("aggregates");

    println!(
        "EXP-P3: max sustainable EP throughput vs configuration (ξ = {EP_DEFAULT_ARRIVAL_RATE}/min)\n"
    );
    let mut table = Table::new(&[
        "Y",
        "cost",
        "max throughput (wf/min)",
        "headroom vs current ξ",
        "bottleneck",
    ]);

    let mut configs: Vec<Vec<usize>> = vec![
        vec![1, 1, 1],
        vec![1, 2, 1],
        vec![2, 2, 1],
        vec![2, 2, 2],
        vec![2, 3, 2],
        vec![3, 3, 3],
        vec![3, 5, 3],
        vec![4, 6, 4],
    ];
    // Plus: grow only the bottleneck, showing the ceiling following it.
    let mut follow = vec![1usize, 1, 1];
    for _ in 0..3 {
        let config = Configuration::new(&registry, follow.clone()).expect("valid");
        let tp = max_sustainable_throughput(&load, &registry, &config).expect("tp");
        follow[tp.bottleneck.0] += 1;
        configs.push(follow.clone());
    }
    configs.sort_by_key(|c| (c.iter().sum::<usize>(), c.clone()));
    configs.dedup();

    for replicas in configs {
        let config = Configuration::new(&registry, replicas).expect("valid");
        let tp = max_sustainable_throughput(&load, &registry, &config).expect("tp");
        let bottleneck = registry.get(tp.bottleneck).expect("id").name.clone();
        table.row(vec![
            format!("{config}"),
            config.total_servers().to_string(),
            format!("{:.2}", tp.max_throughput),
            format!("{:.2}x", tp.max_scale_factor),
            bottleneck,
        ]);
    }
    table.print();

    let _ = ServerTypeId(0);
    println!(
        "\nThe workflow engine saturates first (EP induces the most requests\n\
         there); replicating any other type leaves the ceiling unchanged."
    );
}
