//! EXP-E1 (extension) — assessment-engine cache and parallel frontier.
//!
//! Runs the provably-minimum-cost exhaustive search over the
//! five-type `examples/specs/enterprise` scenario three ways:
//!
//! 1. **serial / cold** — a fresh [`AssessmentEngine`] with `jobs = 1`,
//!    equivalent to the deprecated free-function path;
//! 2. **parallel / cold** — a fresh engine with `jobs = 4`;
//! 3. **parallel / warm** — the same engine again, replaying every
//!    candidate from the degraded-state, birth–death-block, and
//!    availability-solution caches.
//!
//! Asserts the winning [`Assessment`] (and the full trace) is
//! bit-identical across all three runs — the engine's determinism
//! contract — and that the warm run beats the serial cold run by ≥ 2×,
//! then records the timings into `BENCH_engine.json`.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use wfms_config::{AssessmentEngine, Goals, SearchOptions, SearchResult};
use wfms_perf::{aggregate_load, analyze_workflow, AnalysisOptions, SystemLoad, WorkloadItem};
use wfms_statechart::{ServerTypeRegistry, WorkflowSpec};

/// One workflow entry of an on-disk `workload.json` (the CLI's format).
#[derive(Debug, Deserialize)]
struct WorkloadEntry {
    arrival_rate: f64,
    spec: WorkflowSpec,
}

#[derive(Debug, Deserialize)]
struct WorkloadFile {
    workflows: Vec<WorkloadEntry>,
}

/// The measurements stored per experiment in `BENCH_engine.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct EngineRecord {
    /// Worker threads of the parallel engine.
    jobs: usize,
    /// Serial cold-engine exhaustive search, milliseconds.
    serial_cold_ms: f64,
    /// Parallel cold-engine exhaustive search, milliseconds.
    parallel_cold_ms: f64,
    /// Parallel warm-engine (cache-replay) exhaustive search, ms.
    parallel_warm_ms: f64,
    /// `serial_cold_ms / parallel_warm_ms`.
    warm_speedup: f64,
    /// Candidates assessed by the search (identical across runs).
    evaluations: usize,
    /// The minimum-cost winner `Y` (identical across runs).
    winner: Vec<usize>,
    /// Cache hits / misses accumulated by the warm engine.
    cache_hits: u64,
    /// See `cache_hits`.
    cache_misses: u64,
}

/// Path of the merged engine-benchmark file: `$WFMS_BENCH_ENGINE` when
/// set, else `BENCH_engine.json` at the repository root (modeled on
/// `wfms_bench::obs::bench_obs_path`).
fn bench_engine_path() -> PathBuf {
    match std::env::var_os("WFMS_BENCH_ENGINE") {
        Some(p) => PathBuf::from(p),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json"),
    }
}

fn enterprise_inputs() -> (ServerTypeRegistry, SystemLoad) {
    let specs = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs/enterprise");
    let registry: ServerTypeRegistry = serde_json::from_str(
        &std::fs::read_to_string(specs.join("registry.json")).expect("registry.json"),
    )
    .expect("valid registry");
    let workload: WorkloadFile = serde_json::from_str(
        &std::fs::read_to_string(specs.join("workload.json")).expect("workload.json"),
    )
    .expect("valid workload");
    let mut items = Vec::new();
    for entry in workload.workflows {
        let analysis = analyze_workflow(&entry.spec, &registry, &AnalysisOptions::default())
            .expect("analyzes");
        items.push(WorkloadItem {
            analysis,
            arrival_rate: entry.arrival_rate,
        });
    }
    let load = aggregate_load(&items, &registry).expect("aggregates");
    (registry, load)
}

fn assert_identical(label: &str, a: &SearchResult, b: &SearchResult) {
    assert_eq!(
        a.assessment, b.assessment,
        "{label}: winning assessments diverge"
    );
    assert_eq!(a.trace, b.trace, "{label}: candidate traces diverge");
    assert_eq!(
        a.evaluations, b.evaluations,
        "{label}: evaluation counts diverge"
    );
}

fn main() {
    const JOBS: usize = 4;
    let (registry, load) = enterprise_inputs();
    let goals = Goals::new(0.01, 0.9999).expect("valid");

    println!("EXP-E1: assessment engine on examples/specs/enterprise\n");

    let serial_opts = SearchOptions::builder()
        .max_total_servers(64)
        .jobs(1)
        .build();
    let parallel_opts = SearchOptions::builder()
        .max_total_servers(64)
        .jobs(JOBS)
        .build();

    let t0 = Instant::now();
    let serial = AssessmentEngine::new(&registry, &load, &goals, serial_opts)
        .expect("engine")
        .exhaustive()
        .expect("reachable");
    let serial_cold_ms = t0.elapsed().as_secs_f64() * 1e3;

    let engine = AssessmentEngine::new(&registry, &load, &goals, parallel_opts).expect("engine");
    let t0 = Instant::now();
    let parallel_cold = engine.exhaustive().expect("reachable");
    let parallel_cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let parallel_warm = engine.exhaustive().expect("reachable");
    let parallel_warm_ms = t0.elapsed().as_secs_f64() * 1e3;

    assert_identical("serial vs parallel-cold", &serial, &parallel_cold);
    assert_identical("serial vs parallel-warm", &serial, &parallel_warm);

    let stats = engine.cache_stats();
    let warm_speedup = serial_cold_ms / parallel_warm_ms;
    println!(
        "  winner Y = {:?}, cost {}",
        serial.replicas(),
        serial.cost()
    );
    println!("  candidates assessed: {}", serial.evaluations);
    println!("  serial cold    : {serial_cold_ms:>9.2} ms");
    println!("  {JOBS}-way cold     : {parallel_cold_ms:>9.2} ms");
    println!(
        "  {JOBS}-way warm     : {parallel_warm_ms:>9.2} ms  ({warm_speedup:.1}x vs serial cold)"
    );
    println!(
        "  caches: {} states, {} solutions, {} blocks; {} hits / {} misses",
        stats.state_entries, stats.solution_entries, stats.block_entries, stats.hits, stats.misses
    );
    assert!(
        warm_speedup >= 2.0,
        "warm engine must beat the serial cold path by >= 2x, got {warm_speedup:.2}x"
    );

    let record = EngineRecord {
        jobs: JOBS,
        serial_cold_ms,
        parallel_cold_ms,
        parallel_warm_ms,
        warm_speedup,
        evaluations: serial.evaluations,
        winner: serial.replicas().to_vec(),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
    };
    let path = bench_engine_path();
    let mut all: BTreeMap<String, EngineRecord> = match std::fs::read_to_string(&path) {
        Ok(text) => serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{}: invalid BENCH_engine.json: {e}", path.display())),
        Err(_) => BTreeMap::new(),
    };
    all.insert("exp_e1_engine".to_string(), record);
    let text = serde_json::to_string_pretty(&all).expect("serializable");
    std::fs::write(&path, text + "\n").unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    println!("\n[engine] merged timings into {}", path.display());
}
