//! OBS-BASELINE — seeds `BENCH_obs.json` with stage timings and
//! iteration counts for the ep and enterprise reference scenarios, so
//! future PRs can diff solver behaviour against a known-good trajectory.

use wfms_bench::obs;
use wfms_core::config::Goals;
use wfms_core::perf::TurnaroundDistribution;
use wfms_core::{Configuration, ConfigurationTool, SearchOptions};
use wfms_statechart::paper_section52_registry;
use wfms_workloads::{enterprise_mix, enterprise_registry, ep_workflow, EP_SIM_ARRIVAL_RATE};

/// One full pass over the analysis stack, mirroring one `wfms profile`
/// run: per-workflow transient analysis, an engine-backed assessment, a
/// greedy search, a cache-replay re-assessment, and an ε-truncated
/// product-form pass. Keeping the stage *mix* identical to `wfms
/// profile` matters because `profile --baseline` gates on each stage's
/// **share** of total stage time — a baseline recorded over a different
/// mix would make the shares incomparable.
fn exercise(tool: &ConfigurationTool, goals: &Goals) {
    for (spec, _) in tool.workloads() {
        let analysis = tool.workflow_analysis(&spec.name).expect("analyzable");
        let dist = TurnaroundDistribution::new(&analysis, 1e-9).expect("uniformizable");
        dist.percentile(0.9).expect("percentile");
    }
    let config = Configuration::uniform(tool.registry(), 2).expect("valid");
    let base = SearchOptions {
        epsilon: 0.0,
        ..SearchOptions::default()
    };
    let engine = tool.engine(goals, base).expect("engine");
    engine.assess(&config).expect("assessable");
    match engine.greedy() {
        Ok(_)
        | Err(wfms_core::ConfigError::GoalsUnreachable { .. })
        | Err(wfms_core::ConfigError::LoadUnsustainable { .. }) => {}
        Err(e) => panic!("greedy search failed: {e}"),
    }
    engine.assess(&config).expect("assessable");
    let truncated = tool
        .engine(
            goals,
            SearchOptions {
                epsilon: 1e-4,
                ..base
            },
        )
        .expect("engine");
    truncated.assess(&config).expect("assessable");
}

fn main() {
    let goals = Goals::new(0.05, 0.9999).expect("valid goals");

    let mut ep = ConfigurationTool::new(paper_section52_registry());
    ep.add_workflow(ep_workflow(), EP_SIM_ARRIVAL_RATE)
        .expect("EP registers");
    obs::start();
    exercise(&ep, &goals);
    let record = obs::finish("ep");
    println!(
        "ep: {} stages, {} counters",
        record.stages.len(),
        record.counters.len()
    );

    let mut enterprise = ConfigurationTool::new(enterprise_registry());
    for (spec, rate) in enterprise_mix() {
        enterprise.add_workflow(spec, rate).expect("registers");
    }
    obs::start();
    exercise(&enterprise, &goals);
    let record = obs::finish("enterprise");
    println!(
        "enterprise: {} stages, {} counters",
        record.stages.len(),
        record.counters.len()
    );
}
