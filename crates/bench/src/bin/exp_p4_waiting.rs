//! EXP-P4 — waiting time of service requests versus utilization
//! (Sec. 4.4): the M/G/1 Pollaczek–Khinchine prediction against
//! simulation, in the Poisson regime the model assumes, plus the
//! shared-machine (co-location) variant.

use wfms_bench::Table;
use wfms_perf::{waiting_times, waiting_times_colocated, ColocationGroup, SystemLoad};
use wfms_queueing::{Mg1, ServiceMoments};
use wfms_sim::{run, SimOptions};
use wfms_statechart::{
    ActivityKind, ActivitySpec, ChartBuilder, Configuration, EcaRule, ServerType, ServerTypeId,
    ServerTypeKind, ServerTypeRegistry, WorkflowSpec,
};

/// One server type with a 0.05-minute (3 s) exponential service time.
fn registry() -> ServerTypeRegistry {
    let mut reg = ServerTypeRegistry::new();
    for (name, kind) in [
        ("comm", ServerTypeKind::Communication),
        ("engine", ServerTypeKind::WorkflowEngine),
        ("app", ServerTypeKind::ApplicationServer),
    ] {
        reg.register(ServerType::with_exponential_service(
            name, kind, 1e-6, 0.1, 0.05,
        ))
        .expect("valid");
    }
    reg
}

/// One-activity workflow inducing one request per type per instance.
fn spec() -> WorkflowSpec {
    let chart = ChartBuilder::new("W")
        .initial("i")
        .activity_state("a", "A")
        .final_state("f")
        .transition("i", "a", 1.0, EcaRule::default())
        .transition("a", "f", 1.0, EcaRule::default())
        .build()
        .expect("builds");
    WorkflowSpec::new(
        "W",
        chart,
        [ActivitySpec::new(
            "A",
            ActivityKind::Automated,
            5.0,
            vec![1.0, 1.0, 1.0],
        )],
    )
}

fn main() {
    let reg = registry();
    let wf = spec();
    println!("EXP-P4: M/G/1 waiting time vs utilization (engine type, 1 replica)\n");

    let mut table = Table::new(&["rho", "PK model (s)", "simulated (s)", "Δ"]);
    for rho in [0.3, 0.5, 0.7, 0.8, 0.9] {
        let xi = rho / 0.05; // one engine request per instance
        let config = Configuration::new(&reg, vec![20, 1, 20]).expect("valid");
        let opts = SimOptions {
            duration_minutes: 40_000.0,
            warmup_minutes: 4_000.0,
            seed: 404,
            ..SimOptions::default()
        };
        let report = run(&reg, &config, &[(&wf, xi)], &opts).expect("simulates");
        let model = Mg1::new(xi, ServiceMoments::exponential(0.05).expect("valid"))
            .expect("valid")
            .mean_waiting_time()
            .expect("stable");
        let sim = report.server_types[1].mean_waiting;
        table.row(vec![
            format!("{rho:.1}"),
            format!("{:.3}", model * 60.0),
            format!("{:.3}", sim * 60.0),
            format!("{:+.1}%", 100.0 * (sim - model) / model),
        ]);
    }
    table.print();

    // Shared-machine generalization: engine and comm on one computer.
    println!("\nCo-location (Sec. 4.4 generalized case), rho_total = 0.8 on one machine:");
    let load = SystemLoad {
        request_rates: vec![8.0, 8.0, 0.1],
        total_arrival_rate: 1.0,
        active_instances: vec![],
    };
    let dedicated = waiting_times(&load, &reg, &[1, 1, 1]).expect("computes");
    let shared = waiting_times_colocated(
        &load,
        &reg,
        &[ColocationGroup {
            types: vec![ServerTypeId(0), ServerTypeId(1)],
            replicas: 1,
        }],
    )
    .expect("computes");
    println!(
        "  dedicated machines : comm wait {:.3} s, engine wait {:.3} s",
        dedicated[0].waiting_time().unwrap_or(f64::NAN) * 60.0,
        dedicated[1].waiting_time().unwrap_or(f64::NAN) * 60.0
    );
    println!(
        "  one shared machine : common wait {:.3} s (utilization doubles)",
        shared[0].waiting_time().unwrap_or(f64::NAN) * 60.0
    );
}
