//! EXP-P2 — expected service requests per instance (Sec. 4.2): the
//! paper's truncated-uniformization Markov reward analysis versus the
//! exact fundamental-matrix route versus simulation, plus the z_max
//! truncation study.

use wfms_bench::Table;
use wfms_markov::TruncationOptions;
use wfms_perf::{analyze_workflow, AnalysisOptions, RequestMethod};
use wfms_sim::{run, SimOptions};
use wfms_statechart::{paper_section52_registry, Configuration};
use wfms_workloads::ep_workflow;

fn main() {
    let registry = paper_section52_registry();
    let spec = ep_workflow();
    println!("EXP-P2: expected requests r_x per EP instance\n");

    let exact = analyze_workflow(&spec, &registry, &AnalysisOptions::default()).expect("exact");
    let uni99 = analyze_workflow(
        &spec,
        &registry,
        &AnalysisOptions {
            request_method: RequestMethod::Uniformized(TruncationOptions::default()),
        },
    )
    .expect("uniformized");

    let config = Configuration::uniform(&registry, 2).expect("valid");
    let opts = SimOptions {
        duration_minutes: 150_000.0,
        warmup_minutes: 15_000.0,
        seed: 77,
        ..SimOptions::default()
    };
    let report = run(&registry, &config, &[(&spec, 0.3)], &opts).expect("simulates");

    let mut table = Table::new(&[
        "server type",
        "exact",
        "uniformized (q=0.99)",
        "simulated",
        "sim Δ vs exact",
    ]);
    for (x, (_, t)) in registry.iter().enumerate() {
        let sim = report.workflows[0].mean_requests[x];
        table.row(vec![
            t.name.clone(),
            format!("{:.4}", exact.expected_requests[x]),
            format!("{:.4}", uni99.expected_requests[x]),
            format!("{sim:.4}"),
            format!(
                "{:+.2}%",
                100.0 * (sim - exact.expected_requests[x]) / exact.expected_requests[x]
            ),
        ]);
    }
    table.print();

    // Ablation: how the absorption quantile (and hence z_max) affects the
    // truncated value (always an under-approximation).
    println!(
        "\nTruncation study (engine requests; exact = {:.5}):",
        exact.expected_requests[1]
    );
    let mut trunc = Table::new(&["quantile", "r_engine (truncated)", "error", "z_max cap hit"]);
    for quantile in [0.5, 0.9, 0.99, 0.999, 0.999_99] {
        let a = analyze_workflow(
            &spec,
            &registry,
            &AnalysisOptions {
                request_method: RequestMethod::Uniformized(TruncationOptions {
                    quantile,
                    hard_cap: 1_000_000,
                }),
            },
        )
        .expect("analyzes");
        let err = exact.expected_requests[1] - a.expected_requests[1];
        trunc.row(vec![
            format!("{quantile}"),
            format!("{:.5}", a.expected_requests[1]),
            format!("{err:.2e}"),
            "no".to_string(),
        ]);
    }
    trunc.print();
    println!(
        "\nThe paper's 99% default already captures the load to within a fraction of a request."
    );
}
