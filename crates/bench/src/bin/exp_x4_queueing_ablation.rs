//! EXP-X4 (extension) — queueing-architecture ablation.
//!
//! The paper models each server type's `Y_x` replicas as `Y_x` separate
//! M/G/1 queues fed by a load balancer (Sec. 4.4). The alternative —
//! one shared queue per type, any idle replica serves next (M/M/c) —
//! is common in middleware with a central dispatcher. This experiment
//! quantifies the pooling gain analytically AND with the simulator's two
//! queue disciplines, then shows the heterogeneous-machines extension.

use wfms_bench::Table;
use wfms_perf::{waiting_times_heterogeneous, SystemLoad};
use wfms_queueing::{Mg1, Mmc, ServiceMoments};
use wfms_sim::{run, LoadBalancing, QueueDiscipline, SimOptions};
use wfms_statechart::{
    ActivityKind, ActivitySpec, ChartBuilder, Configuration, EcaRule, ServerType, ServerTypeKind,
    ServerTypeRegistry, WorkflowSpec,
};

fn registry() -> ServerTypeRegistry {
    let mut reg = ServerTypeRegistry::new();
    for (name, kind) in [
        ("comm", ServerTypeKind::Communication),
        ("engine", ServerTypeKind::WorkflowEngine),
        ("app", ServerTypeKind::ApplicationServer),
    ] {
        reg.register(ServerType::with_exponential_service(
            name, kind, 1e-6, 0.1, 0.05,
        ))
        .expect("valid");
    }
    reg
}

fn spec() -> WorkflowSpec {
    let chart = ChartBuilder::new("W")
        .initial("i")
        .activity_state("a", "A")
        .final_state("f")
        .transition("i", "a", 1.0, EcaRule::default())
        .transition("a", "f", 1.0, EcaRule::default())
        .build()
        .expect("builds");
    WorkflowSpec::new(
        "W",
        chart,
        [ActivitySpec::new(
            "A",
            ActivityKind::Automated,
            5.0,
            vec![1.0, 0.1, 0.1],
        )],
    )
}

fn main() {
    let reg = registry();
    let wf = spec();
    println!("EXP-X4: partitioned per-replica queues (paper) vs shared type queue (M/M/c)\n");
    println!("Comm type, rho = 0.8 per replica, exponential service (3 s mean):\n");

    let mut table = Table::new(&[
        "replicas",
        "M/G/1 model (s)",
        "sim random split (s)",
        "sim round-robin (s)",
        "M/M/c model (s)",
        "sim shared (s)",
        "pooling gain",
    ]);
    for c in [1usize, 2, 4, 8] {
        let xi = 0.8 * c as f64 / 0.05;
        let config = Configuration::new(&reg, vec![c, 20, 20]).expect("valid");
        let base = SimOptions {
            duration_minutes: 30_000.0,
            warmup_minutes: 3_000.0,
            seed: 1234,
            ..SimOptions::default()
        };
        let part_random = run(
            &reg,
            &config,
            &[(&wf, xi)],
            &SimOptions {
                load_balancing: LoadBalancing::Random,
                ..base
            },
        )
        .expect("simulates");
        let part_rr = run(&reg, &config, &[(&wf, xi)], &base).expect("simulates");
        let shared = run(
            &reg,
            &config,
            &[(&wf, xi)],
            &SimOptions {
                queue_discipline: QueueDiscipline::SharedQueue,
                ..base
            },
        )
        .expect("simulates");
        let w_mg1 = Mg1::new(
            xi / c as f64,
            ServiceMoments::exponential(0.05).expect("valid"),
        )
        .expect("valid")
        .mean_waiting_time()
        .expect("stable");
        let w_mmc = Mmc::new(xi, 0.05, c)
            .expect("valid")
            .mean_waiting_time()
            .expect("stable");
        table.row(vec![
            c.to_string(),
            format!("{:.3}", w_mg1 * 60.0),
            format!("{:.3}", part_random.server_types[0].mean_waiting * 60.0),
            format!("{:.3}", part_rr.server_types[0].mean_waiting * 60.0),
            format!("{:.3}", w_mmc * 60.0),
            format!("{:.3}", shared.server_types[0].mean_waiting * 60.0),
            format!("{:.1}x", w_mg1 / w_mmc),
        ]);
    }
    table.print();
    println!(
        "\nReading: the M/G/1 model is exact for RANDOM splitting (which keeps the\n\
         per-replica streams Poisson) and conservative for round-robin (whose\n\
         deterministic alternation thins arrivals into smoother Erlang-c gaps);\n\
         a shared dispatcher queue (M/M/c) serves the same load with multi-x\n\
         lower waits at high replication — an architectural lever the models\n\
         make visible."
    );

    // Heterogeneous machines (Sec. 4.4's closing remark).
    println!("\nHeterogeneous machines (same comm type, l = 24/min, total capacity 2x nominal):\n");
    let load = SystemLoad {
        request_rates: vec![24.0, 0.1, 0.1],
        total_arrival_rate: 1.0,
        active_instances: vec![],
    };
    let mut table = Table::new(&["machine speeds", "per-replica util", "expected wait (s)"]);
    for speeds in [vec![1.0, 1.0], vec![1.5, 0.5], vec![2.0]] {
        let out = waiting_times_heterogeneous(&load, &reg, &[speeds.clone(), vec![1.0], vec![1.0]])
            .expect("computes");
        let (util, wait) = match out[0] {
            wfms_perf::WaitingOutcome::Stable {
                utilization,
                waiting_time,
            } => (
                format!("{utilization:.3}"),
                format!("{:.3}", waiting_time * 60.0),
            ),
            _ => ("-".into(), "saturated".into()),
        };
        table.row(vec![format!("{speeds:?}"), util, wait]);
    }
    table.print();
    println!(
        "\nEqual total capacity is not equal performance: one double-speed machine\n\
         halves the wait versus two nominal ones. Under capacity-proportional\n\
         routing a fast+slow pair ties two nominal machines exactly (the\n\
         weighted wait depends only on the machine count and total speed) —\n\
         the per-computer service-time adjustment the paper's closing remark\n\
         calls for, with a non-obvious consequence."
    );
}
