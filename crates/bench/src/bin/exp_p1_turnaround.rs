//! EXP-P1 — workflow turnaround times: first-passage analysis (Sec. 4.1)
//! versus discrete-event simulation, for all four reference workflows.

use wfms_bench::Table;
use wfms_perf::{analyze_workflow, AnalysisOptions};
use wfms_sim::{run, SimOptions};
use wfms_statechart::{Configuration, ServerTypeRegistry, WorkflowSpec};
use wfms_workloads::{
    enterprise_registry, ep_workflow, insurance_claim_workflow, loan_approval_workflow,
    order_fulfillment_workflow,
};

fn case(registry: &ServerTypeRegistry, spec: &WorkflowSpec, arrival_rate: f64, table: &mut Table) {
    let analysis = analyze_workflow(spec, registry, &AnalysisOptions::default())
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    let config = Configuration::uniform(registry, 3).expect("valid");
    let opts = SimOptions {
        duration_minutes: 150_000.0,
        warmup_minutes: 15_000.0,
        seed: 101,
        ..SimOptions::default()
    };
    let report = run(registry, &config, &[(spec, arrival_rate)], &opts).expect("simulates");
    let wf = &report.workflows[0];
    let delta = 100.0 * (wf.mean_turnaround - analysis.mean_turnaround) / analysis.mean_turnaround;
    table.row(vec![
        spec.name.clone(),
        format!("{:.1}", analysis.mean_turnaround),
        format!("{:.1}", wf.mean_turnaround),
        format!("{delta:+.1}%"),
        wf.completed.to_string(),
    ]);
}

fn main() {
    wfms_bench::obs::start();
    println!("EXP-P1: mean turnaround R_t — analytic first passage vs simulation\n");
    let mut table = Table::new(&[
        "workflow",
        "analytic (min)",
        "simulated (min)",
        "Δ",
        "instances",
    ]);

    let paper_reg = wfms_statechart::paper_section52_registry();
    case(&paper_reg, &ep_workflow(), 0.2, &mut table);

    let ent_reg = enterprise_registry();
    case(&ent_reg, &order_fulfillment_workflow(), 0.5, &mut table);
    case(&ent_reg, &insurance_claim_workflow(), 0.1, &mut table);
    case(&ent_reg, &loan_approval_workflow(), 0.1, &mut table);

    table.print();
    println!(
        "\nResidual deltas trace to the max-of-means approximation for parallel\n\
         subworkflows (a documented lower bound, Sec. 4.2.2): workflows with a\n\
         parallel state (EP, InsuranceClaim) simulate slightly above the model."
    );
    wfms_bench::obs::finish("exp_p1_turnaround");
}
