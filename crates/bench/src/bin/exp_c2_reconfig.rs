//! EXP-C2 — reconfiguration under load growth (Sec. 7.1): as the EP
//! arrival rate rises, the recommended minimum-cost configuration and
//! its predicted metrics move with it.

use wfms_bench::Table;
use wfms_config::{AssessmentEngine, Goals, SearchOptions};
use wfms_perf::{aggregate_load, analyze_workflow, AnalysisOptions, WorkloadItem};
use wfms_statechart::paper_section52_registry;
use wfms_workloads::ep_workflow;

fn main() {
    let registry = paper_section52_registry();
    let goals = Goals::new(0.05, 0.9999).expect("valid");
    println!("EXP-C2: recommended configuration vs EP arrival rate");
    println!("(goals: wait ≤ 3 s, availability ≥ 99.99 %)\n");

    let mut table = Table::new(&[
        "ξ (wf/min)",
        "engine demand (servers)",
        "recommended Y",
        "cost",
        "wait (s)",
        "downtime/yr",
    ]);
    for xi in [1.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0] {
        let analysis =
            analyze_workflow(&ep_workflow(), &registry, &AnalysisOptions::default()).expect("EP");
        let demand = xi
            * analysis.expected_requests[1]
            * registry
                .get(wfms_statechart::ServerTypeId(1))
                .expect("id")
                .service_time_mean;
        let load = aggregate_load(
            &[WorkloadItem {
                analysis,
                arrival_rate: xi,
            }],
            &registry,
        )
        .expect("aggregates");
        match AssessmentEngine::new(
            &registry,
            &load,
            &goals,
            SearchOptions::builder().max_total_servers(128).build(),
        )
        .and_then(|e| e.greedy())
        {
            Ok(rec) => {
                let a = &rec.assessment;
                table.row(vec![
                    format!("{xi}"),
                    format!("{demand:.2}"),
                    format!("{:?}", a.replicas),
                    a.cost.to_string(),
                    format!("{:.2}", a.max_expected_waiting.unwrap_or(f64::NAN) * 60.0),
                    format!("{:.1} min", a.downtime_minutes_per_year),
                ]);
            }
            Err(e) => table.row(vec![
                format!("{xi}"),
                format!("{demand:.2}"),
                format!("{e}"),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    table.print();
    println!(
        "\nThe replication vector tracks the per-type demand: the workflow engine\n\
         (highest requests per instance) grows fastest, the reliable communication\n\
         server only when either its load or the availability goal requires it."
    );
}
