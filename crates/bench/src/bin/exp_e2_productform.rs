//! EXP-E2 (extension) — product-form availability + ε-truncated
//! performability against the exhaustive full-state-space path.
//!
//! Assesses the five-type `examples/specs/enterprise` scenario at an
//! inflated replication `Y = (6,6,6,6,6)` — `∏(Y_x + 1) = 7^5 = 16807`
//! availability states, past the dense-LU cap, so the full path solves
//! the flat chain with sparse Gauss–Seidel and folds the performability
//! reward over **every** state. The product-form path computes the exact
//! closed-form marginals in `O(Σ Y_x)` and consumes states in descending
//! probability until `1 − ε` of the mass is covered.
//!
//! Asserts, per the PR's acceptance bar:
//!
//! 1. product + ε = 1e-9 is ≥ 10× faster than the full path;
//! 2. every per-type waiting-time delta is within the truncation
//!    report's own error bound (plus iterative-solver slack);
//! 3. with ε = 0 on a default-sized configuration the engine answer is
//!    **bit-identical** to the default dense path;
//!
//! then records the timings into `BENCH_productform.json`.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use wfms_avail::AvailBackend;
use wfms_config::{AssessmentEngine, Goals, SearchOptions};
use wfms_perf::{aggregate_load, analyze_workflow, AnalysisOptions, SystemLoad, WorkloadItem};
use wfms_statechart::{Configuration, ServerTypeRegistry, WorkflowSpec};

/// One workflow entry of an on-disk `workload.json` (the CLI's format).
#[derive(Debug, Deserialize)]
struct WorkloadEntry {
    arrival_rate: f64,
    spec: WorkflowSpec,
}

#[derive(Debug, Deserialize)]
struct WorkloadFile {
    workflows: Vec<WorkloadEntry>,
}

/// The measurements stored per experiment in `BENCH_productform.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ProductFormRecord {
    /// The inflated replication vector.
    replicas: Vec<usize>,
    /// `∏(Y_x + 1)`: full availability-state count.
    full_states: usize,
    /// States the ε-truncated fold actually evaluated.
    evaluated_states: usize,
    /// The truncation ε.
    epsilon: f64,
    /// Probability mass covered before stopping.
    covered_mass: f64,
    /// Full exhaustive path (sparse Gauss–Seidel + full fold), ms.
    full_ms: f64,
    /// Product-form + ε-truncated path, ms.
    product_ms: f64,
    /// `full_ms / product_ms`.
    speedup: f64,
    /// Largest per-type waiting-time delta against the full path, min.
    max_waiting_delta: f64,
    /// Largest truncation error bound reported, min.
    max_error_bound: f64,
}

/// Path of the merged product-form benchmark file:
/// `$WFMS_BENCH_PRODUCTFORM` when set, else `BENCH_productform.json` at
/// the repository root.
fn bench_productform_path() -> PathBuf {
    match std::env::var_os("WFMS_BENCH_PRODUCTFORM") {
        Some(p) => PathBuf::from(p),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_productform.json"),
    }
}

fn enterprise_inputs() -> (ServerTypeRegistry, SystemLoad) {
    let specs = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs/enterprise");
    let registry: ServerTypeRegistry = serde_json::from_str(
        &std::fs::read_to_string(specs.join("registry.json")).expect("registry.json"),
    )
    .expect("valid registry");
    let workload: WorkloadFile = serde_json::from_str(
        &std::fs::read_to_string(specs.join("workload.json")).expect("workload.json"),
    )
    .expect("valid workload");
    let mut items = Vec::new();
    for entry in workload.workflows {
        let analysis = analyze_workflow(&entry.spec, &registry, &AnalysisOptions::default())
            .expect("analyzes");
        items.push(WorkloadItem {
            analysis,
            arrival_rate: entry.arrival_rate,
        });
    }
    let load = aggregate_load(&items, &registry).expect("aggregates");
    (registry, load)
}

fn main() {
    const EPSILON: f64 = 1e-9;
    let (registry, load) = enterprise_inputs();
    let goals = Goals::new(0.01, 0.9999).expect("valid");
    let replicas = vec![6usize; registry.len()];
    let config = Configuration::new(&registry, replicas.clone()).expect("in range");
    let full_states: usize = replicas.iter().map(|y| y + 1).product();
    assert!(
        full_states >= 10_000,
        "the scenario must be big enough to be worth pruning"
    );

    println!("EXP-E2: product-form availability on examples/specs/enterprise");
    println!("  Y = {replicas:?}: {full_states} availability states\n");

    // Full path: Auto with ε = 0 resolves past the dense cap to the
    // sparse Gauss–Seidel solve and folds over all states.
    let full_engine =
        AssessmentEngine::new(&registry, &load, &goals, SearchOptions::default()).expect("engine");
    let t0 = Instant::now();
    let full = full_engine.assess(&config).expect("assessable");
    let full_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(
        full.truncation.is_none(),
        "the exhaustive path must not report truncation"
    );

    // Product path: Auto with ε > 0 resolves to the product form.
    let product_opts = SearchOptions::builder().epsilon(EPSILON).build();
    let product_engine =
        AssessmentEngine::new(&registry, &load, &goals, product_opts).expect("engine");
    let t0 = Instant::now();
    let truncated = product_engine.assess(&config).expect("assessable");
    let product_ms = t0.elapsed().as_secs_f64() * 1e3;
    let report = truncated
        .truncation
        .clone()
        .expect("the product path must report truncation");
    let evaluated_states = full_states - report.states_skipped;
    let speedup = full_ms / product_ms;

    println!("  full (sparse GS + exhaustive fold): {full_ms:>9.2} ms");
    println!(
        "  product + ε = {EPSILON:.0e}           : {product_ms:>9.2} ms  ({speedup:.1}x, \
         {evaluated_states}/{full_states} states, mass {:.12})",
        report.covered_mass
    );

    // Availability is exact on both paths (closed product form vs an
    // iterative solve of the same chain).
    let avail_delta = (full.availability - truncated.availability).abs();
    println!("  |Δ availability| = {avail_delta:.3e}");
    assert!(avail_delta < 1e-9, "availability diverged: {avail_delta:e}");

    // Waiting times stay within the report's own error bound; the full
    // path carries iterative-solver noise, hence the small slack.
    let full_w = full.expected_waiting.as_ref().expect("serving states");
    let trunc_w = truncated.expected_waiting.as_ref().expect("serving states");
    let mut max_waiting_delta = 0.0f64;
    for (x, (a, b)) in full_w.iter().zip(trunc_w).enumerate() {
        let delta = (a - b).abs();
        max_waiting_delta = max_waiting_delta.max(delta);
        assert!(
            delta <= report.waiting_error_bounds[x] + 1e-9,
            "type {x}: waiting delta {delta:e} exceeds bound {:e}",
            report.waiting_error_bounds[x]
        );
    }
    println!(
        "  max |ΔW| = {max_waiting_delta:.3e} min (bound {:.3e} min)",
        report.max_error_bound()
    );
    assert!(
        speedup >= 10.0,
        "product-form path must be >= 10x faster, got {speedup:.2}x"
    );

    // ε = 0 bit-identity on a default-sized configuration (dense both
    // ways): the new options must not perturb a single bit.
    let small = Configuration::uniform(&registry, 2).expect("in range");
    let zero_opts = SearchOptions::builder()
        .epsilon(0.0)
        .avail_backend(AvailBackend::Auto)
        .build();
    let zero_engine = AssessmentEngine::new(&registry, &load, &goals, zero_opts).expect("engine");
    let default_engine =
        AssessmentEngine::new(&registry, &load, &goals, SearchOptions::default()).expect("engine");
    assert_eq!(
        zero_engine.assess(&small).expect("assessable"),
        default_engine.assess(&small).expect("assessable"),
        "ε = 0 must be bit-identical to the default path"
    );
    println!("  ε = 0 bit-identity on Y = (2,2,2,2,2): ok");

    let record = ProductFormRecord {
        replicas,
        full_states,
        evaluated_states,
        epsilon: EPSILON,
        covered_mass: report.covered_mass,
        full_ms,
        product_ms,
        speedup,
        max_waiting_delta,
        max_error_bound: report.max_error_bound(),
    };
    let path = bench_productform_path();
    let mut all: BTreeMap<String, ProductFormRecord> = match std::fs::read_to_string(&path) {
        Ok(text) => serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{}: invalid BENCH_productform.json: {e}", path.display())),
        Err(_) => BTreeMap::new(),
    };
    all.insert("exp_e2_productform".to_string(), record);
    let text = serde_json::to_string_pretty(&all).expect("serializable");
    std::fs::write(&path, text + "\n").unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    println!("\n[productform] merged timings into {}", path.display());
}
