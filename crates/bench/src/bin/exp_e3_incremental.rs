//! EXP-E3 (extension) — incremental delta assessment and adaptive-ε
//! screening against the from-scratch greedy search.
//!
//! Runs the five-type `examples/specs/enterprise` greedy search three
//! ways at identical goals:
//!
//! * **C — baseline**: the PR 8 semantics (`incremental = false`,
//!   no screen); every candidate pays a full product-form solve and an
//!   exact ε-truncated fold.
//! * **B — incremental**: `incremental = true`, no screen. One-replica
//!   moves patch the moved type's birth–death marginal into the
//!   incumbent's cached solution. Asserted **bit-identical** to C —
//!   winner, full trace, and the decision journal, at `jobs ∈ {1, 8}`.
//! * **A — screened**: incremental + `--rank-moves` +
//!   `--screen-epsilon`. Steps whose infeasibility the loose bounds
//!   *prove* skip the exact assessment entirely. Asserted to land on
//!   the same winner with a bitwise-equal winning assessment, and to be
//!   ≥ 3× faster than C wall-clock.
//!
//! Records the timings into `BENCH_incremental.json`
//! (`$WFMS_BENCH_INCREMENTAL` overrides the path).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use wfms_config::{journal, AssessmentEngine, Goals, SearchOptions, SearchResult};
use wfms_perf::{aggregate_load, analyze_workflow, AnalysisOptions, SystemLoad, WorkloadItem};
use wfms_statechart::{ServerTypeRegistry, WorkflowSpec};

/// One workflow entry of an on-disk `workload.json` (the CLI's format).
#[derive(Debug, Deserialize)]
struct WorkloadEntry {
    arrival_rate: f64,
    spec: WorkflowSpec,
}

#[derive(Debug, Deserialize)]
struct WorkloadFile {
    workflows: Vec<WorkloadEntry>,
}

/// The measurements stored per experiment in `BENCH_incremental.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct IncrementalRecord {
    /// The recommended winner (identical across all three legs).
    winner: Vec<usize>,
    /// Exact assessments the baseline paid.
    baseline_evaluations: usize,
    /// Exact assessments the screened leg paid.
    screened_evaluations: usize,
    /// Candidates the screen proved infeasible without an assessment.
    screened_out: usize,
    /// The screening tolerance of leg A.
    screen_epsilon: f64,
    /// Baseline (non-incremental) greedy, ms.
    baseline_ms: f64,
    /// Incremental greedy (bit-identical results), ms.
    incremental_ms: f64,
    /// Screened + ranked incremental greedy, ms.
    screened_ms: f64,
    /// `baseline_ms / screened_ms`.
    speedup: f64,
}

/// Path of the merged benchmark file: `$WFMS_BENCH_INCREMENTAL` when
/// set, else `BENCH_incremental.json` at the repository root.
fn bench_incremental_path() -> PathBuf {
    match std::env::var_os("WFMS_BENCH_INCREMENTAL") {
        Some(p) => PathBuf::from(p),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_incremental.json"),
    }
}

fn enterprise_inputs() -> (ServerTypeRegistry, SystemLoad) {
    let specs = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs/enterprise");
    let registry: ServerTypeRegistry = serde_json::from_str(
        &std::fs::read_to_string(specs.join("registry.json")).expect("registry.json"),
    )
    .expect("valid registry");
    let workload: WorkloadFile = serde_json::from_str(
        &std::fs::read_to_string(specs.join("workload.json")).expect("workload.json"),
    )
    .expect("valid workload");
    let mut items = Vec::new();
    for entry in workload.workflows {
        let analysis = analyze_workflow(&entry.spec, &registry, &AnalysisOptions::default())
            .expect("analyzes");
        items.push(WorkloadItem {
            analysis,
            arrival_rate: entry.arrival_rate,
        });
    }
    let load = aggregate_load(&items, &registry).expect("aggregates");
    (registry, load)
}

fn options(jobs: usize) -> wfms_config::SearchOptionsBuilder {
    SearchOptions::builder()
        .epsilon(EPSILON)
        .jobs(jobs)
        .max_total_servers(BUDGET)
}

/// Runs one greedy search, returning the result, its journal rendered
/// as JSONL, and the wall-clock milliseconds.
fn run_greedy(
    registry: &ServerTypeRegistry,
    load: &SystemLoad,
    goals: &Goals,
    opts: SearchOptions,
) -> (SearchResult, String, f64) {
    let engine = AssessmentEngine::new(registry, load, goals, opts).expect("engine");
    let _ = journal::take();
    journal::enable();
    let t0 = Instant::now();
    let result = engine.greedy().expect("greedy finds a winner");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    journal::disable();
    let jsonl = journal::to_jsonl(&journal::take());
    (result, jsonl, ms)
}

const EPSILON: f64 = 1e-9;
const SCREEN_EPSILON: f64 = 3e-2;
const BUDGET: usize = 100;
// 0.0003 min = 18 ms: tight enough that the greedy climb is long and
// waiting-driven, so most of the work is exact folds the screen can
// prove away.
const MAX_WAIT_MIN: f64 = 3e-4;
const MIN_AVAILABILITY: f64 = 0.9999;
/// Timed legs run this many times; the minimum wall-clock is recorded
/// (first-run cache warmup and scheduler noise would otherwise dominate
/// a millisecond-scale comparison).
const TIMING_RUNS: usize = 3;

fn main() {
    let (registry, load) = enterprise_inputs();
    let goals = Goals::new(MAX_WAIT_MIN, MIN_AVAILABILITY).expect("valid goals");

    println!("EXP-E3: incremental + screened greedy on examples/specs/enterprise");
    println!(
        "  goals: W_max = {MAX_WAIT_MIN} min, A_min = {MIN_AVAILABILITY}, budget {BUDGET}, \
         ε = {EPSILON:.0e}\n"
    );

    // Bit-identity of the no-screen incremental leg, at jobs ∈ {1, 8}:
    // the delta path must change the work, never a bit of the result —
    // winner, trace, evaluation count, and the decision journal.
    for jobs in [1usize, 8] {
        let (base, base_journal, _) = run_greedy(
            &registry,
            &load,
            &goals,
            options(jobs).incremental(false).build(),
        );
        let (incr, incr_journal, _) = run_greedy(
            &registry,
            &load,
            &goals,
            options(jobs).incremental(true).build(),
        );
        assert_eq!(
            serde_json::to_string(&base).expect("serialize"),
            serde_json::to_string(&incr).expect("serialize"),
            "jobs = {jobs}: incremental result diverged from baseline"
        );
        assert_eq!(
            base_journal, incr_journal,
            "jobs = {jobs}: incremental journal diverged from baseline"
        );
        println!(
            "  jobs = {jobs}: incremental bit-identity ok ({} evaluations, winner Y = {:?})",
            base.evaluations, base.assessment.replicas
        );
    }

    // Timed legs, sequential greedy (jobs = 1), best of TIMING_RUNS.
    let time_leg = |opts: SearchOptions| {
        let mut best: Option<(SearchResult, String, f64)> = None;
        for _ in 0..TIMING_RUNS {
            let run = run_greedy(&registry, &load, &goals, opts);
            if best.as_ref().is_none_or(|(_, _, ms)| run.2 < *ms) {
                best = Some(run);
            }
        }
        best.expect("at least one timed run")
    };
    let (baseline, _, baseline_ms) = time_leg(options(1).incremental(false).build());
    let (_, _, incremental_ms) = time_leg(options(1).incremental(true).build());
    let (screened, screened_journal, screened_ms) = time_leg(
        options(1)
            .incremental(true)
            .screen_epsilon(SCREEN_EPSILON)
            .rank_moves(true)
            .build(),
    );
    let screened_out = screened_journal
        .lines()
        .filter(|l| l.contains("\"reject-screened\""))
        .count();
    let speedup = baseline_ms / screened_ms;

    println!(
        "\n  C baseline (from scratch)   : {baseline_ms:>9.2} ms  ({} exact assessments)",
        baseline.evaluations
    );
    println!("  B incremental (bit-identical): {incremental_ms:>9.2} ms");
    println!(
        "  A screened + ranked          : {screened_ms:>9.2} ms  ({speedup:.1}x, {} exact, \
         {screened_out} screened out)",
        screened.evaluations
    );

    // The screen may only prune provably infeasible candidates: the
    // winner and its assessment are exactly the baseline's.
    assert_eq!(
        baseline.assessment.replicas, screened.assessment.replicas,
        "screened leg landed on a different winner"
    );
    assert_eq!(
        serde_json::to_string(&baseline.assessment).expect("serialize"),
        serde_json::to_string(&screened.assessment).expect("serialize"),
        "screened winner assessment diverged"
    );
    assert!(
        screened_out > 0,
        "the screen never fired — the experiment is not exercising the tentpole"
    );
    assert!(
        speedup >= 3.0,
        "screened greedy must be >= 3x faster than the from-scratch baseline, got {speedup:.2}x"
    );

    let record = IncrementalRecord {
        winner: baseline.assessment.replicas.clone(),
        baseline_evaluations: baseline.evaluations,
        screened_evaluations: screened.evaluations,
        screened_out,
        screen_epsilon: SCREEN_EPSILON,
        baseline_ms,
        incremental_ms,
        screened_ms,
        speedup,
    };
    let path = bench_incremental_path();
    let mut all: BTreeMap<String, IncrementalRecord> = match std::fs::read_to_string(&path) {
        Ok(text) => serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{}: invalid BENCH_incremental.json: {e}", path.display())),
        Err(_) => BTreeMap::new(),
    };
    all.insert("exp_e3_incremental".to_string(), record);
    let text = serde_json::to_string_pretty(&all).expect("serializable");
    std::fs::write(&path, text + "\n").unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    println!("\n[incremental] merged timings into {}", path.display());
}
