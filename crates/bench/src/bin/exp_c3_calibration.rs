//! EXP-C3 — calibration accuracy (Sec. 7.1): estimate the EP workflow's
//! transition probabilities and residence times from simulated audit
//! trails of growing size, and track the estimation error and its effect
//! on the predicted turnaround.

use wfms_bench::{to_calibration_traces, Table};
use wfms_config::{apply_to_spec, calibrate_from_traces, ApplyOptions};
use wfms_perf::{analyze_workflow, AnalysisOptions};
use wfms_sim::{run, SimOptions};
use wfms_statechart::{paper_section52_registry, Configuration};
use wfms_workloads::ep_workflow;

fn main() {
    let registry = paper_section52_registry();
    let spec = ep_workflow();
    let truth = analyze_workflow(&spec, &registry, &AnalysisOptions::default()).expect("EP");

    // Generate a large pool of audit trails once.
    let config = Configuration::uniform(&registry, 2).expect("valid");
    let opts = SimOptions {
        duration_minutes: 400_000.0,
        warmup_minutes: 0.0,
        seed: 5150,
        audit_trail_cap: 20_000,
        ..SimOptions::default()
    };
    println!("EXP-C3: calibration from audit trails (generating up to 20k trails)...\n");
    let report = run(&registry, &config, &[(&spec, 0.3)], &opts).expect("simulates");
    let mut all_traces = to_calibration_traces(&report.audit_trails);
    // The simulator emits trails in completion order, which is biased toward
    // short instances (the long invoice-payment runs finish last). A real
    // monitoring pipeline samples uniformly; emulate that by shuffling
    // before taking prefixes.
    {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        all_traces.shuffle(&mut rng);
    }
    println!("Collected {} trails.\n", all_traces.len());

    // The quantity we track: p(NewOrder -> CreditCardCheck), true value 0.75,
    // and the turnaround prediction of the re-calibrated spec.
    let mut table = Table::new(&[
        "trails",
        "p(NewOrder->CCheck)",
        "error",
        "recalibrated R_t (min)",
        "R_t error",
    ]);
    for n in [50usize, 200, 1_000, 5_000, 20_000] {
        let n = n.min(all_traces.len());
        let slice = &all_traces[..n];
        let calibrated = calibrate_from_traces(slice).expect("calibrates");
        let p = calibrated.probability("NewOrder_S", "CreditCardCheck_S");
        let mut respec = ep_workflow();
        apply_to_spec(
            &mut respec,
            &calibrated,
            &ApplyOptions {
                min_observations: 10,
                ..ApplyOptions::default()
            },
        )
        .expect("applies");
        let re =
            analyze_workflow(&respec, &registry, &AnalysisOptions::default()).expect("re-analyzes");
        table.row(vec![
            n.to_string(),
            format!("{p:.4}"),
            format!("{:+.4}", p - 0.75),
            format!("{:.1}", re.mean_turnaround),
            format!(
                "{:+.1}%",
                100.0 * (re.mean_turnaround - truth.mean_turnaround) / truth.mean_turnaround
            ),
        ]);
    }
    table.print();
    println!(
        "\nEstimation error shrinks like 1/sqrt(n); a few thousand trails pin the\n\
         branch probabilities and turnaround to within a percent — the paper's\n\
         \"after the system has been operational for a while\" regime."
    );
}
