//! EXP-F4 — regenerates the CTMC of Fig. 4 from the Fig. 3 state chart.
//!
//! The paper's Fig. 4 is the CTMC obtained by mapping the EP workflow's
//! top-level state chart (Sec. 3.2): seven execution states plus the
//! absorbing state `s_A`. This binary performs that mapping with the
//! reproduction's documented transition probabilities and residence
//! times and prints the chain.

use wfms_bench::Table;
use wfms_perf::{analyze_workflow, AnalysisOptions};
use wfms_statechart::{map_chart, paper_section52_registry};
use wfms_workloads::ep_workflow;

fn main() {
    let registry = paper_section52_registry();
    let spec = ep_workflow();
    let mapping = map_chart(&spec.chart, &spec).expect("EP maps");
    println!("EXP-F4: the EP workflow CTMC (Fig. 4), regenerated from the Fig. 3 chart\n");
    println!(
        "States: {} (incl. absorbing); start state: {}\n",
        mapping.n(),
        mapping.labels[mapping.start]
    );

    // Resolve residence times via the hierarchical analysis, then print the
    // full chain: labels, H_i, and the transition-probability rows.
    let analysis =
        analyze_workflow(&spec, &registry, &AnalysisOptions::default()).expect("EP analyzes");
    let ctmc = &analysis.ctmc;

    let mut header: Vec<&str> = vec!["state", "H_i (min)"];
    let labels: Vec<String> = ctmc.labels().to_vec();
    let label_refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
    header.extend(label_refs.iter().map(|s| &**s));
    let mut table = Table::new(&header);
    for (i, label) in labels.iter().enumerate() {
        let h = ctmc.residence_times()[i];
        let mut row = vec![
            label.clone(),
            if h.is_finite() {
                format!("{h:.1}")
            } else {
                "∞".to_string()
            },
        ];
        for j in 0..ctmc.n() {
            let p = ctmc.jump_matrix()[(i, j)];
            row.push(if p == 0.0 {
                "·".to_string()
            } else {
                format!("{p:.2}")
            });
        }
        table.row(row);
    }
    table.print();

    println!(
        "\nDerived (Sec. 4): mean turnaround R_EP = {:.1} min;\n\
         expected requests r_x per instance: comm {:.2}, engine {:.2}, app {:.2}.",
        analysis.mean_turnaround,
        analysis.expected_requests[0],
        analysis.expected_requests[1],
        analysis.expected_requests[2]
    );
    println!(
        "\nStructure check: {} states as in Fig. 4 (7 execution states + s_A); \n\
         the Shipment_S state aggregates the parallel Notify_SC / Delivery_SC\n\
         subworkflows per Sec. 4.2.2 (max-of-means residence, summed loads).",
        mapping.n()
    );
}
