//! Shared helpers for the experiment binaries and benches.

#![warn(missing_docs)]

use wfms_config::{StateVisit, WorkflowTrace};
use wfms_sim::AuditTrail;

pub mod obs;

/// Renders one experiment table row-by-row with aligned columns.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    ///
    /// # Panics
    /// Panics on a column-count mismatch — experiment code bug.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "table row width mismatch");
        self.rows.push(cells);
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                out.push_str(&format!("{cell:>w$}", w = w));
            }
            out
        };
        println!("{}", line(&self.headers));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 3 * (widths.len() - 1))
        );
        for row in &self.rows {
            println!("{}", line(row));
        }
    }
}

/// Converts simulator audit trails into the calibration component's
/// trace format.
pub fn to_calibration_traces(trails: &[AuditTrail]) -> Vec<WorkflowTrace> {
    trails
        .iter()
        .map(|t| WorkflowTrace {
            workflow_type: t.workflow_type.clone(),
            visits: t
                .visits
                .iter()
                .map(|v| StateVisit {
                    state: v.state.clone(),
                    duration_minutes: v.duration_minutes,
                })
                .collect(),
        })
        .collect()
}

/// Formats a downtime given an unavailability.
pub fn human_downtime(unavailability: f64) -> String {
    let minutes = unavailability * wfms_avail::MINUTES_PER_YEAR;
    let seconds = minutes * 60.0;
    if seconds < 120.0 {
        format!("{seconds:.1} s/yr")
    } else if minutes < 120.0 {
        format!("{minutes:.1} min/yr")
    } else {
        format!("{:.1} h/yr", minutes / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfms_sim::AuditVisit;

    #[test]
    fn table_aligns_and_prints() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print(); // should not panic
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn trace_conversion_preserves_content() {
        let trails = vec![AuditTrail {
            workflow_type: "EP".into(),
            visits: vec![AuditVisit {
                state: "s".into(),
                duration_minutes: 1.5,
            }],
        }];
        let traces = to_calibration_traces(&trails);
        assert_eq!(traces[0].workflow_type, "EP");
        assert_eq!(traces[0].visits[0].state, "s");
        assert_eq!(traces[0].visits[0].duration_minutes, 1.5);
    }

    #[test]
    fn downtime_formatting_picks_sensible_units() {
        assert!(human_downtime(1e-7).ends_with("s/yr"));
        assert!(human_downtime(1e-4).ends_with("min/yr"));
        assert!(human_downtime(1e-2).ends_with("h/yr"));
    }
}
