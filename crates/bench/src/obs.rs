//! Stage-metric capture for the experiment binaries: wraps the global
//! `wfms-obs` recorder and merges per-experiment summaries into
//! `BENCH_obs.json` at the repository root, so the perf trajectory of
//! every solver stage is diffable across PRs.

// audit:allow-file(A008, reason = "the bench harness is a terminal fail-fast surface: a corrupt BENCH_obs.json must abort the experiment run visibly")
// audit:allow-file(A009, reason = "same contract: merge failures abort the run with the offending path in the message")
use std::collections::BTreeMap;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};
use wfms_obs::{HistogramSnapshot, StageSummary};

/// One experiment's stage metrics as stored in `BENCH_obs.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObsRecord {
    /// Per-stage span aggregates, sorted by descending total time.
    pub stages: Vec<StageSummary>,
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Gauge last-values.
    pub gauges: BTreeMap<String, f64>,
    /// Iteration/size histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Path of the merged metrics file: `$WFMS_BENCH_OBS` when set, else
/// `BENCH_obs.json` at the repository root.
pub fn bench_obs_path() -> PathBuf {
    match std::env::var_os("WFMS_BENCH_OBS") {
        Some(p) => PathBuf::from(p),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_obs.json"),
    }
}

/// Starts recording stage metrics (resets and enables the global
/// recorder).
pub fn start() {
    let recorder = wfms_obs::global();
    recorder.reset();
    recorder.enable();
}

/// Stops recording and merges this experiment's summary into
/// [`bench_obs_path`], replacing any previous entry of the same name.
/// Returns the record for callers that want to inspect it.
///
/// # Panics
/// Panics when the metrics file holds invalid JSON or cannot be written
/// — experiment binaries have no error channel beyond their exit status.
pub fn finish(experiment: &str) -> ObsRecord {
    let recorder = wfms_obs::global();
    recorder.disable();
    let snapshot = recorder.take();
    let record = ObsRecord {
        stages: wfms_obs::aggregate_stages(&snapshot),
        counters: snapshot.counters,
        gauges: snapshot.gauges,
        histograms: snapshot.histograms,
    };
    let path = bench_obs_path();
    let mut all: BTreeMap<String, ObsRecord> = match std::fs::read_to_string(&path) {
        Ok(text) => serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{}: invalid BENCH_obs.json: {e}", path.display())),
        Err(_) => BTreeMap::new(),
    };
    all.insert(experiment.to_string(), record.clone());
    let text = serde_json::to_string_pretty(&all).expect("serializable");
    std::fs::write(&path, text + "\n").unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    eprintln!(
        "[obs] merged stage metrics for {experiment:?} into {}",
        path.display()
    );
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_merge_by_experiment_name() {
        let path = std::env::temp_dir().join(format!("wfms-bench-obs-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // SAFETY: tests in this binary do not read this variable
        // concurrently.
        std::env::set_var("WFMS_BENCH_OBS", &path);
        start();
        wfms_obs::counter("test.counter", 3);
        let first = finish("exp-one");
        assert_eq!(first.counters["test.counter"], 3);

        start();
        wfms_obs::counter("test.counter", 5);
        finish("exp-two");

        start();
        wfms_obs::counter("test.counter", 7);
        finish("exp-one"); // replaces, not appends

        let all: BTreeMap<String, ObsRecord> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::env::remove_var("WFMS_BENCH_OBS");
        let _ = std::fs::remove_file(&path);
        assert_eq!(all.len(), 2);
        assert_eq!(all["exp-one"].counters["test.counter"], 7);
        assert_eq!(all["exp-two"].counters["test.counter"], 5);
    }
}
