//! Validation of the simulator against the analytic models — the
//! reproduction's equivalent of the paper's "measurements [as] a first
//! touchstone for the accuracy of our models" (Sec. 8).

use wfms_perf::{analyze_workflow, AnalysisOptions};
use wfms_queueing::{Mg1, ServiceMoments};
use wfms_sim::{run, ArrivalProcess, LoadBalancing, SimOptions};
use wfms_statechart::{
    paper_section52_registry, ActivityKind, ActivitySpec, ChartBuilder, Configuration, EcaRule,
    ServerType, ServerTypeKind, ServerTypeRegistry, WorkflowSpec,
};

/// A registry whose service times are large enough to load meaningfully.
fn test_registry() -> ServerTypeRegistry {
    let mut reg = ServerTypeRegistry::new();
    for (name, kind) in [
        ("comm", ServerTypeKind::Communication),
        ("engine", ServerTypeKind::WorkflowEngine),
        ("app", ServerTypeKind::ApplicationServer),
    ] {
        reg.register(ServerType::with_exponential_service(
            name,
            kind,
            1.0 / 10_000.0,
            0.1,
            0.05, // 3-second mean service
        ))
        .unwrap();
    }
    reg
}

fn linear_spec() -> WorkflowSpec {
    let chart = ChartBuilder::new("Lin")
        .initial("i")
        .activity_state("a", "A")
        .activity_state("b", "B")
        .final_state("f")
        .transition("i", "a", 1.0, EcaRule::default())
        .transition("a", "b", 1.0, EcaRule::default())
        .transition("b", "f", 1.0, EcaRule::default())
        .build()
        .unwrap();
    WorkflowSpec::new(
        "Lin",
        chart,
        [
            ActivitySpec::new("A", ActivityKind::Automated, 2.0, vec![2.0, 3.0, 3.0]),
            ActivitySpec::new("B", ActivityKind::Automated, 3.0, vec![2.0, 3.0, 0.0]),
        ],
    )
}

fn loop_spec() -> WorkflowSpec {
    let chart = ChartBuilder::new("Loop")
        .initial("i")
        .activity_state("a", "A")
        .activity_state("b", "B")
        .final_state("f")
        .transition("i", "a", 1.0, EcaRule::default())
        .transition("a", "b", 1.0, EcaRule::default())
        .transition("b", "a", 0.3, EcaRule::default())
        .transition("b", "f", 0.7, EcaRule::default())
        .build()
        .unwrap();
    WorkflowSpec::new(
        "Loop",
        chart,
        [
            ActivitySpec::new("A", ActivityKind::Automated, 2.0, vec![1.0, 1.0, 1.0]),
            ActivitySpec::new("B", ActivityKind::Automated, 3.0, vec![1.0, 2.0, 0.5]),
        ],
    )
}

#[test]
fn simulated_turnaround_matches_first_passage_analysis() {
    let reg = test_registry();
    let spec = loop_spec();
    let analytic = analyze_workflow(&spec, &reg, &AnalysisOptions::default()).unwrap();
    let config = Configuration::uniform(&reg, 2).unwrap();
    let opts = SimOptions {
        duration_minutes: 60_000.0,
        warmup_minutes: 2_000.0,
        seed: 17,
        ..SimOptions::default()
    };
    let report = run(&reg, &config, &[(&spec, 0.05)], &opts).unwrap();
    let sim_r = report.workflows[0].mean_turnaround;
    let model_r = analytic.mean_turnaround;
    assert!(
        (sim_r - model_r).abs() / model_r < 0.05,
        "turnaround: sim {sim_r:.3} vs model {model_r:.3}"
    );
    assert!(report.workflows[0].completed > 1_000);
}

#[test]
fn simulated_request_counts_match_reward_analysis() {
    let reg = test_registry();
    let spec = loop_spec();
    let analytic = analyze_workflow(&spec, &reg, &AnalysisOptions::default()).unwrap();
    let config = Configuration::uniform(&reg, 2).unwrap();
    let opts = SimOptions {
        duration_minutes: 60_000.0,
        warmup_minutes: 2_000.0,
        seed: 23,
        ..SimOptions::default()
    };
    let report = run(&reg, &config, &[(&spec, 0.05)], &opts).unwrap();
    for x in 0..3 {
        let sim = report.workflows[0].mean_requests[x];
        let model = analytic.expected_requests[x];
        assert!(
            (sim - model).abs() / model.max(0.1) < 0.05,
            "type {x}: sim {sim:.3} vs model {model:.3}"
        );
    }
}

#[test]
fn simulated_arrival_rate_matches_aggregated_load() {
    // l_x = xi * r_x.
    let reg = test_registry();
    let spec = linear_spec();
    let analytic = analyze_workflow(&spec, &reg, &AnalysisOptions::default()).unwrap();
    let xi = 0.1;
    let config = Configuration::uniform(&reg, 2).unwrap();
    let opts = SimOptions {
        duration_minutes: 40_000.0,
        warmup_minutes: 2_000.0,
        seed: 5,
        ..SimOptions::default()
    };
    let report = run(&reg, &config, &[(&spec, xi)], &opts).unwrap();
    for x in 0..3 {
        let sim_rate = report.server_types[x].arrival_rate;
        let model_rate = xi * analytic.expected_requests[x];
        assert!(
            (sim_rate - model_rate).abs() / model_rate.max(0.01) < 0.05,
            "type {x}: sim l_x {sim_rate:.4} vs model {model_rate:.4}"
        );
    }
}

fn one_activity_spec(comm_requests: f64) -> WorkflowSpec {
    let chart = ChartBuilder::new("W")
        .initial("i")
        .activity_state("a", "A")
        .final_state("f")
        .transition("i", "a", 1.0, EcaRule::default())
        .transition("a", "f", 1.0, EcaRule::default())
        .build()
        .unwrap();
    WorkflowSpec::new(
        "W",
        chart,
        [ActivitySpec::new(
            "A",
            ActivityKind::Automated,
            5.0,
            vec![comm_requests, 1.0, 1.0],
        )],
    )
}

#[test]
fn simulated_waiting_times_match_mg1_in_the_poisson_regime() {
    // The paper's M/G/1 model assumes Poisson request arrivals, which holds
    // when the load is the superposition of MANY concurrently active
    // instances each contributing few requests (Sec. 4.3's "relatively
    // large number of independent clients"). One comm request per instance
    // at xi = 14/min and rho = 0.7 puts ~70 instances in flight.
    let reg = test_registry();
    let spec = one_activity_spec(1.0);
    let xi = 14.0;
    let config = Configuration::new(&reg, vec![1, 20, 20]).unwrap();
    let opts = SimOptions {
        duration_minutes: 30_000.0,
        warmup_minutes: 3_000.0,
        seed: 99,
        ..SimOptions::default()
    };
    let report = run(&reg, &config, &[(&spec, xi)], &opts).unwrap();
    let comm = &report.server_types[0];
    assert!(
        (comm.utilization - 0.7).abs() < 0.03,
        "utilization {}",
        comm.utilization
    );
    let mg1 = Mg1::new(xi, ServiceMoments::exponential(0.05).unwrap()).unwrap();
    let w_model = mg1.mean_waiting_time().unwrap();
    assert!(
        (comm.mean_waiting - w_model).abs() / w_model < 0.12,
        "waiting: sim {:.4} vs M/G/1 {w_model:.4}",
        comm.mean_waiting
    );
}

#[test]
fn bursty_per_instance_requests_exceed_the_mg1_prediction() {
    // Conversely, packing 10 requests into each activity execution creates
    // the "temporary load bursts" the paper acknowledges for its
    // instance-affine assignment; the Poisson-based M/G/1 value is then an
    // underestimate. Same offered rho = 0.7 as above.
    let reg = test_registry();
    let spec = one_activity_spec(10.0);
    let xi = 1.4;
    let config = Configuration::new(&reg, vec![1, 2, 2]).unwrap();
    let opts = SimOptions {
        duration_minutes: 30_000.0,
        warmup_minutes: 3_000.0,
        seed: 99,
        ..SimOptions::default()
    };
    let report = run(&reg, &config, &[(&spec, xi)], &opts).unwrap();
    let comm = &report.server_types[0];
    let mg1 = Mg1::new(xi * 10.0, ServiceMoments::exponential(0.05).unwrap()).unwrap();
    let w_model = mg1.mean_waiting_time().unwrap();
    assert!(
        comm.mean_waiting > w_model * 1.5,
        "burstiness should inflate waiting: sim {:.4} vs M/G/1 {w_model:.4}",
        comm.mean_waiting
    );
}

#[test]
fn replication_halves_per_server_load() {
    let reg = test_registry();
    let spec = linear_spec();
    let config1 = Configuration::new(&reg, vec![1, 1, 1]).unwrap();
    let config2 = Configuration::new(&reg, vec![2, 2, 2]).unwrap();
    let opts = SimOptions {
        duration_minutes: 20_000.0,
        warmup_minutes: 1_000.0,
        seed: 1,
        ..SimOptions::default()
    };
    let xi = 0.6;
    let r1 = run(&reg, &config1, &[(&spec, xi)], &opts).unwrap();
    let r2 = run(&reg, &config2, &[(&spec, xi)], &opts).unwrap();
    for x in 0..3 {
        let u1 = r1.server_types[x].utilization;
        let u2 = r2.server_types[x].utilization;
        assert!(
            (u2 - u1 / 2.0).abs() < 0.03,
            "type {x}: util {u1:.3} vs replicated {u2:.3}"
        );
        // And waiting times drop.
        assert!(r2.server_types[x].mean_waiting < r1.server_types[x].mean_waiting);
    }
}

#[test]
fn parallel_subworkflows_show_max_of_means_bias() {
    // Analytic residence of a parallel state is max of the *mean*
    // turnarounds (a lower bound); the simulator realizes E[max], which for
    // two iid exponentials of mean m is 1.5 m. Verify both the bias
    // direction and its magnitude.
    let leaf = |name: &str| {
        ChartBuilder::new(name)
            .initial("i")
            .activity_state("w", "A")
            .final_state("f")
            .transition("i", "w", 1.0, EcaRule::default())
            .transition("w", "f", 1.0, EcaRule::default())
            .build()
            .unwrap()
    };
    let outer = ChartBuilder::new("Par")
        .initial("i")
        .parallel_state("par", vec![leaf("s1"), leaf("s2")])
        .final_state("f")
        .transition("i", "par", 1.0, EcaRule::default())
        .transition("par", "f", 1.0, EcaRule::default())
        .build()
        .unwrap();
    let spec = WorkflowSpec::new(
        "Par",
        outer,
        [ActivitySpec::new(
            "A",
            ActivityKind::Automated,
            4.0,
            vec![1.0, 1.0, 1.0],
        )],
    );
    let reg = test_registry();
    let analytic = analyze_workflow(&spec, &reg, &AnalysisOptions::default()).unwrap();
    assert!(
        (analytic.mean_turnaround - 4.0).abs() < 1e-9,
        "analytic uses max of means"
    );
    let config = Configuration::uniform(&reg, 2).unwrap();
    let opts = SimOptions {
        duration_minutes: 40_000.0,
        warmup_minutes: 2_000.0,
        seed: 3,
        ..SimOptions::default()
    };
    let report = run(&reg, &config, &[(&spec, 0.05)], &opts).unwrap();
    let sim_r = report.workflows[0].mean_turnaround;
    assert!(
        (sim_r - 6.0).abs() < 0.3,
        "E[max of two exp(4)] = 6, sim {sim_r:.3}"
    );
    assert!(
        sim_r > analytic.mean_turnaround,
        "the analytic value is a lower bound"
    );
}

#[test]
fn availability_matches_closed_form_under_failures() {
    // Aggressive failure rates so the estimate converges quickly:
    // MTTF 200, MTTR 20 => per-replica availability 10/11.
    let mut reg = ServerTypeRegistry::new();
    for name in ["t0", "t1"] {
        reg.register(ServerType::with_exponential_service(
            name,
            ServerTypeKind::WorkflowEngine,
            1.0 / 200.0,
            1.0 / 20.0,
            0.01,
        ))
        .unwrap();
    }
    let spec = {
        let chart = ChartBuilder::new("S")
            .initial("i")
            .activity_state("a", "A")
            .final_state("f")
            .transition("i", "a", 1.0, EcaRule::default())
            .transition("a", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        WorkflowSpec::new(
            "S",
            chart,
            [ActivitySpec::new(
                "A",
                ActivityKind::Automated,
                1.0,
                vec![0.2, 0.2],
            )],
        )
    };
    let config = Configuration::new(&reg, vec![2, 1]).unwrap();
    let opts = SimOptions {
        duration_minutes: 400_000.0,
        warmup_minutes: 10_000.0,
        seed: 11,
        failures_enabled: true,
        ..SimOptions::default()
    };
    let report = run(&reg, &config, &[(&spec, 0.01)], &opts).unwrap();
    let q: f64 = 20.0 / 220.0; // lambda / (lambda + mu)
    let expect_type0 = 1.0 - q * q;
    let expect_type1 = 1.0 - q;
    let expect_system = expect_type0 * expect_type1;
    let sim = &report.availability;
    assert!(
        (sim.per_type_uptime_fraction[0] - expect_type0).abs() < 0.01,
        "type0 uptime {} vs {expect_type0}",
        sim.per_type_uptime_fraction[0]
    );
    assert!(
        (sim.per_type_uptime_fraction[1] - expect_type1).abs() < 0.015,
        "type1 uptime {} vs {expect_type1}",
        sim.per_type_uptime_fraction[1]
    );
    assert!(
        (sim.system_uptime_fraction - expect_system).abs() < 0.02,
        "system uptime {} vs {expect_system}",
        sim.system_uptime_fraction
    );
    assert!(sim.failures > 1_000);
    assert!(sim.repairs > 1_000);
}

#[test]
fn same_seed_reproduces_identical_reports() {
    let reg = test_registry();
    let spec = loop_spec();
    let config = Configuration::uniform(&reg, 2).unwrap();
    let opts = SimOptions {
        duration_minutes: 5_000.0,
        warmup_minutes: 500.0,
        seed: 7,
        failures_enabled: true,
        audit_trail_cap: 10,
        ..SimOptions::default()
    };
    let a = run(&reg, &config, &[(&spec, 0.05)], &opts).unwrap();
    let b = run(&reg, &config, &[(&spec, 0.05)], &opts).unwrap();
    assert_eq!(a, b);
    let c = run(
        &reg,
        &config,
        &[(&spec, 0.05)],
        &SimOptions { seed: 8, ..opts },
    )
    .unwrap();
    assert_ne!(a, c);
}

#[test]
fn load_balancing_policies_all_serve_the_load() {
    let reg = test_registry();
    let spec = linear_spec();
    let config = Configuration::uniform(&reg, 3).unwrap();
    for lb in [
        LoadBalancing::RoundRobin,
        LoadBalancing::Random,
        LoadBalancing::InstanceAffinity,
    ] {
        let opts = SimOptions {
            duration_minutes: 10_000.0,
            warmup_minutes: 1_000.0,
            seed: 2,
            load_balancing: lb,
            ..SimOptions::default()
        };
        let report = run(&reg, &config, &[(&spec, 0.3)], &opts).unwrap();
        assert!(report.workflows[0].completed > 1_000, "{lb:?}");
        // All requests eventually served: completion count close to offered.
        let offered = report.server_types[1].arrival_rate * report.measured_minutes;
        let served = report.server_types[1].completed_requests as f64;
        assert!(
            (served - offered).abs() / offered < 0.02,
            "{lb:?}: served {served} vs offered {offered}"
        );
    }
}

#[test]
fn deterministic_arrivals_reduce_waiting() {
    // D/M/1 waits less than M/M/1 at the same utilization.
    let reg = test_registry();
    let spec = linear_spec();
    let config = Configuration::new(&reg, vec![1, 1, 1]).unwrap();
    let base = SimOptions {
        duration_minutes: 30_000.0,
        warmup_minutes: 3_000.0,
        seed: 21,
        ..SimOptions::default()
    };
    let poisson = run(&reg, &config, &[(&spec, 1.5)], &base).unwrap();
    let det = run(
        &reg,
        &config,
        &[(&spec, 1.5)],
        &SimOptions {
            arrivals: ArrivalProcess::Deterministic,
            ..base
        },
    )
    .unwrap();
    // Request arrivals are still spread within activities, but the reduced
    // burstiness of instance starts must not *increase* waiting.
    assert!(
        det.server_types[1].mean_waiting <= poisson.server_types[1].mean_waiting * 1.1,
        "det {} vs poisson {}",
        det.server_types[1].mean_waiting,
        poisson.server_types[1].mean_waiting
    );
}

#[test]
fn audit_trails_reflect_chart_structure() {
    let reg = test_registry();
    let spec = loop_spec();
    let config = Configuration::uniform(&reg, 2).unwrap();
    let opts = SimOptions {
        duration_minutes: 5_000.0,
        warmup_minutes: 0.0,
        seed: 13,
        audit_trail_cap: 200,
        ..SimOptions::default()
    };
    let report = run(&reg, &config, &[(&spec, 0.1)], &opts).unwrap();
    assert_eq!(report.audit_trails.len(), 200);
    for trail in &report.audit_trails {
        assert_eq!(trail.workflow_type, "Loop");
        // Always starts with state a and ends with state b (the only state
        // that can exit to final).
        assert_eq!(trail.visits.first().unwrap().state, "a");
        assert_eq!(trail.visits.last().unwrap().state, "b");
        // Alternates a, b, a, b, ...
        for (i, v) in trail.visits.iter().enumerate() {
            let expect = if i % 2 == 0 { "a" } else { "b" };
            assert_eq!(v.state, expect);
            assert!(v.duration_minutes >= 0.0);
        }
    }
    // Mean number of visits per trail reflects the loop: 2 / 0.7 ≈ 2.857.
    let mean_visits: f64 = report
        .audit_trails
        .iter()
        .map(|t| t.visits.len() as f64)
        .sum::<f64>()
        / report.audit_trails.len() as f64;
    assert!(
        (mean_visits - 2.0 / 0.7).abs() < 0.4,
        "mean visits {mean_visits}"
    );
}

#[test]
fn self_loop_retries_execute_literally() {
    let chart = ChartBuilder::new("Retry")
        .initial("i")
        .activity_state("a", "A")
        .final_state("f")
        .transition("i", "a", 1.0, EcaRule::default())
        .transition("a", "a", 0.5, EcaRule::default())
        .transition("a", "f", 0.5, EcaRule::default())
        .build()
        .unwrap();
    let spec = WorkflowSpec::new(
        "Retry",
        chart,
        [ActivitySpec::new(
            "A",
            ActivityKind::Automated,
            2.0,
            vec![1.0, 0.0, 0.0],
        )],
    );
    let reg = test_registry();
    let config = Configuration::uniform(&reg, 2).unwrap();
    let opts = SimOptions {
        duration_minutes: 40_000.0,
        warmup_minutes: 2_000.0,
        seed: 31,
        ..SimOptions::default()
    };
    let report = run(&reg, &config, &[(&spec, 0.05)], &opts).unwrap();
    // Two executions on average: turnaround 4, one comm request each.
    let wf = &report.workflows[0];
    assert!(
        (wf.mean_turnaround - 4.0).abs() < 0.15,
        "turnaround {}",
        wf.mean_turnaround
    );
    assert!(
        (wf.mean_requests[0] - 2.0).abs() < 0.08,
        "requests {}",
        wf.mean_requests[0]
    );
    // This must agree with the analytic self-loop folding.
    let analytic = analyze_workflow(&spec, &reg, &AnalysisOptions::default()).unwrap();
    assert!((analytic.mean_turnaround - 4.0).abs() < 1e-9);
    assert!((analytic.expected_requests[0] - 2.0).abs() < 1e-9);
}

#[test]
fn invalid_options_are_rejected() {
    let reg = test_registry();
    let spec = linear_spec();
    let config = Configuration::minimal(&reg);
    let bad_duration = SimOptions {
        duration_minutes: 0.0,
        ..SimOptions::default()
    };
    assert!(run(&reg, &config, &[(&spec, 0.1)], &bad_duration).is_err());
    let bad_warmup = SimOptions {
        duration_minutes: 100.0,
        warmup_minutes: 100.0,
        ..SimOptions::default()
    };
    assert!(run(&reg, &config, &[(&spec, 0.1)], &bad_warmup).is_err());
    assert!(run(&reg, &config, &[], &SimOptions::default()).is_err());
    assert!(run(&reg, &config, &[(&spec, -1.0)], &SimOptions::default()).is_err());
    let _ = paper_section52_registry();
}

#[test]
fn shared_queue_matches_mmc_and_beats_partitioning() {
    use wfms_queueing::Mmc;
    use wfms_sim::QueueDiscipline;

    // Two engine replicas at rho = 0.8 each; compare the paper's
    // per-replica discipline with a shared type-level queue against their
    // respective analytic models.
    let reg = test_registry();
    let spec = one_activity_spec(1.0); // one comm request per instance
    let xi = 2.0 * 0.8 / 0.05; // 32/min over 2 comm servers
    let config = Configuration::new(&reg, vec![2, 20, 20]).unwrap();
    let base = SimOptions {
        duration_minutes: 30_000.0,
        warmup_minutes: 3_000.0,
        seed: 71,
        ..SimOptions::default()
    };
    let partitioned = run(&reg, &config, &[(&spec, xi)], &base).unwrap();
    let shared = run(
        &reg,
        &config,
        &[(&spec, xi)],
        &SimOptions {
            queue_discipline: QueueDiscipline::SharedQueue,
            ..base
        },
    )
    .unwrap();

    let w_part = partitioned.server_types[0].mean_waiting;
    let w_shared = shared.server_types[0].mean_waiting;
    // Pooling gain: shared must be clearly faster.
    assert!(
        w_shared < 0.75 * w_part,
        "shared {w_shared:.4} should beat partitioned {w_part:.4}"
    );
    // And match Erlang C quantitatively.
    let mmc = Mmc::new(xi, 0.05, 2).unwrap().mean_waiting_time().unwrap();
    assert!(
        (w_shared - mmc).abs() / mmc < 0.12,
        "shared {w_shared:.4} vs M/M/2 {mmc:.4}"
    );
    // Same offered load either way.
    assert!((partitioned.server_types[0].utilization - 0.8).abs() < 0.03);
    assert!((shared.server_types[0].utilization - 0.8).abs() < 0.03);
}

#[test]
fn confidence_intervals_cover_the_analytic_values() {
    // Poisson regime: the PK prediction should fall inside (or very near)
    // the simulator's 95% batch-means interval, and the interval should be
    // reasonably tight after 27k measured minutes.
    let reg = test_registry();
    let spec = one_activity_spec(1.0);
    let xi = 14.0; // rho = 0.7 on one comm server
    let config = Configuration::new(&reg, vec![1, 20, 20]).unwrap();
    let opts = SimOptions {
        duration_minutes: 30_000.0,
        warmup_minutes: 3_000.0,
        seed: 555,
        ..SimOptions::default()
    };
    let report = run(&reg, &config, &[(&spec, xi)], &opts).unwrap();
    let comm = &report.server_types[0];
    let hw = comm.mean_waiting_ci95.expect("enough batches for a CI");
    assert!(
        hw > 0.0 && hw < 0.05 * comm.mean_waiting.max(1e-9) * 10.0,
        "half-width {hw}"
    );
    let w_model = Mg1::new(xi, ServiceMoments::exponential(0.05).unwrap())
        .unwrap()
        .mean_waiting_time()
        .unwrap();
    assert!(
        (comm.mean_waiting - w_model).abs() < 3.0 * hw,
        "model {w_model:.5} outside 3x CI [{:.5} ± {hw:.5}]",
        comm.mean_waiting
    );
    // Turnaround CI exists too and covers the 5-minute activity mean.
    let wf = &report.workflows[0];
    let t_hw = wf.turnaround_ci95.expect("turnaround batches");
    assert!((wf.mean_turnaround - 5.0).abs() < 3.0 * t_hw + 0.05);
}
