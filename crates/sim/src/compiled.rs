//! Compilation of workflow specifications into a flat, index-based form
//! the event loop can execute without string lookups.
//!
//! Each chart (top-level and every nested chart) becomes a
//! [`CompiledChart`] in a global arena. States keep their literal
//! structure — including self-loops — because the simulator executes the
//! *specification semantics* directly; the analytic mapping's self-loop
//! folding is one of the things the simulator validates.

use wfms_statechart::{ServerTypeRegistry, StateChart, StateKind, WorkflowSpec};

use crate::distributions::Duration;
use crate::error::SimError;

/// Index of a compiled chart within a [`CompiledWorkflow`] arena.
pub type ChartIdx = usize;

/// Executable form of one chart state.
#[derive(Debug, Clone)]
pub enum CompiledState {
    /// The initial pseudo-state (zero residence).
    Initial,
    /// The final state: completing frame.
    Final,
    /// An activity: sampled duration plus per-server-type request load.
    Activity {
        /// Duration distribution of one execution.
        duration: Duration,
        /// Expected number of service requests per server type; fractional
        /// values are realized stochastically (floor plus Bernoulli).
        load: Vec<f64>,
    },
    /// One or more subworkflows run in parallel; the state completes when
    /// all of them have reached their final state.
    Nested {
        /// Arena indices of the sub-charts.
        charts: Vec<ChartIdx>,
    },
}

/// Executable form of one chart.
#[derive(Debug, Clone)]
pub struct CompiledChart {
    /// Chart name (audit-trail state names are qualified by it).
    pub name: String,
    /// State names, for audit trails.
    pub state_names: Vec<String>,
    /// Executable states.
    pub states: Vec<CompiledState>,
    /// Outgoing transitions `(target, probability)` per state, with
    /// cumulative sampling handled by the engine.
    pub outgoing: Vec<Vec<(usize, f64)>>,
    /// The initial state index.
    pub initial: usize,
    /// The final state index.
    pub final_state: usize,
}

/// A fully compiled workflow type: the arena of its charts, with index 0
/// being the top-level chart.
#[derive(Debug, Clone)]
pub struct CompiledWorkflow {
    /// Workflow type name.
    pub name: String,
    /// Chart arena; `charts[0]` is the top level.
    pub charts: Vec<CompiledChart>,
}

impl CompiledWorkflow {
    /// Compiles a validated specification.
    ///
    /// # Errors
    /// [`SimError::Spec`] on structural problems (run
    /// [`wfms_statechart::validate_spec`] first for precise diagnostics)
    /// and [`SimError::InvalidParameter`] on bad activity parameters.
    pub fn compile(spec: &WorkflowSpec, registry: &ServerTypeRegistry) -> Result<Self, SimError> {
        let mut charts = Vec::new();
        compile_chart(&spec.chart, spec, registry, &mut charts)?;
        Ok(CompiledWorkflow {
            name: spec.name.clone(),
            charts,
        })
    }
}

fn compile_chart(
    chart: &StateChart,
    spec: &WorkflowSpec,
    registry: &ServerTypeRegistry,
    arena: &mut Vec<CompiledChart>,
) -> Result<ChartIdx, SimError> {
    // Reserve our slot first so the top-level chart lands at index 0.
    let my_idx = arena.len();
    arena.push(CompiledChart {
        name: chart.name.clone(),
        state_names: Vec::new(),
        states: Vec::new(),
        outgoing: Vec::new(),
        initial: 0,
        final_state: 0,
    });

    let initial = chart
        .initial_state()
        .ok_or(wfms_statechart::SpecError::InitialStateCount {
            chart: chart.name.clone(),
            found: 0,
        })?;
    let final_state = chart
        .final_state()
        .ok_or(wfms_statechart::SpecError::FinalStateCount {
            chart: chart.name.clone(),
            found: 0,
        })?;

    let mut states = Vec::with_capacity(chart.states.len());
    let mut state_names = Vec::with_capacity(chart.states.len());
    for s in &chart.states {
        state_names.push(s.name.clone());
        let compiled = match &s.kind {
            StateKind::Initial => CompiledState::Initial,
            StateKind::Final => CompiledState::Final,
            StateKind::Activity { activity } => {
                let a = spec.activity(activity).ok_or_else(|| {
                    wfms_statechart::SpecError::UnknownActivity {
                        chart: chart.name.clone(),
                        activity: activity.clone(),
                    }
                })?;
                if a.load.len() != registry.len() {
                    return Err(SimError::Spec(
                        wfms_statechart::SpecError::ActivityLoadLength {
                            activity: a.name.clone(),
                            expected: registry.len(),
                            actual: a.load.len(),
                        },
                    ));
                }
                CompiledState::Activity {
                    duration: Duration::from_mean_scv(a.mean_duration, a.duration_scv)?,
                    load: a.load.clone(),
                }
            }
            StateKind::Nested { charts: sub } => {
                // Recursively compile each sub-chart.
                let mut idxs = Vec::with_capacity(sub.len());
                for c in sub {
                    idxs.push(compile_chart(c, spec, registry, arena)?);
                }
                CompiledState::Nested { charts: idxs }
            }
        };
        states.push(compiled);
    }

    let mut outgoing: Vec<Vec<(usize, f64)>> = vec![Vec::new(); chart.states.len()];
    for t in &chart.transitions {
        outgoing[t.from.0].push((t.to.0, t.probability));
    }

    let slot = &mut arena[my_idx];
    slot.state_names = state_names;
    slot.states = states;
    slot.outgoing = outgoing;
    slot.initial = initial.0;
    slot.final_state = final_state.0;
    Ok(my_idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfms_statechart::{
        paper_section52_registry, ActivityKind, ActivitySpec, ChartBuilder, EcaRule,
    };

    fn leaf(name: &str, act: &str) -> StateChart {
        ChartBuilder::new(name)
            .initial("i")
            .activity_state("w", act)
            .final_state("f")
            .transition("i", "w", 1.0, EcaRule::default())
            .transition("w", "f", 1.0, EcaRule::default())
            .build()
            .unwrap()
    }

    #[test]
    fn compiles_flat_chart() {
        let spec = WorkflowSpec::new(
            "T",
            leaf("T", "A"),
            [ActivitySpec::new(
                "A",
                ActivityKind::Automated,
                2.0,
                vec![1.0, 0.0, 0.0],
            )],
        );
        let cw = CompiledWorkflow::compile(&spec, &paper_section52_registry()).unwrap();
        assert_eq!(cw.charts.len(), 1);
        let c = &cw.charts[0];
        assert_eq!(c.initial, 0);
        assert_eq!(c.final_state, 2);
        assert!(matches!(c.states[0], CompiledState::Initial));
        assert!(matches!(c.states[1], CompiledState::Activity { .. }));
        assert!(matches!(c.states[2], CompiledState::Final));
        assert_eq!(c.outgoing[0], vec![(1, 1.0)]);
    }

    #[test]
    fn compiles_nested_parallel_chart_into_arena() {
        let outer = ChartBuilder::new("outer")
            .initial("i")
            .parallel_state("par", vec![leaf("s1", "A"), leaf("s2", "A")])
            .final_state("f")
            .transition("i", "par", 1.0, EcaRule::default())
            .transition("par", "f", 1.0, EcaRule::default())
            .build()
            .unwrap();
        let spec = WorkflowSpec::new(
            "outer",
            outer,
            [ActivitySpec::new(
                "A",
                ActivityKind::Automated,
                2.0,
                vec![1.0, 0.0, 0.0],
            )],
        );
        let cw = CompiledWorkflow::compile(&spec, &paper_section52_registry()).unwrap();
        assert_eq!(cw.charts.len(), 3);
        assert_eq!(cw.charts[0].name, "outer");
        match &cw.charts[0].states[1] {
            CompiledState::Nested { charts } => assert_eq!(charts, &vec![1, 2]),
            other => panic!("expected nested, got {other:?}"),
        }
        assert_eq!(cw.charts[1].name, "s1");
        assert_eq!(cw.charts[2].name, "s2");
    }

    #[test]
    fn unknown_activity_fails_compilation() {
        let spec = WorkflowSpec::new("T", leaf("T", "Ghost"), []);
        assert!(matches!(
            CompiledWorkflow::compile(&spec, &paper_section52_registry()),
            Err(SimError::Spec(
                wfms_statechart::SpecError::UnknownActivity { .. }
            ))
        ));
    }

    #[test]
    fn wrong_load_length_fails_compilation() {
        let spec = WorkflowSpec::new(
            "T",
            leaf("T", "A"),
            [ActivitySpec::new(
                "A",
                ActivityKind::Automated,
                2.0,
                vec![1.0],
            )],
        );
        assert!(matches!(
            CompiledWorkflow::compile(&spec, &paper_section52_registry()),
            Err(SimError::Spec(
                wfms_statechart::SpecError::ActivityLoadLength { .. }
            ))
        ));
    }
}
