//! Online statistics and the simulation report.

use serde::{Deserialize, Serialize};

/// Welford-style online accumulator for mean and variance.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// A fresh accumulator.
    pub fn new() -> Self {
        OnlineStats::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (zero when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (zero for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Second raw moment `E[X²] = Var + mean²`.
    pub fn second_moment(&self) -> f64 {
        self.variance() + self.mean * self.mean
    }
}

/// One recorded state visit of a simulated workflow instance
/// (the simulator's audit-trail entry, Sec. 7.1's calibration input).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditVisit {
    /// Top-level chart state name.
    pub state: String,
    /// Time spent in the state, minutes.
    pub duration_minutes: f64,
}

/// The audit trail of one completed workflow instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditTrail {
    /// Workflow type name.
    pub workflow_type: String,
    /// Top-level state visits in execution order.
    pub visits: Vec<AuditVisit>,
}

/// Per-workflow-type simulation statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowSimStats {
    /// Workflow type name.
    pub name: String,
    /// Instances started after warm-up.
    pub started: u64,
    /// Instances completed (of those started after warm-up).
    pub completed: u64,
    /// Mean turnaround time (minutes) of completed instances.
    pub mean_turnaround: f64,
    /// Turnaround variance.
    pub turnaround_variance: f64,
    /// 95 % batch-means confidence half-width of the mean turnaround,
    /// when enough batches completed.
    pub turnaround_ci95: Option<f64>,
    /// Mean service requests generated per completed instance, per server
    /// type — the empirical `r_{x,t}`.
    pub mean_requests: Vec<f64>,
}

/// Per-server-type simulation statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSimStats {
    /// Server type name.
    pub name: String,
    /// Observed request arrival rate (per minute, post-warm-up) — the
    /// empirical `l_x`.
    pub arrival_rate: f64,
    /// Mean waiting time before service (minutes) — the empirical `w_x`.
    pub mean_waiting: f64,
    /// Waiting-time variance.
    pub waiting_variance: f64,
    /// 95 % batch-means confidence half-width of the mean waiting time,
    /// when enough batches completed.
    pub mean_waiting_ci95: Option<f64>,
    /// Mean observed service time.
    pub mean_service: f64,
    /// Mean per-replica utilization (busy time over measured horizon).
    pub utilization: f64,
    /// Requests whose service completed in the measured horizon.
    pub completed_requests: u64,
}

/// Availability bookkeeping over the simulated horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilitySimStats {
    /// Fraction of (post-warm-up) time the entire WFMS was operational.
    pub system_uptime_fraction: f64,
    /// Per-server-type fraction of time at least one replica was up.
    pub per_type_uptime_fraction: Vec<f64>,
    /// Total failures injected.
    pub failures: u64,
    /// Total repairs completed.
    pub repairs: u64,
}

/// The full simulation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Simulated horizon in minutes (excluding warm-up).
    pub measured_minutes: f64,
    /// Per-workflow-type statistics.
    pub workflows: Vec<WorkflowSimStats>,
    /// Per-server-type statistics.
    pub server_types: Vec<ServerSimStats>,
    /// Availability statistics.
    pub availability: AvailabilitySimStats,
    /// Collected audit trails (capped by the simulation options).
    pub audit_trails: Vec<AuditTrail>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_match_closed_form() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.second_moment() - 29.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_observation_edge_cases() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn online_stats_are_numerically_stable_for_large_offsets() {
        let mut s = OnlineStats::new();
        for i in 0..1000 {
            s.push(1e9 + (i % 2) as f64);
        }
        assert!((s.mean() - (1e9 + 0.5)).abs() < 1e-3);
        assert!((s.variance() - 0.25).abs() < 1e-6);
    }
}

/// Student-t 97.5 % quantiles by degrees of freedom (df = batches − 1);
/// beyond 30 the normal 1.96 is used.
fn t_975(df: u64) -> f64 {
    match df {
        0 => f64::INFINITY,
        1 => 12.706,
        2 => 4.303,
        3 => 3.182,
        4 => 2.776,
        5 => 2.571,
        6 => 2.447,
        7 => 2.365,
        8 => 2.306,
        9 => 2.262,
        10 => 2.228,
        11..=14 => 2.145,
        15..=19 => 2.131,
        20..=29 => 2.086,
        _ => 1.96,
    }
}

/// Batch-means estimator for steady-state confidence intervals.
///
/// Simulation observations (waiting times, turnarounds) are serially
/// correlated, so the naive `s/√n` interval is too narrow. Batch means —
/// averaging blocks of consecutive observations and treating the block
/// means as (approximately) independent — is the standard fix; with a
/// large enough batch size the block means decorrelate and a Student-t
/// interval on them is honest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_count: u64,
    batch_means: Vec<f64>,
}

impl BatchMeans {
    /// A new estimator with the given observations-per-batch.
    ///
    /// # Panics
    /// Panics on a zero batch size.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_count: 0,
            batch_means: Vec::new(),
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.batch_means
                .push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// Number of completed batches.
    pub fn batches(&self) -> usize {
        self.batch_means.len()
    }

    /// 95 % confidence half-width around the mean, or `None` with fewer
    /// than two completed batches.
    pub fn half_width_95(&self) -> Option<f64> {
        let b = self.batch_means.len();
        if b < 2 {
            return None;
        }
        let mean: f64 = self.batch_means.iter().sum::<f64>() / b as f64;
        let var: f64 = self
            .batch_means
            .iter()
            .map(|m| (m - mean) * (m - mean))
            .sum::<f64>()
            / (b as f64 - 1.0);
        Some(t_975(b as u64 - 1) * (var / b as f64).sqrt())
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;

    #[test]
    fn needs_two_batches() {
        let mut bm = BatchMeans::new(10);
        for _ in 0..19 {
            bm.push(1.0);
        }
        assert_eq!(bm.batches(), 1);
        assert_eq!(bm.half_width_95(), None);
        bm.push(1.0);
        assert_eq!(bm.batches(), 2);
        assert_eq!(
            bm.half_width_95(),
            Some(0.0),
            "constant data has zero width"
        );
    }

    #[test]
    fn interval_shrinks_with_more_batches() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut narrow = BatchMeans::new(100);
        let mut wide = BatchMeans::new(100);
        for i in 0..100_000 {
            let x: f64 = rng.gen();
            narrow.push(x);
            if i < 1_000 {
                wide.push(x);
            }
        }
        let hw_many = narrow.half_width_95().unwrap();
        let hw_few = wide.half_width_95().unwrap();
        assert!(hw_many < hw_few, "{hw_many} !< {hw_few}");
        // Uniform(0,1): sd of a 100-batch mean ≈ 0.0289; with 1000 batches
        // half-width ≈ 1.96 * 0.0289/sqrt(1000) ≈ 0.0018.
        assert!(hw_many < 0.004, "{hw_many}");
    }

    #[test]
    fn t_quantiles_are_monotone() {
        let mut last = f64::INFINITY;
        for df in 0..40 {
            let t = t_975(df);
            assert!(t <= last, "df={df}");
            last = t;
        }
        assert!((t_975(100) - 1.96).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        BatchMeans::new(0);
    }
}
