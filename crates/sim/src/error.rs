//! Simulator errors.

use std::fmt;

use wfms_statechart::{ArchError, SpecError};

/// Errors raised by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A numeric parameter is out of its domain.
    InvalidParameter {
        /// Which parameter.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The workload is empty.
    EmptyWorkload,
    /// A specification failed to compile for simulation.
    Spec(SpecError),
    /// Architectural-model failure.
    Arch(ArchError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter { what, value } => write!(f, "invalid {what}: {value}"),
            SimError::EmptyWorkload => write!(f, "no workflow types in the simulated workload"),
            SimError::Spec(e) => write!(f, "specification error: {e}"),
            SimError::Arch(e) => write!(f, "architecture error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Spec(e) => Some(e),
            SimError::Arch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for SimError {
    fn from(e: SpecError) -> Self {
        SimError::Spec(e)
    }
}

impl From<ArchError> for SimError {
    fn from(e: ArchError) -> Self {
        SimError::Arch(e)
    }
}
