//! The discrete-event simulation engine.
//!
//! Simulates the architectural model of Sec. 2 end-to-end: Poisson
//! workflow arrivals, state-chart-driven instance execution (including
//! nested and parallel subworkflows and literal self-loop retries),
//! service-request generation against replicated server pools with FCFS
//! queueing, configurable load balancing, and exponential failure/repair
//! processes per replica. The measured statistics are the empirical
//! counterparts of every analytic quantity in the paper: turnaround
//! times (`R_t`), requests per instance (`r_{x,t}`), request arrival
//! rates (`l_x`), waiting times (`w_x`), utilizations (`ρ_x`), and
//! system availability.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use wfms_statechart::{Configuration, ServerTypeRegistry, WorkflowSpec};

use crate::compiled::{CompiledState, CompiledWorkflow};
use crate::distributions::{sample_exponential, Duration};
use crate::error::SimError;
use crate::stats::{
    AuditTrail, AuditVisit, AvailabilitySimStats, BatchMeans, OnlineStats, ServerSimStats,
    SimReport, WorkflowSimStats,
};

/// Observations per batch for waiting-time confidence intervals.
const WAITING_BATCH: u64 = 1024;
/// Observations per batch for turnaround confidence intervals.
const TURNAROUND_BATCH: u64 = 256;

/// How requests are spread over a server type's replicas (Sec. 4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadBalancing {
    /// Cyclic assignment over the currently-up replicas.
    RoundRobin,
    /// Uniformly random up replica per request.
    Random,
    /// Hash of the workflow instance id picks a home replica; all requests
    /// of one instance go there (the paper's locality policy), falling
    /// over to the next up replica when the home is down.
    InstanceAffinity,
}

/// How requests queue within one server type (an architectural ablation;
/// the paper's Sec. 4.4 model corresponds to [`QueueDiscipline::PerReplica`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// Each replica has its own FCFS queue; the load balancer assigns a
    /// request to one replica on arrival (the paper's model).
    PerReplica,
    /// One shared FCFS queue per server type; any idle up replica takes
    /// the next request (the M/M/c architecture of the EXP-X4 ablation).
    SharedQueue,
}

/// Workflow inter-arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals (exponential inter-arrival times) — the paper's
    /// assumption for many independent clients.
    Poisson,
    /// Deterministic (evenly spaced) arrivals, for ablations.
    Deterministic,
}

/// Simulation options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimOptions {
    /// Simulated horizon in minutes (arrivals stop at this time).
    pub duration_minutes: f64,
    /// Warm-up period excluded from all statistics.
    pub warmup_minutes: f64,
    /// RNG seed; equal seeds give identical reports.
    pub seed: u64,
    /// Load-balancing policy (per-replica discipline only).
    pub load_balancing: LoadBalancing,
    /// Queueing discipline within one server type.
    pub queue_discipline: QueueDiscipline,
    /// Whether replicas fail and repair.
    pub failures_enabled: bool,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Collect audit trails for up to this many completed instances.
    pub audit_trail_cap: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            duration_minutes: 10_000.0,
            warmup_minutes: 1_000.0,
            seed: 42,
            load_balancing: LoadBalancing::RoundRobin,
            queue_discipline: QueueDiscipline::PerReplica,
            failures_enabled: false,
            arrivals: ArrivalProcess::Poisson,
            audit_trail_cap: 0,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum EventKind {
    Arrival {
        wf: usize,
    },
    StateEnd {
        iid: u64,
        frame: usize,
    },
    Request {
        server_type: usize,
        iid: u64,
    },
    ServiceDone {
        server_type: usize,
        replica: usize,
        token: u64,
    },
    Fail {
        server_type: usize,
        replica: usize,
    },
    Repair {
        server_type: usize,
        replica: usize,
    },
}

#[derive(Debug, Clone, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

#[derive(Debug)]
struct Frame {
    chart: usize,
    state: usize,
    parent: Option<usize>,
    entered_at: f64,
    pending_children: usize,
}

#[derive(Debug)]
struct Instance {
    wf: usize,
    started_at: f64,
    frames: Vec<Frame>,
    requests: Vec<u64>,
    trail: Option<Vec<AuditVisit>>,
    measured: bool,
}

#[derive(Debug)]
struct Replica {
    up: bool,
    busy: bool,
    token: u64,
    current_arrival: f64,
    service_started: f64,
    queue: VecDeque<f64>,
    busy_accum: f64,
}

impl Replica {
    fn new() -> Self {
        Replica {
            up: true,
            busy: false,
            token: 0,
            current_arrival: 0.0,
            service_started: 0.0,
            queue: VecDeque::new(),
            busy_accum: 0.0,
        }
    }
}

#[derive(Debug)]
struct Pool {
    service: Duration,
    replicas: Vec<Replica>,
    rr: usize,
    held: VecDeque<f64>,
    waiting: OnlineStats,
    waiting_batches: BatchMeans,
    service_observed: OnlineStats,
    arrivals_measured: u64,
    completed_measured: u64,
}

struct Engine<'a> {
    registry: &'a ServerTypeRegistry,
    workflows: Vec<CompiledWorkflow>,
    arrival_rates: Vec<f64>,
    opts: SimOptions,
    now: f64,
    seq: u64,
    heap: BinaryHeap<Reverse<Event>>,
    rng: StdRng,
    instances: HashMap<u64, Instance>,
    next_iid: u64,
    pools: Vec<Pool>,
    // Per-type failure/repair means, precomputed so the hot failure and
    // repair handlers never index back into the registry.
    mttf: Vec<f64>,
    mttr: Vec<f64>,
    // availability accounting
    types_up: Vec<usize>,
    type_uptime: Vec<f64>,
    system_uptime: f64,
    last_avail_update: f64,
    failures: u64,
    repairs: u64,
    // per-workflow stats
    wf_started: Vec<u64>,
    wf_completed: Vec<u64>,
    wf_turnaround: Vec<OnlineStats>,
    wf_turnaround_batches: Vec<BatchMeans>,
    wf_requests: Vec<Vec<OnlineStats>>,
    audit: Vec<AuditTrail>,
    events_processed: u64,
}

/// Hard safety cap on processed events.
const MAX_EVENTS: u64 = 500_000_000;

/// Runs one simulation.
///
/// # Errors
/// [`SimError`] on invalid options or specifications.
pub fn run(
    registry: &ServerTypeRegistry,
    config: &Configuration,
    workload: &[(&WorkflowSpec, f64)],
    opts: &SimOptions,
) -> Result<SimReport, SimError> {
    if workload.is_empty() {
        return Err(SimError::EmptyWorkload);
    }
    if !(opts.duration_minutes.is_finite() && opts.duration_minutes > 0.0) {
        return Err(SimError::InvalidParameter {
            what: "duration",
            value: opts.duration_minutes,
        });
    }
    if !(opts.warmup_minutes.is_finite()
        && opts.warmup_minutes >= 0.0
        && opts.warmup_minutes < opts.duration_minutes)
    {
        return Err(SimError::InvalidParameter {
            what: "warmup",
            value: opts.warmup_minutes,
        });
    }
    for (spec, rate) in workload {
        if !(rate.is_finite() && *rate >= 0.0) {
            return Err(SimError::InvalidParameter {
                what: "arrival rate",
                value: *rate,
            });
        }
        let _ = spec;
    }

    let k = registry.len();
    let mut workflows = Vec::with_capacity(workload.len());
    let mut arrival_rates = Vec::with_capacity(workload.len());
    for (spec, rate) in workload {
        workflows.push(CompiledWorkflow::compile(spec, registry)?);
        arrival_rates.push(*rate);
    }

    let mut pools = Vec::with_capacity(k);
    let mut mttf = Vec::with_capacity(k);
    let mut mttr = Vec::with_capacity(k);
    for (id, st) in registry.iter() {
        mttf.push(st.mttf());
        mttr.push(st.mttr());
        let scv = (st.service_time_second_moment - st.service_time_mean * st.service_time_mean)
            .max(0.0)
            / (st.service_time_mean * st.service_time_mean);
        let service = Duration::from_mean_scv(st.service_time_mean, scv)?;
        let replicas = (0..config.replicas(id)?).map(|_| Replica::new()).collect();
        pools.push(Pool {
            service,
            replicas,
            rr: 0,
            held: VecDeque::new(),
            waiting: OnlineStats::new(),
            waiting_batches: BatchMeans::new(WAITING_BATCH),
            service_observed: OnlineStats::new(),
            arrivals_measured: 0,
            completed_measured: 0,
        });
    }

    let mut obs_span = wfms_obs::span!(
        "simulate",
        warmup_minutes = opts.warmup_minutes,
        measured_minutes = opts.duration_minutes - opts.warmup_minutes,
        seed = opts.seed
    );
    let n_wf = workflows.len();
    let mut engine = Engine {
        registry,
        workflows,
        arrival_rates,
        opts: *opts,
        now: 0.0,
        seq: 0,
        heap: BinaryHeap::new(),
        rng: StdRng::seed_from_u64(opts.seed),
        instances: HashMap::new(),
        next_iid: 0,
        pools,
        mttf,
        mttr,
        types_up: config.as_slice().to_vec(),
        type_uptime: vec![0.0; k],
        system_uptime: 0.0,
        last_avail_update: 0.0,
        failures: 0,
        repairs: 0,
        wf_started: vec![0; n_wf],
        wf_completed: vec![0; n_wf],
        wf_turnaround: (0..n_wf).map(|_| OnlineStats::new()).collect(),
        wf_turnaround_batches: (0..n_wf)
            .map(|_| BatchMeans::new(TURNAROUND_BATCH))
            .collect(),
        wf_requests: (0..n_wf)
            .map(|_| (0..k).map(|_| OnlineStats::new()).collect())
            .collect(),
        audit: Vec::new(),
        events_processed: 0,
    };
    engine.bootstrap();
    engine.event_loop();
    obs_span.record("events", engine.events_processed);
    wfms_obs::counter("sim.events", engine.events_processed);
    Ok(engine.finish())
}

impl Engine<'_> {
    fn schedule(&mut self, time: f64, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    fn bootstrap(&mut self) {
        for wf in 0..self.workflows.len() {
            if self.arrival_rates[wf] > 0.0 {
                let dt = self.interarrival(wf);
                if dt <= self.opts.duration_minutes {
                    self.schedule(dt, EventKind::Arrival { wf });
                }
            }
        }
        if self.opts.failures_enabled {
            for x in 0..self.pools.len() {
                let mttf = self.mttf[x];
                for r in 0..self.pools[x].replicas.len() {
                    let t = sample_exponential(&mut self.rng, 1.0 / mttf);
                    if t <= self.opts.duration_minutes {
                        self.schedule(
                            t,
                            EventKind::Fail {
                                server_type: x,
                                replica: r,
                            },
                        );
                    }
                }
            }
        }
    }

    fn interarrival(&mut self, wf: usize) -> f64 {
        let rate = self.arrival_rates[wf];
        match self.opts.arrivals {
            ArrivalProcess::Poisson => sample_exponential(&mut self.rng, rate),
            ArrivalProcess::Deterministic => 1.0 / rate,
        }
    }

    fn event_loop(&mut self) {
        while let Some(Reverse(ev)) = self.heap.pop() {
            self.events_processed += 1;
            if self.events_processed > MAX_EVENTS {
                break;
            }
            self.now = ev.time;
            match ev.kind {
                EventKind::Arrival { wf } => self.on_arrival(wf),
                EventKind::StateEnd { iid, frame } => self.on_state_end(iid, frame),
                EventKind::Request { server_type, iid } => self.on_request(server_type, iid),
                EventKind::ServiceDone {
                    server_type,
                    replica,
                    token,
                } => self.on_service_done(server_type, replica, token),
                EventKind::Fail {
                    server_type,
                    replica,
                } => self.on_fail(server_type, replica),
                EventKind::Repair {
                    server_type,
                    replica,
                } => self.on_repair(server_type, replica),
            }
        }
        // Close the availability accounting at the horizon.
        let horizon = self.opts.duration_minutes;
        self.accumulate_availability(horizon.max(self.now));
    }

    // ---- workflow execution -------------------------------------------

    fn on_arrival(&mut self, wf: usize) {
        // Schedule the next arrival of this type.
        let dt = self.interarrival(wf);
        let next = self.now + dt;
        if next <= self.opts.duration_minutes {
            self.schedule(next, EventKind::Arrival { wf });
        }

        let iid = self.next_iid;
        self.next_iid += 1;
        let measured = self.now >= self.opts.warmup_minutes;
        if measured {
            self.wf_started[wf] += 1;
        }
        let want_trail = self.audit.len() + self.count_pending_trails() < self.opts.audit_trail_cap;
        let k = self.pools.len();
        let top_chart = 0;
        let initial = self.workflows[wf].charts[top_chart].initial;
        let instance = Instance {
            wf,
            started_at: self.now,
            frames: vec![Frame {
                chart: top_chart,
                state: initial,
                parent: None,
                entered_at: self.now,
                pending_children: 0,
            }],
            requests: vec![0; k],
            trail: want_trail.then(Vec::new),
            measured,
        };
        self.instances.insert(iid, instance);
        self.enter_state(iid, 0);
    }

    fn count_pending_trails(&self) -> usize {
        // Cheap upper bound: instances currently collecting a trail.
        self.instances
            .values()
            .filter(|i| i.trail.is_some())
            .count()
    }

    /// Acts on the state the frame currently points at.
    fn enter_state(&mut self, iid: u64, frame_idx: usize) {
        let (wf, chart, state) = {
            let inst = match self.instances.get(&iid) {
                Some(i) => i,
                None => return,
            };
            let f = &inst.frames[frame_idx];
            (inst.wf, f.chart, f.state)
        };
        let compiled = self.workflows[wf].charts[chart].states[state].clone();
        match compiled {
            CompiledState::Initial => {
                if let Some(inst) = self.instances.get_mut(&iid) {
                    inst.frames[frame_idx].entered_at = self.now;
                }
                self.transition(iid, frame_idx);
            }
            CompiledState::Final => self.complete_frame(iid, frame_idx),
            CompiledState::Activity { duration, load } => {
                let d = duration.sample(&mut self.rng);
                // Generate the activity's service requests, uniformly spread
                // over its duration; fractional expectations realized by a
                // Bernoulli on the remainder.
                let mut generated = vec![0u64; load.len()];
                for (x, &expected) in load.iter().enumerate() {
                    let whole = expected.floor() as u64;
                    let frac = expected - expected.floor();
                    let extra = if frac > 0.0 && self.rng.gen::<f64>() < frac {
                        1
                    } else {
                        0
                    };
                    let n = whole + extra;
                    generated[x] = n;
                    for _ in 0..n {
                        let t = self.now + self.rng.gen::<f64>() * d;
                        self.schedule(
                            t,
                            EventKind::Request {
                                server_type: x,
                                iid,
                            },
                        );
                    }
                }
                if let Some(inst) = self.instances.get_mut(&iid) {
                    for (req, g) in inst.requests.iter_mut().zip(&generated) {
                        *req += g;
                    }
                    inst.frames[frame_idx].entered_at = self.now;
                }
                let end = self.now + d;
                self.schedule(
                    end,
                    EventKind::StateEnd {
                        iid,
                        frame: frame_idx,
                    },
                );
            }
            CompiledState::Nested { charts } => {
                if let Some(inst) = self.instances.get_mut(&iid) {
                    inst.frames[frame_idx].entered_at = self.now;
                    inst.frames[frame_idx].pending_children = charts.len();
                }
                let mut child_frames = Vec::with_capacity(charts.len());
                for &c in &charts {
                    let initial = self.workflows[wf].charts[c].initial;
                    if let Some(inst) = self.instances.get_mut(&iid) {
                        inst.frames.push(Frame {
                            chart: c,
                            state: initial,
                            parent: Some(frame_idx),
                            entered_at: self.now,
                            pending_children: 0,
                        });
                        child_frames.push(inst.frames.len() - 1);
                    }
                }
                for f in child_frames {
                    self.enter_state(iid, f);
                }
            }
        }
    }

    /// The activity in `frame` finished its sampled duration.
    fn on_state_end(&mut self, iid: u64, frame_idx: usize) {
        self.transition(iid, frame_idx);
    }

    /// Leaves the frame's current state along a sampled transition.
    fn transition(&mut self, iid: u64, frame_idx: usize) {
        let (wf, chart, state, entered_at, is_top) = {
            let inst = match self.instances.get(&iid) {
                Some(i) => i,
                None => return,
            };
            let f = &inst.frames[frame_idx];
            (inst.wf, f.chart, f.state, f.entered_at, frame_idx == 0)
        };
        // Audit-trail the visit we are leaving (top level, real states only).
        let is_real = matches!(
            self.workflows[wf].charts[chart].states[state],
            CompiledState::Activity { .. } | CompiledState::Nested { .. }
        );
        if is_top && is_real {
            let name = self.workflows[wf].charts[chart].state_names[state].clone();
            let visit = AuditVisit {
                state: name,
                duration_minutes: self.now - entered_at,
            };
            if let Some(inst) = self.instances.get_mut(&iid) {
                if let Some(trail) = inst.trail.as_mut() {
                    trail.push(visit);
                }
            }
        }
        // Sample the successor.
        let next = {
            let outgoing = &self.workflows[wf].charts[chart].outgoing[state];
            debug_assert!(
                !outgoing.is_empty(),
                "non-final state without outgoing transitions"
            );
            let u: f64 = self.rng.gen();
            let mut acc = 0.0;
            // Infallible: spec validation rejects non-final states with no
            // outgoing transitions, and the debug_assert above re-checks.
            // audit:allow(A008, reason = "spec validation rejects non-final states with no outgoing transitions (W008), re-checked by the debug_assert above")
            let mut chosen = outgoing.last().expect("validated chart").0;
            for &(to, p) in outgoing {
                acc += p;
                if u < acc {
                    chosen = to;
                    break;
                }
            }
            chosen
        };
        if let Some(inst) = self.instances.get_mut(&iid) {
            inst.frames[frame_idx].state = next;
        }
        self.enter_state(iid, frame_idx);
    }

    /// A frame reached its final state.
    fn complete_frame(&mut self, iid: u64, frame_idx: usize) {
        let parent = match self.instances.get(&iid) {
            Some(i) => i.frames[frame_idx].parent,
            None => return,
        };
        match parent {
            Some(p) => {
                let ready = {
                    // Infallible: the instance was present two lookups above
                    // in this same handler and nothing removes it in between.
                    // audit:allow(A008, reason = "the instance was present two lookups above in this same handler and nothing removes it in between")
                    let inst = self.instances.get_mut(&iid).expect("instance exists");
                    let f = &mut inst.frames[p];
                    f.pending_children -= 1;
                    f.pending_children == 0
                };
                if ready {
                    // The parent's nested state is done; leave it.
                    self.transition(iid, p);
                }
            }
            None => self.finish_instance(iid),
        }
    }

    fn finish_instance(&mut self, iid: u64) {
        let inst = match self.instances.remove(&iid) {
            Some(i) => i,
            None => return,
        };
        if inst.measured {
            self.wf_completed[inst.wf] += 1;
            self.wf_turnaround[inst.wf].push(self.now - inst.started_at);
            self.wf_turnaround_batches[inst.wf].push(self.now - inst.started_at);
            for (x, &n) in inst.requests.iter().enumerate() {
                self.wf_requests[inst.wf][x].push(n as f64);
            }
        }
        if let Some(visits) = inst.trail {
            if self.audit.len() < self.opts.audit_trail_cap && !visits.is_empty() {
                self.audit.push(AuditTrail {
                    workflow_type: self.workflows[inst.wf].name.clone(),
                    visits,
                });
            }
        }
    }

    // ---- servers --------------------------------------------------------

    fn on_request(&mut self, x: usize, iid: u64) {
        if self.in_window(self.now) {
            self.pools[x].arrivals_measured += 1;
        }
        self.dispatch(x, self.now, iid);
    }

    /// Routes a request (with its original arrival time) to a replica.
    fn dispatch(&mut self, x: usize, arrival: f64, iid: u64) {
        let n = self.pools[x].replicas.len();
        if self.opts.queue_discipline == QueueDiscipline::SharedQueue {
            // One queue per type; any idle up replica pulls from it.
            self.pools[x].held.push_back(arrival);
            if let Some(idle) =
                (0..n).find(|&r| self.pools[x].replicas[r].up && !self.pools[x].replicas[r].busy)
            {
                self.try_start(x, idle);
            }
            return;
        }
        let up_exists = self.pools[x].replicas.iter().any(|r| r.up);
        if !up_exists {
            self.pools[x].held.push_back(arrival);
            return;
        }
        let start = match self.opts.load_balancing {
            LoadBalancing::RoundRobin => {
                let s = self.pools[x].rr;
                self.pools[x].rr = (s + 1) % n;
                s
            }
            LoadBalancing::Random => self.rng.gen_range(0..n),
            LoadBalancing::InstanceAffinity => (iid as usize) % n,
        };
        let mut chosen = start % n;
        for off in 0..n {
            let idx = (start + off) % n;
            if self.pools[x].replicas[idx].up {
                chosen = idx;
                break;
            }
        }
        self.pools[x].replicas[chosen].queue.push_back(arrival);
        self.try_start(x, chosen);
    }

    fn try_start(&mut self, x: usize, r: usize) {
        let now = self.now;
        let (token, service) = {
            let pool = &mut self.pools[x];
            let rep = &mut pool.replicas[r];
            if rep.busy || !rep.up {
                return;
            }
            let arrival = match self.opts.queue_discipline {
                QueueDiscipline::PerReplica => match rep.queue.pop_front() {
                    Some(a) => a,
                    None => return,
                },
                QueueDiscipline::SharedQueue => match pool.held.pop_front() {
                    Some(a) => a,
                    None => return,
                },
            };
            rep.busy = true;
            rep.token += 1;
            rep.current_arrival = arrival;
            rep.service_started = now;
            (rep.token, pool.service)
        };
        let s = service.sample(&mut self.rng);
        if self.in_window(now) {
            let pool = &mut self.pools[x];
            let waited = now - pool.replicas[r].current_arrival;
            pool.waiting.push(waited);
            pool.waiting_batches.push(waited);
            pool.service_observed.push(s);
        }
        self.schedule(
            now + s,
            EventKind::ServiceDone {
                server_type: x,
                replica: r,
                token,
            },
        );
    }

    fn on_service_done(&mut self, x: usize, r: usize, token: u64) {
        {
            let pool = &mut self.pools[x];
            let rep = &mut pool.replicas[r];
            if !rep.busy || rep.token != token {
                return; // stale completion from before a failure
            }
            rep.busy = false;
            let busy = Self::clip_static(
                rep.service_started,
                self.now,
                self.opts.warmup_minutes,
                self.opts.duration_minutes,
            );
            rep.busy_accum += busy;
            if self.now >= self.opts.warmup_minutes {
                pool.completed_measured += 1;
            }
        }
        self.try_start(x, r);
    }

    fn on_fail(&mut self, x: usize, r: usize) {
        self.accumulate_availability(self.now);
        let mut displaced: Vec<f64> = Vec::new();
        {
            let pool = &mut self.pools[x];
            let rep = &mut pool.replicas[r];
            if !rep.up {
                return;
            }
            rep.up = false;
            rep.token += 1; // invalidate any in-flight completion
            if rep.busy {
                rep.busy = false;
                let busy = Self::clip_static(
                    rep.service_started,
                    self.now,
                    self.opts.warmup_minutes,
                    self.opts.duration_minutes,
                );
                rep.busy_accum += busy;
                displaced.push(rep.current_arrival);
            }
            displaced.extend(rep.queue.drain(..));
        }
        self.types_up[x] -= 1;
        self.failures += 1;
        // Failover: re-dispatch displaced requests (their waiting clock keeps
        // running from the original arrival).
        if self.opts.queue_discipline == QueueDiscipline::SharedQueue {
            for arrival in displaced.into_iter().rev() {
                self.pools[x].held.push_front(arrival);
            }
        } else {
            for arrival in displaced {
                self.dispatch(x, arrival, 0);
            }
        }
        // Repair completes after an exponential repair time.
        let t = self.now + sample_exponential(&mut self.rng, 1.0 / self.mttr[x]);
        self.schedule(
            t,
            EventKind::Repair {
                server_type: x,
                replica: r,
            },
        );
    }

    fn on_repair(&mut self, x: usize, r: usize) {
        self.accumulate_availability(self.now);
        {
            let rep = &mut self.pools[x].replicas[r];
            debug_assert!(!rep.up);
            rep.up = true;
        }
        self.types_up[x] += 1;
        self.repairs += 1;
        // Flush requests that were held while the whole type was down
        // (under the shared discipline the held queue IS the type queue,
        // so the repaired replica simply starts pulling from it).
        if self.opts.queue_discipline == QueueDiscipline::PerReplica {
            let held: Vec<f64> = self.pools[x].held.drain(..).collect();
            for arrival in held {
                self.dispatch(x, arrival, 0);
            }
        }
        self.try_start(x, r);
        // Schedule this replica's next failure.
        let t = self.now + sample_exponential(&mut self.rng, 1.0 / self.mttf[x]);
        if t <= self.opts.duration_minutes {
            self.schedule(
                t,
                EventKind::Fail {
                    server_type: x,
                    replica: r,
                },
            );
        }
    }

    // ---- accounting -------------------------------------------------------

    fn in_window(&self, t: f64) -> bool {
        t >= self.opts.warmup_minutes && t <= self.opts.duration_minutes
    }

    fn clip_static(from: f64, to: f64, warmup: f64, horizon: f64) -> f64 {
        (to.min(horizon) - from.max(warmup)).max(0.0)
    }

    /// Accumulates uptime between the last availability change and `now`.
    fn accumulate_availability(&mut self, now: f64) {
        let dt = Self::clip_static(
            self.last_avail_update,
            now,
            self.opts.warmup_minutes,
            self.opts.duration_minutes,
        );
        if dt > 0.0 {
            if self.types_up.iter().all(|&u| u > 0) {
                self.system_uptime += dt;
            }
            for (x, &u) in self.types_up.iter().enumerate() {
                if u > 0 {
                    self.type_uptime[x] += dt;
                }
            }
        }
        self.last_avail_update = now;
    }

    fn finish(self) -> SimReport {
        let measured = self.opts.duration_minutes - self.opts.warmup_minutes;
        let workflows = (0..self.workflows.len())
            .map(|wf| WorkflowSimStats {
                name: self.workflows[wf].name.clone(),
                started: self.wf_started[wf],
                completed: self.wf_completed[wf],
                mean_turnaround: self.wf_turnaround[wf].mean(),
                turnaround_variance: self.wf_turnaround[wf].variance(),
                turnaround_ci95: self.wf_turnaround_batches[wf].half_width_95(),
                mean_requests: self.wf_requests[wf].iter().map(|s| s.mean()).collect(),
            })
            .collect();
        let server_types = self
            .pools
            .iter()
            .enumerate()
            .map(|(x, pool)| {
                let name = self
                    .registry
                    .get(wfms_statechart::ServerTypeId(x))
                    .map(|t| t.name.clone())
                    .unwrap_or_else(|_| format!("type{x}"));
                let busy: f64 = pool.replicas.iter().map(|r| r.busy_accum).sum();
                ServerSimStats {
                    name,
                    arrival_rate: pool.arrivals_measured as f64 / measured,
                    mean_waiting: pool.waiting.mean(),
                    waiting_variance: pool.waiting.variance(),
                    mean_waiting_ci95: pool.waiting_batches.half_width_95(),
                    mean_service: pool.service_observed.mean(),
                    utilization: busy / (measured * pool.replicas.len() as f64),
                    completed_requests: pool.completed_measured,
                }
            })
            .collect();
        let availability = AvailabilitySimStats {
            system_uptime_fraction: self.system_uptime / measured,
            per_type_uptime_fraction: self.type_uptime.iter().map(|t| t / measured).collect(),
            failures: self.failures,
            repairs: self.repairs,
        };
        SimReport {
            measured_minutes: measured,
            workflows,
            server_types,
            availability,
            audit_trails: self.audit,
        }
    }
}
