//! Random-variate sampling for the simulator.
//!
//! Durations and service times are described by a mean and a squared
//! coefficient of variation (SCV), mirroring the moment-level modeling of
//! the analytic stack: SCV 1 samples an exponential, SCV < 1 an Erlang,
//! SCV > 1 a balanced-means two-phase hyperexponential, and SCV 0 a
//! deterministic constant.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::SimError;

/// A sampleable positive duration distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Duration {
    /// Always exactly `value`.
    Deterministic {
        /// The constant duration.
        value: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Sum of `k` exponential stages (SCV `1/k`).
    Erlang {
        /// Number of stages.
        k: usize,
        /// Mean of the *whole* distribution.
        mean: f64,
    },
    /// Two-phase hyperexponential (balanced means).
    Hyperexponential {
        /// Probability of branch 1.
        p: f64,
        /// Rate of branch 1.
        rate1: f64,
        /// Rate of branch 2.
        rate2: f64,
    },
}

impl Duration {
    /// Fits a distribution to a mean and SCV (the same two-moment rules as
    /// `wfms_markov::PhaseType`, plus the deterministic SCV-0 case).
    ///
    /// # Errors
    /// [`SimError::InvalidParameter`] on non-positive mean or negative SCV.
    pub fn from_mean_scv(mean: f64, scv: f64) -> Result<Self, SimError> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(SimError::InvalidParameter {
                what: "duration mean",
                value: mean,
            });
        }
        if !(scv.is_finite() && scv >= 0.0) {
            return Err(SimError::InvalidParameter {
                what: "duration SCV",
                value: scv,
            });
        }
        const NEAR: f64 = 1e-9;
        if scv <= NEAR {
            return Ok(Duration::Deterministic { value: mean });
        }
        if (scv - 1.0).abs() <= NEAR {
            return Ok(Duration::Exponential { mean });
        }
        if scv < 1.0 {
            let k = (1.0 / scv).round().max(1.0) as usize;
            if k == 1 {
                return Ok(Duration::Exponential { mean });
            }
            return Ok(Duration::Erlang { k, mean });
        }
        let p = 0.5 * (1.0 + ((scv - 1.0) / (scv + 1.0)).sqrt());
        Ok(Duration::Hyperexponential {
            p,
            rate1: 2.0 * p / mean,
            rate2: 2.0 * (1.0 - p) / mean,
        })
    }

    /// The distribution's mean.
    pub fn mean(&self) -> f64 {
        match *self {
            Duration::Deterministic { value } => value,
            Duration::Exponential { mean } => mean,
            Duration::Erlang { mean, .. } => mean,
            Duration::Hyperexponential { p, rate1, rate2 } => p / rate1 + (1.0 - p) / rate2,
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Duration::Deterministic { value } => value,
            Duration::Exponential { mean } => sample_exponential(rng, 1.0 / mean),
            Duration::Erlang { k, mean } => {
                let rate = k as f64 / mean;
                (0..k).map(|_| sample_exponential(rng, rate)).sum()
            }
            Duration::Hyperexponential { p, rate1, rate2 } => {
                if rng.gen::<f64>() < p {
                    sample_exponential(rng, rate1)
                } else {
                    sample_exponential(rng, rate2)
                }
            }
        }
    }
}

/// Samples an exponential variate with the given rate by inversion.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    // 1 - U in (0, 1] avoids ln(0).
    let u: f64 = rng.gen();
    -(1.0 - u).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn mean_of(d: &Duration, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let m = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
        (m, var / (m * m))
    }

    #[test]
    fn from_mean_scv_dispatches_by_scv() {
        assert!(matches!(
            Duration::from_mean_scv(2.0, 0.0).unwrap(),
            Duration::Deterministic { value } if value == 2.0
        ));
        assert!(matches!(
            Duration::from_mean_scv(2.0, 1.0).unwrap(),
            Duration::Exponential { .. }
        ));
        assert!(matches!(
            Duration::from_mean_scv(2.0, 0.25).unwrap(),
            Duration::Erlang { k: 4, .. }
        ));
        assert!(matches!(
            Duration::from_mean_scv(2.0, 4.0).unwrap(),
            Duration::Hyperexponential { .. }
        ));
        // SCV just below 1 rounds to the exponential.
        assert!(matches!(
            Duration::from_mean_scv(2.0, 0.9).unwrap(),
            Duration::Exponential { .. }
        ));
    }

    #[test]
    fn from_mean_scv_rejects_bad_input() {
        assert!(Duration::from_mean_scv(0.0, 1.0).is_err());
        assert!(Duration::from_mean_scv(-1.0, 1.0).is_err());
        assert!(Duration::from_mean_scv(1.0, -0.5).is_err());
        assert!(Duration::from_mean_scv(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn sample_means_match_for_all_families() {
        for scv in [0.0, 0.25, 1.0, 4.0] {
            let d = Duration::from_mean_scv(3.0, scv).unwrap();
            assert!((d.mean() - 3.0).abs() < 1e-9, "declared mean for scv {scv}");
            let (m, _) = mean_of(&d, 200_000, 42);
            assert!((m - 3.0).abs() < 0.05, "scv={scv}: sample mean {m}");
        }
    }

    #[test]
    fn sample_scv_matches_target() {
        for target in [0.25, 1.0, 4.0] {
            let d = Duration::from_mean_scv(2.0, target).unwrap();
            let (_, scv) = mean_of(&d, 400_000, 7);
            assert!(
                (scv - target).abs() < 0.15 * target.max(0.2),
                "target {target}: sampled SCV {scv}"
            );
        }
    }

    #[test]
    fn deterministic_has_zero_variance() {
        let d = Duration::Deterministic { value: 5.0 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn exponential_sampler_is_positive_and_unbiased() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 200_000;
        let mean = (0..n)
            .map(|_| sample_exponential(&mut rng, 2.0))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
