//! Discrete-event simulator of a distributed WFMS.
//!
//! This crate is the *validation substrate* of the reproduction: the
//! paper evaluated its analytic models against measurements of WFMS
//! prototypes (Mentor-lite and commercial products, Sec. 8); here, an
//! event-accurate simulator of the same architectural model (Sec. 2)
//! plays that role. It executes workflow instances directly from their
//! state-chart specifications — including nested/parallel subworkflows,
//! probabilistic branching, loops, and literal self-loop retries —
//! generates their service requests against replicated server pools with
//! FCFS queues and configurable load balancing, and injects exponential
//! failures and repairs per replica.
//!
//! Every quantity the analytic models predict has an empirical
//! counterpart in the [`stats::SimReport`]: turnaround times (`R_t`),
//! requests per instance (`r_{x,t}`), request arrival rates (`l_x`),
//! waiting times (`w_x`), utilizations (`ρ_x`), and system availability.

#![warn(missing_docs)]

pub mod compiled;
pub mod distributions;
pub mod engine;
pub mod error;
pub mod stats;

pub use compiled::{CompiledChart, CompiledState, CompiledWorkflow};
pub use distributions::Duration;
pub use engine::{run, ArrivalProcess, LoadBalancing, QueueDiscipline, SimOptions};
pub use error::SimError;
pub use stats::{
    AuditTrail, AuditVisit, AvailabilitySimStats, OnlineStats, ServerSimStats, SimReport,
    WorkflowSimStats,
};
