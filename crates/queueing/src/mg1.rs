//! M/G/1 queueing analysis (Sec. 4.4 of the paper).
//!
//! Every server replica is modeled as an M/G/1 queue: Poisson request
//! arrivals at rate `λ̃` and a general service time known through its
//! first two moments. The mean waiting time follows the
//! Pollaczek–Khinchine formula the paper quotes:
//!
//! ```text
//! w = λ̃ · b^(2) / (2 · (1 - ρ)),    ρ = λ̃ · b
//! ```

use serde::{Deserialize, Serialize};

use crate::error::QueueError;
use crate::moments::ServiceMoments;

/// An M/G/1 queue: Poisson arrivals into a single server with general
/// service times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mg1 {
    /// Request arrival rate `λ̃` (per minute).
    pub arrival_rate: f64,
    /// Service-time moments.
    pub service: ServiceMoments,
}

impl Mg1 {
    /// Builds the queue descriptor.
    ///
    /// # Errors
    /// [`QueueError::InvalidParameter`] for a negative or non-finite
    /// arrival rate. A zero arrival rate is allowed (idle server).
    pub fn new(arrival_rate: f64, service: ServiceMoments) -> Result<Self, QueueError> {
        if !(arrival_rate.is_finite() && arrival_rate >= 0.0) {
            return Err(QueueError::InvalidParameter {
                what: "arrival rate",
                value: arrival_rate,
            });
        }
        Ok(Mg1 {
            arrival_rate,
            service,
        })
    }

    /// Server utilization `ρ = λ̃ · b`.
    pub fn utilization(&self) -> f64 {
        self.arrival_rate * self.service.mean
    }

    /// True when the queue is stable (`ρ < 1`), i.e. the server can
    /// sustain the offered load (Sec. 4.3's `λ̂ b ≤ 1` criterion, strictly).
    pub fn is_stable(&self) -> bool {
        self.utilization() < 1.0
    }

    /// Mean waiting time in queue (Pollaczek–Khinchine).
    ///
    /// # Errors
    /// [`QueueError::Unstable`] when `ρ ≥ 1`: the waiting time diverges
    /// and the paper treats the server type as saturated.
    pub fn mean_waiting_time(&self) -> Result<f64, QueueError> {
        let rho = self.utilization();
        if rho >= 1.0 {
            return Err(QueueError::Unstable { utilization: rho });
        }
        Ok(self.arrival_rate * self.service.second_moment / (2.0 * (1.0 - rho)))
    }

    /// Mean response (sojourn) time: waiting plus service.
    ///
    /// # Errors
    /// [`QueueError::Unstable`] when `ρ ≥ 1`.
    pub fn mean_response_time(&self) -> Result<f64, QueueError> {
        Ok(self.mean_waiting_time()? + self.service.mean)
    }

    /// Mean number of requests waiting in queue (Little's law applied to
    /// the waiting room: `L_q = λ̃ · w`).
    ///
    /// # Errors
    /// [`QueueError::Unstable`] when `ρ ≥ 1`.
    pub fn mean_queue_length(&self) -> Result<f64, QueueError> {
        Ok(self.arrival_rate * self.mean_waiting_time()?)
    }

    /// Mean number of requests in the system (`L = λ̃ · T`).
    ///
    /// # Errors
    /// [`QueueError::Unstable`] when `ρ ≥ 1`.
    pub fn mean_in_system(&self) -> Result<f64, QueueError> {
        Ok(self.arrival_rate * self.mean_response_time()?)
    }
}

/// Little's law: mean population `N = λ · T` for any stable system with
/// arrival rate `λ` and mean time-in-system `T`. Used by the performance
/// model for the number of concurrently active workflow instances
/// (`N_active = ξ_t · R_t`, Sec. 4.3).
pub fn littles_law_population(arrival_rate: f64, mean_time_in_system: f64) -> f64 {
    arrival_rate * mean_time_in_system
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm1(lambda: f64, mean_service: f64) -> Mg1 {
        Mg1::new(lambda, ServiceMoments::exponential(mean_service).unwrap()).unwrap()
    }

    #[test]
    fn mm1_waiting_time_matches_closed_form() {
        // M/M/1: w = ρ·b / (1-ρ).
        for (lambda, b) in [(0.5, 1.0), (0.8, 1.0), (2.0, 0.25)] {
            let q = mm1(lambda, b);
            let rho: f64 = lambda * b;
            let expect = rho * b / (1.0 - rho);
            let w = q.mean_waiting_time().unwrap();
            assert!((w - expect).abs() < 1e-12, "λ={lambda}: {w} vs {expect}");
        }
    }

    #[test]
    fn md1_waits_half_as_long_as_mm1() {
        // Deterministic service halves the PK numerator.
        let mm1_w = mm1(0.6, 1.0).mean_waiting_time().unwrap();
        let md1 = Mg1::new(0.6, ServiceMoments::deterministic(1.0).unwrap()).unwrap();
        let md1_w = md1.mean_waiting_time().unwrap();
        assert!((md1_w - mm1_w / 2.0).abs() < 1e-12);
    }

    #[test]
    fn response_time_is_wait_plus_service() {
        let q = mm1(0.5, 1.0);
        let w = q.mean_waiting_time().unwrap();
        let t = q.mean_response_time().unwrap();
        assert!((t - (w + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn littles_law_consistency() {
        let q = mm1(0.7, 1.0);
        let lq = q.mean_queue_length().unwrap();
        let l = q.mean_in_system().unwrap();
        // M/M/1: L = ρ/(1-ρ); Lq = ρ²/(1-ρ).
        assert!((l - 0.7 / 0.3).abs() < 1e-9);
        assert!((lq - 0.49 / 0.3).abs() < 1e-9);
        assert!((littles_law_population(0.7, q.mean_response_time().unwrap()) - l).abs() < 1e-12);
    }

    #[test]
    fn idle_server_has_zero_wait() {
        let q = mm1(0.0, 1.0);
        assert_eq!(q.utilization(), 0.0);
        assert_eq!(q.mean_waiting_time().unwrap(), 0.0);
        assert_eq!(q.mean_queue_length().unwrap(), 0.0);
    }

    #[test]
    fn saturated_server_reports_unstable() {
        let q = mm1(1.0, 1.0);
        assert!(!q.is_stable());
        assert!(matches!(
            q.mean_waiting_time(),
            Err(QueueError::Unstable { utilization }) if (utilization - 1.0).abs() < 1e-12
        ));
        let q = mm1(2.0, 1.0);
        assert!(q.mean_response_time().is_err());
        assert!(q.mean_queue_length().is_err());
        assert!(q.mean_in_system().is_err());
    }

    #[test]
    fn new_rejects_bad_arrival_rate() {
        let s = ServiceMoments::exponential(1.0).unwrap();
        assert!(Mg1::new(-0.1, s).is_err());
        assert!(Mg1::new(f64::NAN, s).is_err());
        assert!(Mg1::new(f64::INFINITY, s).is_err());
    }

    #[test]
    fn waiting_time_grows_with_utilization() {
        let mut last = 0.0;
        for lambda in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let w = mm1(lambda, 1.0).mean_waiting_time().unwrap();
            assert!(w > last);
            last = w;
        }
        assert!(last > 50.0, "near saturation the wait explodes: {last}");
    }

    #[test]
    fn waiting_time_grows_with_service_variability() {
        let lambda = 0.6;
        let det = Mg1::new(lambda, ServiceMoments::deterministic(1.0).unwrap()).unwrap();
        let erl = Mg1::new(lambda, ServiceMoments::erlang(4, 1.0).unwrap()).unwrap();
        let exp = Mg1::new(lambda, ServiceMoments::exponential(1.0).unwrap()).unwrap();
        let hyp = Mg1::new(lambda, ServiceMoments::with_scv(1.0, 4.0).unwrap()).unwrap();
        let ws: Vec<f64> = [det, erl, exp, hyp]
            .iter()
            .map(|q| q.mean_waiting_time().unwrap())
            .collect();
        for pair in ws.windows(2) {
            assert!(pair[0] < pair[1], "variability ordering violated: {ws:?}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn pk_formula_is_nonnegative_and_finite_for_stable_queues(
            rho in 0.01f64..0.99,
            mean in 0.01f64..10.0,
            scv in 0.0f64..10.0,
        ) {
            let service = ServiceMoments::with_scv(mean, scv).unwrap();
            let q = Mg1::new(rho / mean, service).unwrap();
            let w = q.mean_waiting_time().unwrap();
            prop_assert!(w.is_finite());
            prop_assert!(w >= 0.0);
            // PK with the M/M/1 bound: w >= w_{M/D/1} = rho*b/(2(1-rho)).
            let lower = rho * mean / (2.0 * (1.0 - rho));
            prop_assert!(w >= lower - 1e-12);
        }

        #[test]
        fn waiting_time_is_monotone_in_arrival_rate(
            mean in 0.01f64..10.0,
            scv in 0.0f64..5.0,
            l1 in 0.01f64..0.5,
            delta in 0.01f64..0.4,
        ) {
            let service = ServiceMoments::with_scv(mean, scv).unwrap();
            let w1 = Mg1::new(l1 / mean, service).unwrap().mean_waiting_time().unwrap();
            let w2 = Mg1::new((l1 + delta) / mean, service).unwrap().mean_waiting_time().unwrap();
            prop_assert!(w2 >= w1);
        }
    }
}
