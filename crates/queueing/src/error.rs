//! Queueing-model errors.

use std::fmt;

/// Errors raised by the queueing analyses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueueError {
    /// A parameter is out of its valid domain.
    InvalidParameter {
        /// Which parameter.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The queue is saturated (`ρ ≥ 1`): waiting time diverges. Carries
    /// the offered utilization so callers can report *how* overloaded the
    /// server type is.
    Unstable {
        /// The offered utilization `ρ = λ̃ · b`.
        utilization: f64,
    },
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::InvalidParameter { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
            QueueError::Unstable { utilization } => {
                write!(f, "queue unstable: utilization {utilization:.4} >= 1")
            }
        }
    }
}

impl std::error::Error for QueueError {}
