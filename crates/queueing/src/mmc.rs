//! M/M/c — a pooled multi-server queue (Erlang C).
//!
//! The paper partitions each server type's load over its `Y_x` replicas
//! and models each replica as a separate M/G/1 queue (Sec. 4.4). An
//! alternative middleware architecture keeps one shared queue per server
//! type and dispatches to whichever replica is idle. For exponential
//! service this is the classic M/M/c system; its mean waiting time
//!
//! ```text
//! w = C(c, a) / (c·μ − λ),    a = λ/μ  (offered load in Erlangs)
//! ```
//!
//! with `C(c, a)` the Erlang-C waiting probability, is strictly smaller
//! than the partitioned M/M/1 wait at equal utilization — the
//! "pooling gain" quantified by the EXP-X4 ablation.

use serde::{Deserialize, Serialize};

use crate::error::QueueError;

/// An M/M/c queue: Poisson arrivals, `c` identical exponential servers,
/// one shared FCFS queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mmc {
    /// Total request arrival rate λ (per minute).
    pub arrival_rate: f64,
    /// Mean service time `1/μ` of one server (minutes).
    pub service_time_mean: f64,
    /// Number of servers `c`.
    pub servers: usize,
}

impl Mmc {
    /// Builds the queue descriptor.
    ///
    /// # Errors
    /// [`QueueError::InvalidParameter`] on non-positive parameters.
    pub fn new(
        arrival_rate: f64,
        service_time_mean: f64,
        servers: usize,
    ) -> Result<Self, QueueError> {
        if !(arrival_rate.is_finite() && arrival_rate >= 0.0) {
            return Err(QueueError::InvalidParameter {
                what: "arrival rate",
                value: arrival_rate,
            });
        }
        if !(service_time_mean.is_finite() && service_time_mean > 0.0) {
            return Err(QueueError::InvalidParameter {
                what: "service time mean",
                value: service_time_mean,
            });
        }
        if servers == 0 {
            return Err(QueueError::InvalidParameter {
                what: "server count",
                value: 0.0,
            });
        }
        Ok(Mmc {
            arrival_rate,
            service_time_mean,
            servers,
        })
    }

    /// Offered load in Erlangs, `a = λ/μ`.
    pub fn offered_load(&self) -> f64 {
        self.arrival_rate * self.service_time_mean
    }

    /// Per-server utilization `ρ = a/c`.
    pub fn utilization(&self) -> f64 {
        self.offered_load() / self.servers as f64
    }

    /// True when `ρ < 1`.
    pub fn is_stable(&self) -> bool {
        self.utilization() < 1.0
    }

    /// The Erlang-C probability that an arriving request must wait.
    ///
    /// Computed with the numerically stable recurrence on the Erlang-B
    /// blocking probability: `B(0) = 1`,
    /// `B(k) = a·B(k−1) / (k + a·B(k−1))`, then
    /// `C = B(c) / (1 − ρ·(1 − B(c)))`.
    ///
    /// # Errors
    /// [`QueueError::Unstable`] when `ρ ≥ 1`.
    pub fn waiting_probability(&self) -> Result<f64, QueueError> {
        let rho = self.utilization();
        if rho >= 1.0 {
            return Err(QueueError::Unstable { utilization: rho });
        }
        let a = self.offered_load();
        let mut b = 1.0;
        for k in 1..=self.servers {
            b = a * b / (k as f64 + a * b);
        }
        Ok(b / (1.0 - rho * (1.0 - b)))
    }

    /// Mean waiting time in the shared queue.
    ///
    /// # Errors
    /// [`QueueError::Unstable`] when `ρ ≥ 1`.
    pub fn mean_waiting_time(&self) -> Result<f64, QueueError> {
        let c = self.waiting_probability()?;
        let mu = 1.0 / self.service_time_mean;
        Ok(c / (self.servers as f64 * mu - self.arrival_rate))
    }

    /// Mean response time (waiting plus service).
    ///
    /// # Errors
    /// [`QueueError::Unstable`] when `ρ ≥ 1`.
    pub fn mean_response_time(&self) -> Result<f64, QueueError> {
        Ok(self.mean_waiting_time()? + self.service_time_mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mg1::Mg1;
    use crate::moments::ServiceMoments;

    #[test]
    fn c_equal_one_reduces_to_mm1() {
        for rho in [0.2, 0.5, 0.8, 0.95] {
            let mmc = Mmc::new(rho, 1.0, 1).unwrap();
            let mm1 = Mg1::new(rho, ServiceMoments::exponential(1.0).unwrap()).unwrap();
            let w_pool = mmc.mean_waiting_time().unwrap();
            let w_mm1 = mm1.mean_waiting_time().unwrap();
            assert!(
                (w_pool - w_mm1).abs() < 1e-12,
                "rho={rho}: {w_pool} vs {w_mm1}"
            );
            // And Erlang-C with c = 1 is just rho.
            assert!((mmc.waiting_probability().unwrap() - rho).abs() < 1e-12);
        }
    }

    #[test]
    fn erlang_c_matches_tabulated_value() {
        // Classic table value: c = 2, a = 1 (rho = 0.5) => C = 1/3.
        let mmc = Mmc::new(1.0, 1.0, 2).unwrap();
        assert!((mmc.waiting_probability().unwrap() - 1.0 / 3.0).abs() < 1e-12);
        // w = C / (c·mu - lambda) = (1/3) / (2 - 1) = 1/3.
        assert!((mmc.mean_waiting_time().unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pooling_beats_partitioning_at_equal_utilization() {
        // c servers at rho each, pooled vs c separate M/M/1 queues.
        for c in [2usize, 4, 8] {
            for rho in [0.5, 0.8] {
                let pooled = Mmc::new(rho * c as f64, 1.0, c).unwrap();
                let partitioned = Mg1::new(rho, ServiceMoments::exponential(1.0).unwrap())
                    .unwrap()
                    .mean_waiting_time()
                    .unwrap();
                let w_pool = pooled.mean_waiting_time().unwrap();
                assert!(
                    w_pool < partitioned,
                    "c={c}, rho={rho}: pooled {w_pool} !< partitioned {partitioned}"
                );
            }
        }
    }

    #[test]
    fn pooling_gain_grows_with_server_count() {
        let rho = 0.8;
        let mut last_ratio = 0.0;
        let partitioned = Mg1::new(rho, ServiceMoments::exponential(1.0).unwrap())
            .unwrap()
            .mean_waiting_time()
            .unwrap();
        for c in [2usize, 4, 8, 16] {
            let pooled = Mmc::new(rho * c as f64, 1.0, c)
                .unwrap()
                .mean_waiting_time()
                .unwrap();
            let ratio = partitioned / pooled;
            assert!(ratio > last_ratio, "gain must grow: c={c}, ratio {ratio}");
            last_ratio = ratio;
        }
        assert!(
            last_ratio > 5.0,
            "16-way pooling gain should be large: {last_ratio}"
        );
    }

    #[test]
    fn saturation_and_validation() {
        assert!(Mmc::new(2.0, 1.0, 2).unwrap().mean_waiting_time().is_err());
        assert!(!Mmc::new(2.0, 1.0, 2).unwrap().is_stable());
        assert!(Mmc::new(-1.0, 1.0, 2).is_err());
        assert!(Mmc::new(1.0, 0.0, 2).is_err());
        assert!(Mmc::new(1.0, 1.0, 0).is_err());
        // Zero arrivals: no waiting.
        let idle = Mmc::new(0.0, 1.0, 3).unwrap();
        assert_eq!(idle.mean_waiting_time().unwrap(), 0.0);
    }

    #[test]
    fn response_time_adds_service() {
        let q = Mmc::new(1.5, 1.0, 2).unwrap();
        let w = q.mean_waiting_time().unwrap();
        assert!((q.mean_response_time().unwrap() - (w + 1.0)).abs() < 1e-12);
    }
}
