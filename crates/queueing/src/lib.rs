//! Queueing-theoretic building blocks of the WFMS performance model
//! (Sec. 4.4 of the EDBT 2000 paper): service-time moment descriptors,
//! the M/G/1 Pollaczek–Khinchine waiting-time model used per server
//! replica, and the stream aggregation used when multiple server types
//! share one computer.

#![warn(missing_docs)]

pub mod aggregate;
pub mod checks;
pub mod error;
pub mod mg1;
pub mod mmc;
pub mod moments;

pub use aggregate::{merge_streams, Stream};
pub use checks::{lint_station, NEAR_SATURATION_UTILIZATION};
pub use error::QueueError;
pub use mg1::{littles_law_population, Mg1};
pub use mmc::Mmc;
pub use moments::ServiceMoments;
