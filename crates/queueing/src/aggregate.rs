//! Aggregation of several request streams onto one computer.
//!
//! Sec. 4.4 of the paper: "The generalized case for configurations where
//! multiple server types, say x and z, are assigned to the same computer
//! is handled as follows: the server-type-specific arrival rates are
//! summed up, the server types' common service time distribution is
//! computed, and these aggregate measures are fed into the M/G/1 model."
//!
//! The "common service time distribution" of a superposition of Poisson
//! streams is the arrival-rate-weighted mixture, whose raw moments are
//! the weighted averages of the component moments.

use crate::error::QueueError;
use crate::mg1::Mg1;
use crate::moments::ServiceMoments;

/// One request stream: arrival rate plus service-time moments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stream {
    /// Arrival rate of this stream (per minute).
    pub arrival_rate: f64,
    /// Service moments of requests in this stream.
    pub service: ServiceMoments,
}

/// Merges several streams into the equivalent single M/G/1 queue for a
/// shared computer: `Λ = Σ λ_i`, and mixture moments
/// `b = Σ (λ_i/Λ)·b_i`, `b^(2) = Σ (λ_i/Λ)·b_i^(2)`.
///
/// # Errors
/// * [`QueueError::InvalidParameter`] when `streams` is empty, a rate is
///   negative, or all rates are zero (the mixture is undefined).
pub fn merge_streams(streams: &[Stream]) -> Result<Mg1, QueueError> {
    if streams.is_empty() {
        return Err(QueueError::InvalidParameter {
            what: "stream count",
            value: 0.0,
        });
    }
    let mut total_rate = 0.0;
    for s in streams {
        if !(s.arrival_rate.is_finite() && s.arrival_rate >= 0.0) {
            return Err(QueueError::InvalidParameter {
                what: "arrival rate",
                value: s.arrival_rate,
            });
        }
        total_rate += s.arrival_rate;
    }
    if total_rate <= 0.0 {
        return Err(QueueError::InvalidParameter {
            what: "total arrival rate",
            value: total_rate,
        });
    }
    let mut mean = 0.0;
    let mut second = 0.0;
    for s in streams {
        let w = s.arrival_rate / total_rate;
        mean += w * s.service.mean;
        second += w * s.service.second_moment;
    }
    Mg1::new(total_rate, ServiceMoments::new(mean, second)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(rate: f64, mean: f64) -> Stream {
        Stream {
            arrival_rate: rate,
            service: ServiceMoments::exponential(mean).unwrap(),
        }
    }

    #[test]
    fn merging_identical_streams_keeps_service_moments() {
        let s = stream(0.2, 1.5);
        let merged = merge_streams(&[s, s, s]).unwrap();
        assert!((merged.arrival_rate - 0.6).abs() < 1e-12);
        assert!((merged.service.mean - 1.5).abs() < 1e-12);
        assert!((merged.service.second_moment - 4.5).abs() < 1e-12);
    }

    #[test]
    fn mixture_moments_are_rate_weighted() {
        let a = stream(1.0, 1.0); // second moment 2
        let b = stream(3.0, 2.0); // second moment 8
        let merged = merge_streams(&[a, b]).unwrap();
        assert!((merged.arrival_rate - 4.0).abs() < 1e-12);
        assert!((merged.service.mean - (0.25 * 1.0 + 0.75 * 2.0)).abs() < 1e-12);
        assert!((merged.service.second_moment - (0.25 * 2.0 + 0.75 * 8.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_streams_do_not_contribute_moments() {
        let active = stream(2.0, 1.0);
        let idle = stream(0.0, 100.0);
        let merged = merge_streams(&[active, idle]).unwrap();
        assert!((merged.service.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merged_utilization_is_sum_of_component_utilizations() {
        let a = stream(0.3, 1.0);
        let b = stream(0.2, 2.0);
        let merged = merge_streams(&[a, b]).unwrap();
        assert!((merged.utilization() - (0.3 * 1.0 + 0.2 * 2.0)).abs() < 1e-12);
    }

    #[test]
    fn sharing_a_computer_increases_waiting_over_dedicated() {
        // Two types each stable alone; combined on one machine the wait of
        // each request is at least the larger dedicated wait.
        let a = stream(0.3, 1.0);
        let b = stream(0.3, 1.0);
        let dedicated = Mg1::new(a.arrival_rate, a.service)
            .unwrap()
            .mean_waiting_time()
            .unwrap();
        let shared = merge_streams(&[a, b]).unwrap().mean_waiting_time().unwrap();
        assert!(shared > dedicated);
    }

    #[test]
    fn merge_validates_input() {
        assert!(matches!(
            merge_streams(&[]),
            Err(QueueError::InvalidParameter {
                what: "stream count",
                ..
            })
        ));
        assert!(merge_streams(&[stream(0.0, 1.0)]).is_err());
        let bad = Stream {
            arrival_rate: -1.0,
            service: ServiceMoments::exponential(1.0).unwrap(),
        };
        assert!(merge_streams(&[bad]).is_err());
    }
}
