//! The queueing/stability lint pass (`Q0xx` diagnostics).
//!
//! [`lint_station`] checks one server type's queueing station — offered
//! request rate, service-time moments, and replica count — against the
//! stability and validity conditions of the paper's M/G/1 waiting-time
//! model (Secs. 4.3–4.4): finite non-negative rates, moments satisfying
//! `E[B²] ≥ E[B]² > 0`, and per-replica utilization `ρ = λ·b / y < 1`
//! (the Pollaczek–Khinchine formula diverges at `ρ = 1`).

use wfms_diag::{codes, Diagnostic, Diagnostics, Location};

/// Per-replica utilization at or above this (but below one) is flagged
/// as near-saturation: the P-K waiting time grows as `1/(1-ρ)`, so small
/// load growth causes large waiting-time growth.
pub const NEAR_SATURATION_UTILIZATION: f64 = 0.9;

/// Lints one queueing station from raw (unvalidated) parameters.
///
/// `station` names the server type; `arrival_rate` is the aggregate
/// request rate `λ` offered to the type (requests per minute),
/// `mean_service`/`second_moment` are the service-time moments `b` and
/// `b^(2)`, and `replicas` is the configured degree `y`. The load is
/// assumed to be split uniformly over replicas (Sec. 4.3), so each
/// replica sees `λ / y`.
///
/// A station with zero replicas is skipped here — whether that is a
/// defect depends on the offered load, which is a configuration concern
/// (code `C002` in the `wfms-analysis` crate).
pub fn lint_station(
    station: &str,
    arrival_rate: f64,
    mean_service: f64,
    second_moment: f64,
    replicas: usize,
) -> Diagnostics {
    let mut out = Diagnostics::new();
    let location = || Location::ServerType {
        server_type: station.to_string(),
    };

    let rate_ok = arrival_rate.is_finite() && arrival_rate >= 0.0;
    if !rate_ok {
        out.push(Diagnostic::error(
            codes::Q_INVALID_RATE,
            location(),
            format!("request rate {arrival_rate} must be finite and non-negative"),
        ));
    }
    let mean_ok = mean_service.is_finite() && mean_service > 0.0;
    if !mean_ok {
        out.push(Diagnostic::error(
            codes::Q_INVALID_MOMENTS,
            location(),
            format!("mean service time {mean_service} must be positive and finite"),
        ));
    }
    // Jensen: E[B²] ≥ E[B]² for every distribution.
    let second_ok = second_moment.is_finite()
        && (!mean_ok || second_moment >= mean_service * mean_service * (1.0 - 1e-12));
    if !second_ok {
        out.push(Diagnostic::error(
            codes::Q_INVALID_MOMENTS,
            location(),
            format!(
                "service-time second moment {second_moment} is impossible for mean \
                 {mean_service} (needs E[B^2] >= E[B]^2)"
            ),
        ));
    }

    if rate_ok && mean_ok && second_ok && replicas > 0 && arrival_rate > 0.0 {
        let utilization = arrival_rate * mean_service / replicas as f64;
        if utilization >= 1.0 {
            out.push(Diagnostic::error(
                codes::Q_OVERLOADED,
                location(),
                format!(
                    "{replicas} replica(s) cannot sustain the load: per-replica \
                     utilization {utilization:.3} >= 1, waiting time diverges"
                ),
            ));
        } else if utilization >= NEAR_SATURATION_UTILIZATION {
            out.push(Diagnostic::warning(
                codes::Q_NEAR_SATURATION,
                location(),
                format!(
                    "per-replica utilization {utilization:.3} is close to saturation; \
                     waiting time is fragile under load growth"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mg1::Mg1;
    use crate::moments::ServiceMoments;

    #[test]
    fn healthy_station_is_silent() {
        let d = lint_station("WFS", 0.5, 1.0, 2.0, 2);
        assert!(d.is_empty(), "{d}");
    }

    #[test]
    fn overloaded_station_is_an_error() {
        let d = lint_station("WFS", 3.0, 1.0, 2.0, 2);
        assert_eq!(d.distinct_codes(), vec![codes::Q_OVERLOADED.to_string()]);
        assert!(d.has_errors());
    }

    #[test]
    fn near_saturation_is_a_warning() {
        let d = lint_station("AS", 1.9, 1.0, 2.0, 2);
        assert_eq!(
            d.distinct_codes(),
            vec![codes::Q_NEAR_SATURATION.to_string()]
        );
        assert!(!d.has_errors());
    }

    #[test]
    fn invalid_rate_and_moments_reported_together() {
        let d = lint_station("CS", f64::NAN, -1.0, 0.5, 1);
        let found = d.distinct_codes();
        assert!(
            found.contains(&codes::Q_INVALID_RATE.to_string()),
            "{found:?}"
        );
        assert!(
            found.contains(&codes::Q_INVALID_MOMENTS.to_string()),
            "{found:?}"
        );
    }

    #[test]
    fn impossible_second_moment_is_an_error() {
        // E[B²] < E[B]² violates Jensen's inequality.
        let d = lint_station("AS", 0.1, 2.0, 1.0, 1);
        assert_eq!(
            d.distinct_codes(),
            vec![codes::Q_INVALID_MOMENTS.to_string()]
        );
        assert!(ServiceMoments::new(2.0, 1.0).is_err());
    }

    #[test]
    fn zero_replicas_or_zero_load_is_not_a_queueing_finding() {
        assert!(lint_station("AS", 1.0, 1.0, 2.0, 0).is_empty());
        assert!(lint_station("AS", 0.0, 1.0, 2.0, 1).is_empty());
    }

    #[test]
    fn lint_verdict_matches_mg1_stability() {
        for (rate, replicas) in [(0.3, 1), (0.99, 1), (1.2, 2), (2.5, 2)] {
            let service = ServiceMoments::exponential(1.0).unwrap();
            let per_replica = Mg1::new(rate / replicas as f64, service).unwrap();
            let d = lint_station("AS", rate, 1.0, 2.0, replicas);
            assert_eq!(
                per_replica.is_stable(),
                d.with_code(codes::Q_OVERLOADED).count() == 0,
                "rate {rate}, replicas {replicas}"
            );
        }
    }
}
