//! Service-time moment descriptors.
//!
//! The paper models each server "only very coarsely by considering only
//! its mean service time per service request and the second moment of
//! this metric" (Sec. 4.4). [`ServiceMoments`] is exactly that pair, with
//! constructors for the common distributions and for empirical samples
//! (the online-statistics calibration path of Sec. 7.1).

use serde::{Deserialize, Serialize};

use crate::error::QueueError;

/// First two moments of a service-time distribution, in minutes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceMoments {
    /// Mean service time `b`.
    pub mean: f64,
    /// Second moment `b^(2) = E[B²]`.
    pub second_moment: f64,
}

impl ServiceMoments {
    /// Builds a descriptor from explicit moments.
    ///
    /// # Errors
    /// [`QueueError::InvalidParameter`] when the mean is non-positive or
    /// the second moment is smaller than `mean²` (impossible for any
    /// distribution, by Jensen's inequality).
    pub fn new(mean: f64, second_moment: f64) -> Result<Self, QueueError> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(QueueError::InvalidParameter {
                what: "service time mean",
                value: mean,
            });
        }
        if !(second_moment.is_finite() && second_moment >= mean * mean * (1.0 - 1e-12)) {
            return Err(QueueError::InvalidParameter {
                what: "service time second moment",
                value: second_moment,
            });
        }
        Ok(ServiceMoments {
            mean,
            second_moment,
        })
    }

    /// Exponential service with the given mean (`b^(2) = 2b²`).
    ///
    /// # Errors
    /// [`QueueError::InvalidParameter`] on a non-positive mean.
    pub fn exponential(mean: f64) -> Result<Self, QueueError> {
        Self::new(mean, 2.0 * mean * mean)
    }

    /// Deterministic service (`b^(2) = b²`).
    ///
    /// # Errors
    /// [`QueueError::InvalidParameter`] on a non-positive mean.
    pub fn deterministic(mean: f64) -> Result<Self, QueueError> {
        Self::new(mean, mean * mean)
    }

    /// Erlang-`k` service with the given mean
    /// (`b^(2) = b²·(k+1)/k`).
    ///
    /// # Errors
    /// [`QueueError::InvalidParameter`] on a non-positive mean or `k = 0`.
    pub fn erlang(k: usize, mean: f64) -> Result<Self, QueueError> {
        if k == 0 {
            return Err(QueueError::InvalidParameter {
                what: "Erlang stages",
                value: 0.0,
            });
        }
        let kf = k as f64;
        Self::new(mean, mean * mean * (kf + 1.0) / kf)
    }

    /// Descriptor with a given mean and squared coefficient of variation
    /// (`b^(2) = b²·(1 + scv)`).
    ///
    /// # Errors
    /// [`QueueError::InvalidParameter`] on bad arguments.
    pub fn with_scv(mean: f64, scv: f64) -> Result<Self, QueueError> {
        if !(scv.is_finite() && scv >= 0.0) {
            return Err(QueueError::InvalidParameter {
                what: "service time SCV",
                value: scv,
            });
        }
        Self::new(mean, mean * mean * (1.0 + scv))
    }

    /// Empirical moments from observed service times (the calibration
    /// path: "both of these server-type-specific values can be easily
    /// estimated by collecting and evaluating online statistics").
    ///
    /// # Errors
    /// [`QueueError::InvalidParameter`] for an empty or degenerate sample.
    pub fn from_samples(samples: &[f64]) -> Result<Self, QueueError> {
        if samples.is_empty() {
            return Err(QueueError::InvalidParameter {
                what: "sample count",
                value: 0.0,
            });
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let second = samples.iter().map(|x| x * x).sum::<f64>() / n;
        Self::new(mean, second)
    }

    /// Variance `E[B²] - E[B]²` (clamped at zero against round-off).
    pub fn variance(&self) -> f64 {
        (self.second_moment - self.mean * self.mean).max(0.0)
    }

    /// Squared coefficient of variation `Var/b²`.
    pub fn scv(&self) -> f64 {
        self.variance() / (self.mean * self.mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_moments() {
        let m = ServiceMoments::exponential(2.0).unwrap();
        assert_eq!(m.mean, 2.0);
        assert_eq!(m.second_moment, 8.0);
        assert!((m.scv() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_moments() {
        let m = ServiceMoments::deterministic(2.0).unwrap();
        assert_eq!(m.second_moment, 4.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.scv(), 0.0);
    }

    #[test]
    fn erlang_moments_interpolate() {
        let e1 = ServiceMoments::erlang(1, 3.0).unwrap();
        let exp = ServiceMoments::exponential(3.0).unwrap();
        assert!((e1.second_moment - exp.second_moment).abs() < 1e-12);
        let e4 = ServiceMoments::erlang(4, 3.0).unwrap();
        assert!((e4.scv() - 0.25).abs() < 1e-12);
        assert!(ServiceMoments::erlang(0, 1.0).is_err());
    }

    #[test]
    fn with_scv_constructor() {
        let m = ServiceMoments::with_scv(2.0, 0.5).unwrap();
        assert!((m.scv() - 0.5).abs() < 1e-12);
        assert!(ServiceMoments::with_scv(2.0, -0.1).is_err());
    }

    #[test]
    fn from_samples_estimates_moments() {
        let m = ServiceMoments::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert!((m.mean - 2.0).abs() < 1e-12);
        assert!((m.second_moment - 14.0 / 3.0).abs() < 1e-12);
        assert!(ServiceMoments::from_samples(&[]).is_err());
    }

    #[test]
    fn rejects_impossible_moments() {
        // Second moment below mean² violates Jensen.
        assert!(ServiceMoments::new(2.0, 3.0).is_err());
        assert!(ServiceMoments::new(0.0, 1.0).is_err());
        assert!(ServiceMoments::new(-1.0, 1.0).is_err());
        assert!(ServiceMoments::new(1.0, f64::NAN).is_err());
    }
}
