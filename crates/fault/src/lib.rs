//! Deterministic failpoints for the WFMS analysis stack.
//!
//! A *failpoint* is a named injection site planted in production code via
//! [`point!`]. When the global registry is disabled (the default) a site
//! costs exactly one relaxed atomic load — the same contract as
//! `wfms-obs` recording. When enabled, a site consults its configured
//! [`FaultMode`] and a deterministic seeded schedule to decide whether to
//! fire on this particular call.
//!
//! Site names are **stable identifiers**, exactly like obs span names and
//! diagnostic codes: tests, `WFMS_FAULTS` specs, and CI chaos jobs refer
//! to them by string, so renaming one is a breaking change. The planted
//! sites are documented in DESIGN.md ("The robustness contract").
//!
//! # Injection modes
//!
//! | mode | spec syntax | effect at the site |
//! |------|-------------|--------------------|
//! | error | `error` | the site returns [`Injection::Error`]; the caller maps it to its native error type (e.g. `NotConverged`) |
//! | NaN | `nan` | the site returns [`Injection::Nan`]; the caller poisons its result with `f64::NAN` |
//! | latency | `delay:<millis>ms` | the site sleeps, then proceeds normally |
//!
//! # Determinism
//!
//! Every site keeps a call counter. Whether call `k` fires is decided by
//! hashing `(seed, site-name, k)` with a splitmix64-style mixer and
//! comparing against the configured rate — no wall-clock, no global RNG,
//! so a given `(WFMS_FAULT_SEED, WFMS_FAULTS)` pair replays identically
//! across runs and thread interleavings that preserve per-site call order.
//! Rate `1.0` fires on every call regardless of seed.
//!
//! # Configuration
//!
//! Programmatic:
//!
//! ```
//! wfms_fault::configure("linalg.gauss-seidel", wfms_fault::FaultMode::Error, 1.0);
//! assert!(matches!(
//!     wfms_fault::check("linalg.gauss-seidel"),
//!     Some(wfms_fault::Injection::Error)
//! ));
//! wfms_fault::clear();
//! ```
//!
//! Environment (read once, on first registry access):
//!
//! ```text
//! WFMS_FAULTS="linalg.sparse-gs=error@1.0,performability.fold=nan@0.25"
//! WFMS_FAULT_SEED=7
//! ```
//!
//! Entries are separated by `,` or `;`; each is `site=mode[@rate]` with
//! `rate` defaulting to `1.0`. Malformed entries never panic: the parse
//! outcome is kept in [`env_status`] so a CLI can warn about typos.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What a fired failpoint asks the call site to do.
///
/// `Delay` never reaches the caller: the sleep happens inside
/// [`check`] and the call then proceeds as if the site had not fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Return the site's native error type.
    Error,
    /// Poison the site's numeric result with `f64::NAN`.
    Nan,
}

/// Configured behavior of a failpoint site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultMode {
    /// Fire as [`Injection::Error`].
    Error,
    /// Fire as [`Injection::Nan`].
    Nan,
    /// Sleep for the given duration, then proceed normally.
    Delay(Duration),
}

/// Per-site configuration plus call/fired accounting.
struct Site {
    mode: FaultMode,
    /// Firing probability in `[0, 1]`; `1.0` fires on every call.
    rate: f64,
    calls: AtomicU64,
    fired: AtomicU64,
}

/// Counters for one site, as returned by [`snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStats {
    /// Stable site name.
    pub site: String,
    /// Times the site was reached while the registry was enabled.
    pub calls: u64,
    /// Times the site actually fired.
    pub fired: u64,
}

struct Registry {
    enabled: AtomicBool,
    seed: AtomicU64,
    sites: Mutex<HashMap<String, Site>>,
    /// `Ok(n)` = `n` entries parsed from `WFMS_FAULTS`; `Err(msg)` on a
    /// malformed spec (valid entries before the bad one still apply).
    env_status: Result<usize, String>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    GLOBAL.get_or_init(|| {
        let mut reg = Registry {
            enabled: AtomicBool::new(false),
            seed: AtomicU64::new(0),
            sites: Mutex::new(HashMap::new()),
            env_status: Ok(0),
        };
        if let Ok(seed) = std::env::var("WFMS_FAULT_SEED") {
            if let Ok(parsed) = seed.trim().parse::<u64>() {
                reg.seed = AtomicU64::new(parsed);
            }
        }
        if let Ok(spec) = std::env::var("WFMS_FAULTS") {
            reg.env_status = apply_spec_to(&mut reg, &spec);
        }
        reg
    })
}

/// Parse a `WFMS_FAULTS`-style spec into the given registry, enabling it
/// when at least one entry applies.
fn apply_spec_to(reg: &mut Registry, spec: &str) -> Result<usize, String> {
    let sites = reg.sites.get_mut().unwrap_or_else(|e| e.into_inner());
    let mut applied = 0usize;
    for entry in spec.split([',', ';']) {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (site, config) = entry
            .split_once('=')
            .ok_or_else(|| format!("fault entry `{entry}` is missing `=`"))?;
        let (mode_str, rate_str) = match config.split_once('@') {
            Some((m, r)) => (m, Some(r)),
            None => (config, None),
        };
        let mode = parse_mode(mode_str.trim())
            .ok_or_else(|| format!("fault entry `{entry}` has unknown mode `{mode_str}`"))?;
        let rate = match rate_str {
            Some(r) => r
                .trim()
                .parse::<f64>()
                .ok()
                .filter(|r| (0.0..=1.0).contains(r))
                .ok_or_else(|| format!("fault entry `{entry}` has invalid rate `{r}`"))?,
            None => 1.0,
        };
        sites.insert(
            site.trim().to_string(),
            Site {
                mode,
                rate,
                calls: AtomicU64::new(0),
                fired: AtomicU64::new(0),
            },
        );
        applied += 1;
    }
    if applied > 0 {
        *reg.enabled.get_mut() = true;
    }
    Ok(applied)
}

fn parse_mode(s: &str) -> Option<FaultMode> {
    match s {
        "error" => Some(FaultMode::Error),
        "nan" => Some(FaultMode::Nan),
        _ => {
            let millis = s.strip_prefix("delay:")?.strip_suffix("ms")?;
            let millis = millis.trim().parse::<u64>().ok()?;
            Some(FaultMode::Delay(Duration::from_millis(millis)))
        }
    }
}

/// splitmix64 finalizer — a well-mixed 64-bit hash of the schedule key.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn schedule_fires(seed: u64, site: &str, call: u64, rate: f64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    let mut h = seed ^ 0x5743_464d_5346_4c54; // "WCFMSFLT" tag
    for b in site.bytes() {
        h = mix(h ^ u64::from(b));
    }
    h = mix(h ^ call);
    // Map the top 53 bits to [0, 1).
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    unit < rate
}

/// Whether any fault injection is active. One relaxed atomic load; this is
/// the only cost a planted site pays in normal operation (plus a lazy
/// one-time registry init on the very first call process-wide).
#[inline]
pub fn is_enabled() -> bool {
    registry().enabled.load(Ordering::Relaxed)
}

/// Evaluate the failpoint `site`. Returns `None` when the registry is
/// disabled, the site is unconfigured, or the deterministic schedule says
/// this call passes through. [`FaultMode::Delay`] sleeps here and then
/// returns `None`.
pub fn check(site: &str) -> Option<Injection> {
    let reg = registry();
    if !reg.enabled.load(Ordering::Relaxed) {
        return None;
    }
    let (mode, fire) = {
        let sites = reg.sites.lock().unwrap_or_else(|e| e.into_inner());
        let entry = sites.get(site)?;
        let call = entry.calls.fetch_add(1, Ordering::Relaxed);
        let fire = schedule_fires(reg.seed.load(Ordering::Relaxed), site, call, entry.rate);
        if fire {
            entry.fired.fetch_add(1, Ordering::Relaxed);
        }
        (entry.mode, fire)
    };
    if !fire {
        return None;
    }
    match mode {
        FaultMode::Error => Some(Injection::Error),
        FaultMode::Nan => Some(Injection::Nan),
        FaultMode::Delay(d) => {
            std::thread::sleep(d);
            None
        }
    }
}

/// Configure (or reconfigure) a site and enable the registry.
/// `rate` is clamped to `[0, 1]`.
pub fn configure(site: &str, mode: FaultMode, rate: f64) {
    let reg = registry();
    let mut sites = reg.sites.lock().unwrap_or_else(|e| e.into_inner());
    sites.insert(
        site.to_string(),
        Site {
            mode,
            rate: rate.clamp(0.0, 1.0),
            calls: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        },
    );
    reg.enabled.store(true, Ordering::Relaxed);
}

/// Remove every configured site and disable the registry. Planted sites
/// go back to the single-relaxed-load fast path.
pub fn clear() {
    let reg = registry();
    reg.sites.lock().unwrap_or_else(|e| e.into_inner()).clear();
    reg.enabled.store(false, Ordering::Relaxed);
}

/// Re-enable a registry that still has sites configured (after [`disable`]).
pub fn enable() {
    registry().enabled.store(true, Ordering::Relaxed);
}

/// Disable the registry without forgetting site configurations.
pub fn disable() {
    registry().enabled.store(false, Ordering::Relaxed);
}

/// Override the schedule seed (also settable via `WFMS_FAULT_SEED`).
pub fn set_seed(seed: u64) {
    registry().seed.store(seed, Ordering::Relaxed);
}

/// Times `site` has fired since configuration (or [`reset_counts`]).
pub fn fired(site: &str) -> u64 {
    let reg = registry();
    let sites = reg.sites.lock().unwrap_or_else(|e| e.into_inner());
    sites
        .get(site)
        .map_or(0, |s| s.fired.load(Ordering::Relaxed))
}

/// Times `site` was reached while enabled, fired or not.
pub fn calls(site: &str) -> u64 {
    let reg = registry();
    let sites = reg.sites.lock().unwrap_or_else(|e| e.into_inner());
    sites
        .get(site)
        .map_or(0, |s| s.calls.load(Ordering::Relaxed))
}

/// Zero the call/fired counters of every site (configurations stay).
pub fn reset_counts() {
    let reg = registry();
    let sites = reg.sites.lock().unwrap_or_else(|e| e.into_inner());
    for site in sites.values() {
        site.calls.store(0, Ordering::Relaxed);
        site.fired.store(0, Ordering::Relaxed);
    }
}

/// Per-site counters, sorted by site name for stable output.
pub fn snapshot() -> Vec<SiteStats> {
    let reg = registry();
    let sites = reg.sites.lock().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<SiteStats> = sites
        .iter()
        .map(|(name, s)| SiteStats {
            site: name.clone(),
            calls: s.calls.load(Ordering::Relaxed),
            fired: s.fired.load(Ordering::Relaxed),
        })
        .collect();
    out.sort_by(|a, b| a.site.cmp(&b.site));
    out
}

/// Outcome of parsing `WFMS_FAULTS` at registry init: `Ok(entries)` or
/// `Err(message)` describing the first malformed entry. Lets a CLI warn
/// on typos instead of silently running without the intended faults.
pub fn env_status() -> Result<usize, String> {
    registry().env_status.clone()
}

/// Plant a named failpoint. Expands to [`check`]; the expression has type
/// `Option<Injection>` so call sites match on the outcome:
///
/// ```
/// # fn solve() -> Result<f64, String> {
/// if let Some(injection) = wfms_fault::point!("my-stage") {
///     match injection {
///         wfms_fault::Injection::Error => return Err("injected".into()),
///         wfms_fault::Injection::Nan => return Ok(f64::NAN),
///     }
/// }
/// # Ok(1.0) }
/// ```
#[macro_export]
macro_rules! point {
    ($name:expr) => {
        $crate::check($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so tests that configure sites must
    // not assume exclusive ownership; each uses its own site names and
    // restores the disabled state where it matters.

    #[test]
    fn disabled_registry_injects_nothing() {
        clear();
        assert_eq!(check("test.disabled-site"), None);
        assert!(!is_enabled());
    }

    #[test]
    fn unconfigured_site_is_transparent_even_when_enabled() {
        configure("test.some-other-site", FaultMode::Error, 1.0);
        assert_eq!(check("test.never-configured"), None);
        clear();
    }

    #[test]
    fn full_rate_error_fires_every_call() {
        configure("test.full-error", FaultMode::Error, 1.0);
        for _ in 0..10 {
            assert_eq!(check("test.full-error"), Some(Injection::Error));
        }
        assert_eq!(fired("test.full-error"), 10);
        assert_eq!(calls("test.full-error"), 10);
        clear();
    }

    #[test]
    fn nan_mode_reports_nan_injection() {
        configure("test.nan-site", FaultMode::Nan, 1.0);
        assert_eq!(check("test.nan-site"), Some(Injection::Nan));
        clear();
    }

    #[test]
    fn zero_rate_never_fires_but_counts_calls() {
        configure("test.zero-rate", FaultMode::Error, 0.0);
        for _ in 0..20 {
            assert_eq!(check("test.zero-rate"), None);
        }
        assert_eq!(calls("test.zero-rate"), 20);
        assert_eq!(fired("test.zero-rate"), 0);
        clear();
    }

    #[test]
    fn partial_rate_schedule_is_deterministic_and_seed_sensitive() {
        let pattern = |seed: u64| -> Vec<bool> {
            (0..64)
                .map(|call| schedule_fires(seed, "test.partial", call, 0.5))
                .collect()
        };
        assert_eq!(pattern(1), pattern(1), "same seed must replay identically");
        assert_ne!(pattern(1), pattern(2), "different seeds should differ");
        let fired = pattern(1).iter().filter(|f| **f).count();
        assert!(
            (16..=48).contains(&fired),
            "rate 0.5 should fire roughly half of 64 calls, fired {fired}"
        );
    }

    #[test]
    fn delay_mode_sleeps_then_passes_through() {
        configure(
            "test.delay",
            FaultMode::Delay(Duration::from_millis(5)),
            1.0,
        );
        let start = std::time::Instant::now();
        assert_eq!(check("test.delay"), None);
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(fired("test.delay"), 1);
        clear();
    }

    #[test]
    fn reset_counts_keeps_configuration() {
        configure("test.reset", FaultMode::Error, 1.0);
        let _ = check("test.reset");
        reset_counts();
        assert_eq!(calls("test.reset"), 0);
        assert_eq!(check("test.reset"), Some(Injection::Error));
        clear();
    }

    #[test]
    fn snapshot_lists_sites_sorted() {
        configure("test.snap-b", FaultMode::Error, 1.0);
        configure("test.snap-a", FaultMode::Nan, 0.5);
        let snap = snapshot();
        let names: Vec<&str> = snap
            .iter()
            .map(|s| s.site.as_str())
            .filter(|s| s.starts_with("test.snap-"))
            .collect();
        assert_eq!(names, vec!["test.snap-a", "test.snap-b"]);
        clear();
    }

    #[test]
    fn spec_parsing_covers_modes_rates_and_errors() {
        let fresh = || Registry {
            enabled: AtomicBool::new(false),
            seed: AtomicU64::new(0),
            sites: Mutex::new(HashMap::new()),
            env_status: Ok(0),
        };

        let mut reg = fresh();
        let n = apply_spec_to(
            &mut reg,
            "a.site=error, b.site=nan@0.25; c.site=delay:10ms@0.5",
        )
        .expect("valid spec");
        assert_eq!(n, 3);
        assert!(*reg.enabled.get_mut());
        let sites = reg.sites.get_mut().unwrap();
        assert_eq!(sites["a.site"].mode, FaultMode::Error);
        assert_eq!(sites["a.site"].rate, 1.0);
        assert_eq!(sites["b.site"].rate, 0.25);
        assert_eq!(
            sites["c.site"].mode,
            FaultMode::Delay(Duration::from_millis(10))
        );

        for bad in [
            "no-equals",
            "a.site=frobnicate",
            "a.site=error@1.5",
            "a.site=error@abc",
            "a.site=delay:xyzms",
        ] {
            let mut reg = fresh();
            assert!(
                apply_spec_to(&mut reg, bad).is_err(),
                "spec `{bad}` should fail"
            );
        }

        let mut reg = fresh();
        assert_eq!(apply_spec_to(&mut reg, "  , ; ").expect("empty"), 0);
        assert!(!*reg.enabled.get_mut(), "empty spec must not enable");
    }

    #[test]
    fn point_macro_expands_to_check() {
        configure("test.macro", FaultMode::Error, 1.0);
        assert_eq!(point!("test.macro"), Some(Injection::Error));
        clear();
    }
}
