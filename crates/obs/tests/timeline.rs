//! Timeline journal contract: per-thread tracks, bounded buffers with
//! disclosed drops, valid Chrome Trace Format export, and isolation
//! from disabled recorders.
//!
//! The timeline is process-global, so every test here serializes on one
//! mutex and resets the journal before recording.

use std::sync::Mutex;

use wfms_obs::timeline;
use wfms_obs::{TimelinePhase, TimelineSnapshot};

static TIMELINE_LOCK: Mutex<()> = Mutex::new(());

fn with_timeline<T>(f: impl FnOnce() -> T) -> T {
    let _guard = TIMELINE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    timeline::reset();
    timeline::enable();
    let out = f();
    timeline::disable();
    timeline::reset();
    out
}

#[test]
fn disabled_timeline_records_nothing() {
    let _guard = TIMELINE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    timeline::reset();
    assert!(!timeline::is_enabled());
    wfms_obs::instant("decision-accept");
    {
        let _span = wfms_obs::span!("uniformize");
    }
    assert!(timeline::take().is_empty());
}

#[test]
fn global_spans_emit_begin_end_even_with_recorder_disabled() {
    let snapshot = with_timeline(|| {
        assert!(!wfms_obs::is_enabled(), "span recorder must stay disabled");
        {
            let _outer = wfms_obs::span!("uniformize");
            let _inner = wfms_obs::span!("linear-solve");
        }
        wfms_obs::instant("decision-accept");
        timeline::take()
    });
    let events: Vec<_> = snapshot
        .tracks
        .iter()
        .flat_map(|t| t.events.iter())
        .collect();
    assert_eq!(events.len(), 5);
    let phases: Vec<TimelinePhase> = events.iter().map(|e| e.phase).collect();
    assert_eq!(
        phases,
        vec![
            TimelinePhase::Begin,
            TimelinePhase::Begin,
            TimelinePhase::End,
            TimelinePhase::End,
            TimelinePhase::Instant,
        ]
    );
    assert_eq!(events[0].name, "uniformize");
    assert_eq!(events[1].name, "linear-solve");
    assert_eq!(events[2].name, "linear-solve");
    assert_eq!(events[3].name, "uniformize");
    assert_eq!(snapshot.dropped_events(), 0);
}

#[test]
fn local_recorders_never_feed_the_timeline() {
    let snapshot = with_timeline(|| {
        let recorder = wfms_obs::Recorder::new();
        recorder.enable();
        {
            let _span = recorder.span("uniformize");
        }
        assert_eq!(recorder.take().spans.len(), 1);
        timeline::take()
    });
    assert!(snapshot.is_empty());
}

#[test]
fn per_track_timestamps_are_monotonic_and_threads_get_own_tracks() {
    let snapshot = with_timeline(|| {
        {
            let _main = wfms_obs::span!("assess");
        }
        std::thread::Builder::new()
            .name("worker-a".to_string())
            .spawn(|| {
                let _span = wfms_obs::span!("mg1-waiting");
                wfms_obs::instant("decision-reject");
            })
            .unwrap()
            .join()
            .unwrap();
        timeline::take()
    });
    assert_eq!(snapshot.tracks.len(), 2);
    let worker = snapshot
        .tracks
        .iter()
        .find(|t| t.label == "worker-a")
        .expect("spawned thread gets its own labelled track");
    assert_eq!(worker.events.len(), 3);
    for track in &snapshot.tracks {
        for pair in track.events.windows(2) {
            assert!(pair[0].ts_ns <= pair[1].ts_ns, "per-track monotonicity");
        }
    }
}

#[test]
fn event_cap_drops_are_disclosed_not_silent() {
    // The cap is read from the environment once per process, so drive
    // the bounded-buffer path by emitting more events than the default
    // cap would be impractical here; instead assert the accounting
    // invariant: kept + dropped equals emitted.
    let emitted = 1000_u64;
    let snapshot = with_timeline(|| {
        for _ in 0..emitted {
            wfms_obs::instant("decision-reject");
        }
        timeline::take()
    });
    let kept: u64 = snapshot.tracks.iter().map(|t| t.events.len() as u64).sum();
    assert_eq!(kept + snapshot.dropped_events(), emitted);
}

#[test]
fn take_leaves_timeline_empty_but_tracks_reusable() {
    with_timeline(|| {
        wfms_obs::instant("decision-accept");
        assert_eq!(timeline::take().event_count(), 1);
        assert_eq!(timeline::take().event_count(), 0);
        wfms_obs::instant("decision-accept");
        assert_eq!(timeline::take().event_count(), 1);
    });
}

/// Chrome Trace Format validity: the export must parse as JSON, carry a
/// `traceEvents` array whose entries all have `name`/`ph`/`pid`/`tid`
/// (and `ts` for non-metadata events), use only the B/E/i/M phases, and
/// keep begin/end balanced per track — exactly what Perfetto needs to
/// load the file.
#[test]
fn chrome_trace_export_is_valid_and_balanced() {
    let snapshot = with_timeline(|| {
        {
            let _outer = wfms_obs::span!("assess");
            let _inner = wfms_obs::span!("avail-steady-state");
        }
        wfms_obs::instant("decision-winner");
        std::thread::spawn(|| {
            let _span = wfms_obs::span!("performability");
        })
        .join()
        .unwrap();
        timeline::take()
    });
    assert_valid_chrome_trace(&snapshot);
}

fn assert_valid_chrome_trace(snapshot: &TimelineSnapshot) {
    use serde_json::Value;
    let json = wfms_obs::to_chrome_trace(snapshot);
    let value: Value = serde_json::from_str(&json).expect("export parses as JSON");
    let Value::Object(root) = &value else {
        panic!("chrome trace root must be an object");
    };
    let Some(Value::Array(events)) = root.get("traceEvents") else {
        panic!("chrome trace must carry a traceEvents array");
    };
    let expected = snapshot.event_count() + snapshot.tracks.len();
    assert_eq!(events.len(), expected, "one entry per event plus metadata");
    let mut depth_by_tid: std::collections::BTreeMap<String, i64> = Default::default();
    for event in events {
        let Value::Object(fields) = event else {
            panic!("every trace event must be an object");
        };
        let ph = match fields.get("ph") {
            Some(Value::String(ph)) => ph.as_str(),
            other => panic!("missing/invalid ph: {other:?}"),
        };
        assert!(
            matches!(ph, "B" | "E" | "i" | "M"),
            "unexpected phase {ph:?}"
        );
        assert!(matches!(fields.get("name"), Some(Value::String(_))));
        assert!(matches!(fields.get("pid"), Some(Value::Number(_))));
        let tid = match fields.get("tid") {
            Some(Value::Number(n)) => format!("{n:?}"),
            other => panic!("missing/invalid tid: {other:?}"),
        };
        if ph != "M" {
            assert!(
                matches!(fields.get("ts"), Some(Value::Number(_))),
                "timed events need a ts"
            );
        }
        let depth = depth_by_tid.entry(tid).or_insert(0);
        match ph {
            "B" => *depth += 1,
            "E" => {
                *depth -= 1;
                assert!(*depth >= 0, "E without matching B on a track");
            }
            _ => {}
        }
    }
    for (tid, depth) in depth_by_tid {
        assert_eq!(depth, 0, "unbalanced begin/end on track {tid}");
    }
}
