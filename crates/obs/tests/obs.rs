//! Integration tests for wfms-obs: concurrent span collection,
//! histogram bucket boundaries, JSON round-trip, and the disabled
//! (no-op) recorder.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::thread;

use wfms_obs::{
    from_json, histogram_bucket_bounds, histogram_bucket_index, render_text, to_json, FieldValue,
    Recorder,
};

#[test]
fn concurrent_recorders_keep_nesting_per_thread() {
    let recorder = Arc::new(Recorder::new());
    recorder.enable();
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let recorder = Arc::clone(&recorder);
        handles.push(thread::spawn(move || {
            for _ in 0..50 {
                let mut outer = recorder.span("outer");
                outer.record("thread", t);
                {
                    let mut inner = recorder.span("inner");
                    inner.record("thread", t);
                }
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    let snapshot = recorder.take();
    assert_eq!(snapshot.spans.len(), 4 * 50 * 2);
    assert_eq!(snapshot.dropped_spans, 0);

    // Ids are unique across threads.
    let ids: BTreeSet<u64> = snapshot.spans.iter().map(|s| s.id).collect();
    assert_eq!(ids.len(), snapshot.spans.len());

    // Every inner span's parent is an outer span opened by the SAME
    // thread — nesting never crosses thread boundaries.
    for span in snapshot.spans.iter().filter(|s| s.name == "inner") {
        let parent_id = span.parent.expect("inner span has a parent");
        let parent = snapshot
            .spans
            .iter()
            .find(|s| s.id == parent_id)
            .expect("parent span recorded");
        assert_eq!(parent.name, "outer");
        assert_eq!(parent.field("thread"), span.field("thread"));
    }
    // Outer spans are roots.
    for span in snapshot.spans.iter().filter(|s| s.name == "outer") {
        assert_eq!(span.parent, None);
    }
}

#[test]
fn span_close_order_is_child_before_parent() {
    let recorder = Recorder::new();
    recorder.enable();
    {
        let _a = recorder.span("a");
        {
            let _b = recorder.span("b");
            {
                let _c = recorder.span("c");
            }
        }
    }
    let names: Vec<String> = recorder.take().spans.into_iter().map(|s| s.name).collect();
    assert_eq!(names, ["c", "b", "a"]);
}

#[test]
fn histogram_bucket_boundaries_are_powers_of_two() {
    // Bucket 0 is exactly {0}; bucket k >= 1 is [2^(k-1), 2^k - 1].
    assert_eq!(histogram_bucket_index(0), 0);
    assert_eq!(histogram_bucket_index(1), 1);
    for k in 1..64usize {
        let low = 1u64 << (k - 1);
        assert_eq!(histogram_bucket_index(low), k, "low edge of bucket {k}");
        let high = if k == 63 { u64::MAX } else { (1u64 << k) - 1 };
        if k < 63 {
            assert_eq!(histogram_bucket_index(high), k, "high edge of bucket {k}");
            assert_eq!(
                histogram_bucket_index(high + 1),
                k + 1,
                "next bucket after {k}"
            );
        }
    }
    assert_eq!(histogram_bucket_index(u64::MAX), 64);
    assert_eq!(histogram_bucket_bounds(64).1, u64::MAX);

    let recorder = Recorder::new();
    recorder.enable();
    for value in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024] {
        recorder.histogram("markov.linear-solve.iterations", value);
    }
    let snapshot = recorder.take();
    let hist = &snapshot.histograms["markov.linear-solve.iterations"];
    assert_eq!(hist.count, 9);
    assert_eq!(hist.min, 0);
    assert_eq!(hist.max, 1024);
    // 0->b0, 1->b1, {2,3}->b2, {4,7}->b3, 8->b4, 1023->b10, 1024->b11.
    assert_eq!(
        hist.buckets,
        vec![(0, 1), (1, 1), (2, 2), (3, 2), (4, 1), (10, 1), (11, 1)]
    );
}

#[test]
fn json_round_trip_of_exported_trace() {
    let recorder = Recorder::new();
    recorder.enable();
    {
        let mut span = recorder.span("uniformize");
        span.record("states", 42_usize);
        span.record("rate", 0.5);
        span.record("method", "sor");
        span.record("converged", true);
        {
            let _inner = recorder.span("linear-solve");
        }
    }
    recorder.counter("perf.mg1.evaluations", 9);
    recorder.gauge("markov.sor.spectral-radius-estimate", 0.37);
    recorder.histogram("sim.events", 2048);
    let snapshot = recorder.take();

    let json = to_json(&snapshot);
    let parsed = from_json(&json).expect("exported trace parses back");
    assert_eq!(parsed, snapshot);

    let uniformize = parsed
        .spans
        .iter()
        .find(|s| s.name == "uniformize")
        .unwrap();
    assert_eq!(uniformize.field("states"), Some(&FieldValue::U64(42)));
    assert_eq!(uniformize.field("rate"), Some(&FieldValue::F64(0.5)));
    assert_eq!(
        uniformize.field("method"),
        Some(&FieldValue::Str("sor".to_string()))
    );
    assert_eq!(uniformize.field("converged"), Some(&FieldValue::Bool(true)));

    // The text sink renders the same snapshot without panicking and
    // includes the stage names.
    let text = render_text(&parsed);
    assert!(text.contains("uniformize"));
    assert!(text.contains("linear-solve"));
}

#[test]
fn disabled_recorder_collects_nothing() {
    let recorder = Recorder::new();
    assert!(!recorder.is_enabled());
    {
        let mut span = recorder.span("assess");
        assert!(!span.is_recording());
        span.record("candidate", "[1, 1, 1]");
        let _inner = recorder.span("mg1-waiting");
    }
    recorder.counter("perf.mg1.evaluations", 5);
    recorder.gauge("markov.sor.spectral-radius-estimate", 0.9);
    recorder.histogram("sim.events", 100);
    let snapshot = recorder.take();
    assert!(snapshot.is_empty());
    assert_eq!(snapshot.spans.len(), 0);
    assert_eq!(snapshot.dropped_spans, 0);

    // Re-enabling starts collecting again on the same recorder.
    recorder.enable();
    {
        let _span = recorder.span("assess");
    }
    assert_eq!(recorder.take().spans.len(), 1);
}

#[test]
fn global_recorder_span_macro_records_fields() {
    // Single test touching the global recorder in this binary (other
    // tests use local recorders), so no cross-test interference.
    wfms_obs::global().reset();
    wfms_obs::enable();
    {
        let _span = wfms_obs::span!("steady-state", states = 12_usize, method = "gauss-seidel");
    }
    wfms_obs::disable();
    let snapshot = wfms_obs::global().take();
    assert_eq!(snapshot.span_count("steady-state"), 1);
    assert_eq!(
        snapshot.spans[0].field("method"),
        Some(&FieldValue::Str("gauss-seidel".to_string()))
    );
}
