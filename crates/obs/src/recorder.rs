//! Span recording: a thread-safe [`Recorder`] collecting nested, timed
//! [`SpanRecord`]s plus the metrics registry defined in
//! [`crate::metrics`].
//!
//! A [`Span`] is an RAII guard: it captures a monotonic start time when
//! opened and writes a [`SpanRecord`] into the recorder when dropped.
//! Nesting is tracked per thread — each thread keeps a stack of the span
//! ids it currently has open, so spans opened on different threads never
//! parent each other spuriously.
//!
//! When the recorder is disabled, opening a span is a single relaxed
//! atomic load and the guard holds no data at all (the no-op sink).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::metrics::{HistogramSnapshot, MetricsRegistry};

/// Default cap on collected spans; protects long search loops from
/// unbounded memory growth. Spans past the cap are counted but dropped
/// (disclosed as `dropped_spans`). Override per process with the
/// `WFMS_OBS_SPAN_CAP` environment variable (read once, at first use),
/// or per recorder with [`Recorder::with_span_cap`].
pub const SPAN_CAP: usize = 100_000;

fn span_cap_from_env() -> usize {
    static CAP: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("WFMS_OBS_SPAN_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|cap| *cap > 0)
            .unwrap_or(SPAN_CAP)
    })
}

/// A field value attached to a span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    /// Unsigned integer field (counts, sizes, iterations).
    U64(u64),
    /// Signed integer field.
    I64(i64),
    /// Floating-point field (rates, residuals, probabilities).
    F64(f64),
    /// Boolean field (accept/reject decisions, goal checks).
    Bool(bool),
    /// Free-form text field (method names, chart names).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:.6}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// A named field recorded on a span, in insertion order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanField {
    /// Field name (`states`, `iterations`, `residual`, …).
    pub name: String,
    /// Field value.
    pub value: FieldValue,
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Sequential id, unique within a snapshot; ids increase in span
    /// *open* order.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Stable stage name (see the crate docs for the naming scheme).
    pub name: String,
    /// Offset of the span open relative to the recorder epoch, in
    /// nanoseconds of monotonic time.
    pub start_ns: u64,
    /// Wall time between open and close, in nanoseconds.
    pub duration_ns: u64,
    /// Fields recorded on the span, in insertion order.
    pub fields: Vec<SpanField>,
}

impl SpanRecord {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields
            .iter()
            .find(|f| f.name == name)
            .map(|f| &f.value)
    }
}

/// A point-in-time export of everything a [`Recorder`] collected.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceSnapshot {
    /// Completed spans in close order (children close before parents).
    pub spans: Vec<SpanRecord>,
    /// Spans dropped because [`SPAN_CAP`] was reached.
    pub dropped_spans: u64,
    /// Monotonic counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges, by name.
    pub gauges: BTreeMap<String, f64>,
    /// Power-of-two bucket histograms, by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TraceSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// Number of spans with the given stage name.
    pub fn span_count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }
}

struct Inner {
    spans: Vec<SpanRecord>,
    dropped_spans: u64,
    next_id: u64,
    metrics: MetricsRegistry,
}

impl Inner {
    fn new() -> Self {
        Inner {
            spans: Vec::new(),
            dropped_spans: 0,
            next_id: 0,
            metrics: MetricsRegistry::default(),
        }
    }
}

thread_local! {
    // Per-(recorder, thread) stack of open span ids. Keyed by recorder
    // address so unit tests with local recorders don't interleave with
    // the global one.
    static OPEN_STACKS: RefCell<Vec<(usize, Vec<u64>)>> = const { RefCell::new(Vec::new()) };
}

fn stack_push(recorder: usize, id: u64) {
    OPEN_STACKS.with(|stacks| {
        let mut stacks = stacks.borrow_mut();
        if let Some((_, stack)) = stacks.iter_mut().find(|(key, _)| *key == recorder) {
            stack.push(id);
        } else {
            stacks.push((recorder, vec![id]));
        }
    });
}

fn stack_top(recorder: usize) -> Option<u64> {
    OPEN_STACKS.with(|stacks| {
        stacks
            .borrow()
            .iter()
            .find(|(key, _)| *key == recorder)
            .and_then(|(_, stack)| stack.last().copied())
    })
}

fn stack_pop(recorder: usize, id: u64) {
    OPEN_STACKS.with(|stacks| {
        let mut stacks = stacks.borrow_mut();
        if let Some(pos) = stacks.iter().position(|(key, _)| *key == recorder) {
            // Guards drop in reverse open order within a thread, but be
            // tolerant of out-of-order drops: remove the matching id.
            let stack = &mut stacks[pos].1;
            if let Some(idx) = stack.iter().rposition(|open| *open == id) {
                stack.remove(idx);
            }
            if stack.is_empty() {
                stacks.remove(pos);
            }
        }
    });
}

/// Thread-safe collector of spans and metrics.
///
/// A recorder starts **disabled**; every instrumentation call checks a
/// relaxed atomic and returns immediately while disabled. Enable it,
/// run the instrumented code, then [`take`](Recorder::take) or
/// [`snapshot`](Recorder::snapshot) the collected trace.
pub struct Recorder {
    enabled: AtomicBool,
    epoch: Instant,
    span_cap: usize,
    // Only the global recorder feeds the process-wide timeline journal
    // (crate::timeline); local test recorders keep this false so their
    // spans never leak into a concurrently recorded timeline.
    timeline_hook: bool,
    inner: Mutex<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates a disabled recorder. The span cap comes from
    /// `WFMS_OBS_SPAN_CAP` when set, else [`SPAN_CAP`].
    pub fn new() -> Self {
        Recorder {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            span_cap: span_cap_from_env(),
            timeline_hook: false,
            inner: Mutex::new(Inner::new()),
        }
    }

    /// Creates a disabled recorder with an explicit span cap (test
    /// hook; production code uses `WFMS_OBS_SPAN_CAP`).
    pub fn with_span_cap(span_cap: usize) -> Self {
        let mut recorder = Self::new();
        recorder.span_cap = span_cap.max(1);
        recorder
    }

    /// Creates the process-global recorder: identical to [`new`](Self::new)
    /// except that its spans also emit timeline begin/end events while
    /// [`crate::timeline`] is enabled.
    pub(crate) fn new_global() -> Self {
        let mut recorder = Self::new();
        recorder.timeline_hook = true;
        recorder
    }

    /// The span cap in effect for this recorder.
    pub fn span_cap(&self) -> usize {
        self.span_cap
    }

    /// Starts collecting.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Stops collecting; already-recorded data is kept.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// True while collecting.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Drops all collected spans and metrics (enabled state unchanged).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        *inner = Inner::new();
    }

    fn key(&self) -> usize {
        self as *const Recorder as usize
    }

    /// Opens a span. The returned guard records the span when dropped;
    /// while the recorder is disabled the guard is inert. On the global
    /// recorder the guard additionally emits timeline begin/end events
    /// while [`crate::timeline`] is enabled — even when span recording
    /// itself is off, so `--timeline` works without `--trace`.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        let timeline = self.timeline_hook && crate::timeline::is_enabled();
        if timeline {
            crate::timeline::emit(name, crate::timeline::TimelinePhase::Begin);
        }
        let timeline = timeline.then_some(name);
        if !self.is_enabled() {
            return Span {
                active: None,
                timeline,
            };
        }
        let id = {
            let mut inner = self.inner.lock().unwrap();
            let id = inner.next_id;
            inner.next_id += 1;
            id
        };
        let parent = stack_top(self.key());
        stack_push(self.key(), id);
        Span {
            active: Some(ActiveSpan {
                recorder: self,
                id,
                parent,
                name,
                opened: Instant::now(),
                fields: Vec::new(),
            }),
            timeline,
        }
    }

    /// Adds `delta` to the named counter (no-op while disabled).
    pub fn counter(&self, name: &'static str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        self.inner.lock().unwrap().metrics.counter(name, delta);
    }

    /// Sets the named gauge to `value` (no-op while disabled).
    pub fn gauge(&self, name: &'static str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.inner.lock().unwrap().metrics.gauge(name, value);
    }

    /// Records `value` into the named power-of-two histogram (no-op
    /// while disabled).
    pub fn histogram(&self, name: &'static str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        self.inner.lock().unwrap().metrics.histogram(name, value);
    }

    /// Copies out everything collected so far without clearing it.
    pub fn snapshot(&self) -> TraceSnapshot {
        let inner = self.inner.lock().unwrap();
        TraceSnapshot {
            spans: inner.spans.clone(),
            dropped_spans: inner.dropped_spans,
            counters: inner.metrics.counters_snapshot(),
            gauges: inner.metrics.gauges_snapshot(),
            histograms: inner.metrics.histograms_snapshot(),
        }
    }

    /// Takes everything collected so far, leaving the recorder empty.
    pub fn take(&self) -> TraceSnapshot {
        let mut inner = self.inner.lock().unwrap();
        let taken = std::mem::replace(&mut *inner, Inner::new());
        TraceSnapshot {
            spans: taken.spans,
            dropped_spans: taken.dropped_spans,
            counters: taken.metrics.counters_snapshot(),
            gauges: taken.metrics.gauges_snapshot(),
            histograms: taken.metrics.histograms_snapshot(),
        }
    }

    fn finish_span(&self, span: ActiveSpan<'_>) {
        stack_pop(self.key(), span.id);
        let start_ns = span
            .opened
            .duration_since(self.epoch)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        let duration_ns = span.opened.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let record = SpanRecord {
            id: span.id,
            parent: span.parent,
            name: span.name.to_string(),
            start_ns,
            duration_ns,
            fields: span.fields,
        };
        let mut inner = self.inner.lock().unwrap();
        if inner.spans.len() < self.span_cap {
            inner.spans.push(record);
        } else {
            inner.dropped_spans += 1;
        }
    }
}

struct ActiveSpan<'a> {
    recorder: &'a Recorder,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    opened: Instant,
    fields: Vec<SpanField>,
}

/// RAII guard for an open span; see [`Recorder::span`] and the
/// [`span!`](crate::span) macro. Dropping the guard closes the span.
pub struct Span<'a> {
    active: Option<ActiveSpan<'a>>,
    // Set when this span owes the timeline an End event at drop time
    // (independent of `active`: timeline emission also runs while the
    // span recorder itself is disabled).
    timeline: Option<&'static str>,
}

impl Span<'_> {
    /// Records a field on the span (no-op when the recorder was
    /// disabled at open time). Re-recording a name overwrites its value.
    pub fn record(&mut self, name: &str, value: impl Into<FieldValue>) {
        if let Some(active) = self.active.as_mut() {
            let value = value.into();
            if let Some(existing) = active.fields.iter_mut().find(|f| f.name == name) {
                existing.value = value;
            } else {
                active.fields.push(SpanField {
                    name: name.to_string(),
                    value,
                });
            }
        }
    }

    /// True when this span is actually collecting (recorder enabled at
    /// open time).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            active.recorder.finish_span(active);
        }
        if let Some(name) = self.timeline.take() {
            crate::timeline::emit(name, crate::timeline::TimelinePhase::End);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        let recorder = Recorder::new();
        {
            let mut span = recorder.span("uniformize");
            assert!(!span.is_recording());
            span.record("states", 10_u64);
        }
        recorder.counter("c", 1);
        recorder.gauge("g", 1.0);
        recorder.histogram("h", 1);
        assert!(recorder.snapshot().is_empty());
    }

    #[test]
    fn nesting_records_parent_links() {
        let recorder = Recorder::new();
        recorder.enable();
        {
            let _outer = recorder.span("outer");
            {
                let _inner = recorder.span("inner");
            }
        }
        let snapshot = recorder.take();
        assert_eq!(snapshot.spans.len(), 2);
        // Close order: inner first.
        assert_eq!(snapshot.spans[0].name, "inner");
        assert_eq!(snapshot.spans[1].name, "outer");
        assert_eq!(snapshot.spans[0].parent, Some(snapshot.spans[1].id));
        assert_eq!(snapshot.spans[1].parent, None);
    }

    #[test]
    fn record_overwrites_existing_field() {
        let recorder = Recorder::new();
        recorder.enable();
        {
            let mut span = recorder.span("linear-solve");
            span.record("iterations", 1_u64);
            span.record("iterations", 7_u64);
        }
        let snapshot = recorder.take();
        assert_eq!(snapshot.spans[0].fields.len(), 1);
        assert_eq!(
            snapshot.spans[0].field("iterations"),
            Some(&FieldValue::U64(7))
        );
    }

    #[test]
    fn span_cap_drops_and_discloses() {
        let recorder = Recorder::with_span_cap(2);
        assert_eq!(recorder.span_cap(), 2);
        recorder.enable();
        for _ in 0..5 {
            let _span = recorder.span("linear-solve");
        }
        let snapshot = recorder.take();
        assert_eq!(snapshot.spans.len(), 2);
        assert_eq!(snapshot.dropped_spans, 3);
    }

    #[test]
    fn take_clears_collected_data() {
        let recorder = Recorder::new();
        recorder.enable();
        recorder.counter("c", 3);
        let first = recorder.take();
        assert_eq!(first.counters.get("c"), Some(&3));
        assert!(recorder.take().is_empty());
    }
}
