//! Named counters, gauges, and power-of-two bucket histograms.
//!
//! Histograms use 65 fixed buckets: bucket 0 holds the value `0`, and
//! bucket `k >= 1` holds values in `[2^(k-1), 2^k - 1]` — i.e. the
//! bucket index of `v > 0` is `64 - v.leading_zeros()`. Recording is a
//! single index computation and an integer increment; no floats and no
//! allocation on the hot path once a histogram exists.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Number of histogram buckets (bucket 0 for zero, then one per power
/// of two up to `u64::MAX`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for `value`: 0 for zero, else `64 - leading_zeros`.
#[inline]
pub fn histogram_bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `(low, high)` value range covered by bucket `index`.
pub fn histogram_bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
    if index == 0 {
        (0, 0)
    } else if index == HISTOGRAM_BUCKETS - 1 {
        (1u64 << (index - 1), u64::MAX)
    } else {
        (1u64 << (index - 1), (1u64 << index) - 1)
    }
}

/// Exported state of one power-of-two histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Sparse non-empty buckets as `(bucket_index, count)` pairs.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean of recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[histogram_bucket_index(value)] += 1;
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, n)| **n > 0)
                .map(|(i, n)| (i as u32, *n))
                .collect(),
        }
    }
}

/// Registry of named counters, gauges, and histograms. Not itself
/// synchronised — the owning [`Recorder`](crate::Recorder) guards it
/// with its mutex.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// Adds `delta` to the named counter, creating it at zero first.
    pub fn counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets the named gauge (last write wins).
    pub fn gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Records `value` into the named histogram.
    pub fn histogram(&mut self, name: &'static str, value: u64) {
        self.histograms
            .entry(name)
            .or_insert_with(Histogram::new)
            .record(value);
    }

    /// Counters by owned name, for export.
    pub fn counters_snapshot(&self) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }

    /// Gauges by owned name, for export.
    pub fn gauges_snapshot(&self) -> BTreeMap<String, f64> {
        self.gauges
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }

    /// Histograms by owned name, for export.
    pub fn histograms_snapshot(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.histograms
            .iter()
            .map(|(k, v)| (k.to_string(), v.snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bounds() {
        for index in 0..HISTOGRAM_BUCKETS {
            let (low, high) = histogram_bucket_bounds(index);
            assert_eq!(histogram_bucket_index(low), index);
            assert_eq!(histogram_bucket_index(high), index);
        }
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let mut registry = MetricsRegistry::default();
        for v in [0, 1, 2, 3, 4, 1024] {
            registry.histogram("h", v);
        }
        let snap = &registry.histograms_snapshot()["h"];
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1034);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 1024);
        // 0 -> bucket 0; 1 -> 1; 2,3 -> 2; 4 -> 3; 1024 -> 11.
        assert_eq!(snap.buckets, vec![(0, 1), (1, 1), (2, 2), (3, 1), (11, 1)]);
    }

    #[test]
    fn counter_accumulates_and_gauge_overwrites() {
        let mut registry = MetricsRegistry::default();
        registry.counter("c", 2);
        registry.counter("c", 3);
        registry.gauge("g", 1.0);
        registry.gauge("g", 2.5);
        assert_eq!(registry.counters_snapshot()["c"], 5);
        assert_eq!(registry.gauges_snapshot()["g"], 2.5);
    }
}
