//! # wfms-obs
//!
//! Structured tracing, solver metrics, and profiling hooks for the
//! analysis stack.
//!
//! The paper's method is a pipeline of numerical stages — uniformized
//! CTMC first-passage analysis (Sec. 4), birth–death steady-state solves
//! (Sec. 5), performability reward sums (Sec. 6), and the greedy
//! configuration loop (Sec. 7). This crate makes those stages visible:
//!
//! * a lightweight **span** API ([`span!`]) with nesting, monotonic
//!   timing, and thread-safe collection into a global [`Recorder`];
//! * a **metrics registry** of named counters, gauges, and power-of-two
//!   bucket histograms (no allocation on the disabled hot path);
//! * pluggable **sinks**: a text tree renderer ([`render_text`]), a JSON
//!   exporter ([`to_json`] / [`from_json`]), and the implicit no-op sink —
//!   when recording is disabled every instrumentation point reduces to a
//!   single relaxed atomic load.
//!
//! Recording is **off by default**. The CLI enables it for
//! `--trace[=text|json]` and `wfms profile`; the bench harness enables it
//! to emit `BENCH_obs.json` stage metrics.
//!
//! A second, independent layer — the [`timeline`] journal — records
//! *when* each stage ran and on *which* thread: per-thread event buffers
//! of span begin/end plus [`instant`] markers, exportable as Chrome
//! Trace Format JSON ([`to_chrome_trace`]) viewable in Perfetto. It is
//! also off by default (one relaxed atomic load per emission point when
//! disabled), bounded per track, and discloses its `dropped_events`
//! count; the CLI enables it for `--timeline <file>`. Only the global
//! recorder's spans feed the timeline. The stable instant-event
//! vocabulary lives in DESIGN.md §7 next to the decision-journal
//! reasons.
//!
//! ## Stable stage names
//!
//! Like the `W`/`M`/`Q`/`C` diagnostic codes of `wfms-diag`, span and
//! metric names are a stable interface (tests and CI assert on them):
//!
//! | span | emitted by | key fields |
//! |---|---|---|
//! | `workflow-analysis` | `wfms-perf` | `chart`, `states` |
//! | `turnaround-distribution` | `wfms-perf` | `states`, `epsilon` |
//! | `first-passage` | `wfms-markov` | `states`, `solver` |
//! | `uniformize` | `wfms-markov` | `states`, `rate` |
//! | `transient-distribution` | `wfms-markov` | `terms`, `time` |
//! | `reward-uniformized` | `wfms-markov` | `z_max`, `residual_mass` |
//! | `linear-solve` | `wfms-markov` | `n`, `iterations`, `residual`, `spectral_radius_est` |
//! | `steady-state` | `wfms-markov` | `states`, `method`, `iterations` |
//! | `avail-build` | `wfms-avail` | `states`, `types`, `backend` |
//! | `avail-steady-state` | `wfms-avail` | `states`, `backend` |
//! | `avail-product-form` | `wfms-avail` | `states`, `types` |
//! | `mg1-waiting` | `wfms-perf` | `types`, `evaluations` |
//! | `performability` | `wfms-performability` | `states`, `degraded`, `serving`, `pruned` (ε-truncated fold only) |
//! | `assess` | `wfms-config` | `candidate`, `w_max`, `availability` |
//! | `delta-assess` | `wfms-config` | `candidate`, `moved-type` (one span per availability solve answered by patching a cached neighbour's marginals) |
//! | `search-candidate` | `wfms-config` | `candidate`, `accepted` |
//! | `greedy-search` / `exhaustive-search` / `bnb-search` / `annealing-search` | `wfms-config` | `evaluations`, `cost` |
//! | `simulate` | `wfms-sim` | `events`, `warmup_minutes`, `measured_minutes` |
//! | `solver-fallback` | `wfms-markov` / `wfms-config` | `from` (one span per fallback-ladder escalation) |
//!
//! Counters and histograms are dotted lowercase
//! (`<crate>.<subject>.<aspect>`). The pipeline metrics:
//!
//! | metric | kind | emitted by | meaning |
//! |---|---|---|---|
//! | `markov.linear-solve.iterations` | histogram | `wfms-markov` | Gauss–Seidel/SOR sweeps per linear solve |
//! | `markov.sor.spectral-radius-estimate` | gauge | `wfms-markov` | last estimated iteration-matrix spectral radius |
//! | `markov.power-iteration.iterations` | histogram | `wfms-markov` | power-iteration steps per steady-state fallback |
//! | `markov.steady-state.iterations` | histogram | `wfms-markov` | sweeps per CTMC steady-state solve |
//! | `markov.poisson.truncation-steps` | histogram | `wfms-markov` | uniformization truncation depth `z_max` |
//! | `markov.poisson.terms` | histogram | `wfms-markov` | Poisson weights kept per transient solve |
//! | `avail.state-space.size` | gauge | `wfms-avail` | `∏(Y_x+1)` states of the last availability model |
//! | `perf.mg1.evaluations` | counter | `wfms-perf` | M/G/1 waiting-time kernel evaluations |
//! | `performability.state-evaluations` | counter | `wfms-performability` | system states evaluated by a fold |
//! | `performability.degraded-evaluations` | counter | `wfms-performability` | evaluated states that were degraded |
//! | `performability.pruned-states` | counter | `wfms-performability` | states the ε-truncated fold never evaluated (`wfms profile --check` gates on it staying nonzero) |
//! | `config.assessments` | counter | `wfms-config` | candidate assessments completed |
//! | `config.annealing.accepted` | counter | `wfms-config` | accepted Metropolis moves per annealing run |
//! | `config.annealing.rejected` | counter | `wfms-config` | rejected Metropolis moves per annealing run |
//! | `sim.events` | counter | `wfms-sim` | discrete events processed per simulation run |
//!
//! The assessment engine of `wfms-config` adds five stable metric
//! names of its own:
//!
//! | metric | kind | emitted by | meaning |
//! |---|---|---|---|
//! | `engine.cache-hit` | counter | `wfms-config` | lookups answered from the engine's degraded-state, birth–death-block, or availability-solution caches |
//! | `engine.cache-miss` | counter | `wfms-config` | lookups that had to compute (one per first evaluation of a state, block, or candidate) |
//! | `engine.parallel-candidates` | gauge | `wfms-config` | size of the last candidate batch dispatched to the worker pool |
//! | `engine.delta-assess` | counter | `wfms-config` | product-form availability solves answered by patching one marginal of a cached neighbour (each paired with a `delta-assess` span) |
//! | `engine.screen-reject` | counter | `wfms-config` | candidates the adaptive-ε screen proved infeasible without an exact assessment |
//!
//! The graceful-degradation layer (DESIGN.md §10) adds four more; the
//! first two must stay **zero** on a clean run, and `wfms profile
//! --check` gates on exactly that:
//!
//! | metric | kind | emitted by | meaning |
//! |---|---|---|---|
//! | `solver.fallback` | counter | `wfms-markov` / `wfms-config` | solves that escalated down a fallback ladder (e.g. sparse Gauss–Seidel → dense LU), each paired with a `solver-fallback` span |
//! | `config.quarantined` | counter | `wfms-config` | candidates whose assessment failed irrecoverably and were skipped by a search |
//! | `config.degraded-assessments` | counter | `wfms-config` | assessments that carried a `DegradationReport` |
//! | `solver.budget-exhausted` | counter | `wfms-markov` | resilient-solve stages that ran out of iterations before converging |
//!
//! The serving resilience layer (DESIGN.md §13) adds five more. The
//! first two must stay **zero** on a clean daemon run — a nonzero
//! value means a request panicked or a tenant's circuit breaker
//! opened — and the CI chaos job gates on exactly that:
//!
//! | metric | kind | emitted by | meaning |
//! |---|---|---|---|
//! | `serve.worker-panic` | counter | `wfms-serve` | requests whose handler panicked and was contained by the worker watchdog (the pool stays at full strength) |
//! | `serve.breaker-open` | counter | `wfms-serve` | open (or re-open) edges of a per-tenant circuit breaker |
//! | `serve.accept-error` | counter | `wfms-serve` | transient accept-loop failures, retried under bounded backoff |
//! | `serve.deadline-exceeded` | counter | `wfms-serve` | requests abandoned at the per-request compute deadline |
//! | `serve.shed-undelivered` | counter | `wfms-serve` | shed connections whose `overloaded` response could not be delivered (client never read, or the shed lane was saturated) |
//!
//! ```
//! wfms_obs::global().reset();
//! wfms_obs::enable();
//! {
//!     let mut outer = wfms_obs::span!("uniformize", states = 42_u64);
//!     outer.record("rate", 0.5);
//!     let _inner = wfms_obs::span!("linear-solve", n = 42_u64);
//! }
//! wfms_obs::counter("markov.linear-solve.iterations", 17);
//! wfms_obs::disable();
//! let snapshot = wfms_obs::global().take();
//! assert_eq!(snapshot.spans.len(), 2);
//! let json = wfms_obs::to_json(&snapshot);
//! assert_eq!(wfms_obs::from_json(&json).unwrap(), snapshot);
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod recorder;
pub mod sink;
pub mod timeline;

pub use metrics::{histogram_bucket_bounds, histogram_bucket_index, HistogramSnapshot};
pub use recorder::{FieldValue, Recorder, Span, SpanField, SpanRecord, TraceSnapshot};
pub use sink::{aggregate_stages, from_json, render_text, to_json, StageSummary};
pub use timeline::{to_chrome_trace, TimelineEvent, TimelinePhase, TimelineSnapshot};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-wide recorder used by [`span!`] and the free helpers.
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(Recorder::new_global)
}

/// Turns global recording on.
pub fn enable() {
    global().enable();
}

/// Turns global recording off (instrumentation reverts to the no-op sink).
pub fn disable() {
    global().disable();
}

/// True when the global recorder is collecting.
pub fn is_enabled() -> bool {
    global().is_enabled()
}

/// Copies out everything the global recorder has collected so far
/// without draining it. This is the live export long-running processes
/// (the `wfms serve` metrics endpoint) serve repeatedly; one-shot
/// consumers that want reset-on-read semantics use
/// [`Recorder::take`] via [`global`] instead.
pub fn snapshot() -> TraceSnapshot {
    global().snapshot()
}

/// Adds `delta` to the named global counter (no-op while disabled).
pub fn counter(name: &'static str, delta: u64) {
    global().counter(name, delta);
}

/// Sets the named global gauge (no-op while disabled).
pub fn gauge(name: &'static str, value: f64) {
    global().gauge(name, value);
}

/// Records `value` into the named global power-of-two histogram (no-op
/// while disabled).
pub fn histogram(name: &'static str, value: u64) {
    global().histogram(name, value);
}

/// Opens a span on the global recorder. Prefer the [`span!`] macro, which
/// also records fields.
pub fn span_named(name: &'static str) -> Span<'static> {
    global().span(name)
}

/// Records a zero-duration marker on the current thread's timeline
/// track (no-op while the [`timeline`] is disabled — one relaxed atomic
/// load). Use the stable names from the DESIGN.md §7 vocabulary.
pub fn instant(name: &'static str) {
    timeline::instant(name);
}

/// Opens a named span on the global [`Recorder`], optionally recording
/// `key = value` fields, and returns the guard. The span closes (and its
/// duration is recorded) when the guard drops; bind it to a named
/// variable, not `_`.
///
/// ```
/// let _span = wfms_obs::span!("uniformize", states = 17_usize, rate = 0.5);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let mut __wfms_obs_span = $crate::global().span($name);
        $(__wfms_obs_span.record(stringify!($key), $value);)+
        __wfms_obs_span
    }};
}
