//! Timeline journal: per-thread event buffers exportable as Chrome
//! Trace Format JSON (loadable at `ui.perfetto.dev`).
//!
//! The span [`Recorder`](crate::Recorder) aggregates — it answers "how
//! much time went into `avail-steady-state` in total". The timeline
//! answers "*when* did each solve run, and on *which* worker thread":
//! every span open/close (and every [`instant`] marker) becomes a
//! timestamped event on the emitting thread's own track, so a parallel
//! candidate batch renders as interleaved bars across the rayon worker
//! tracks.
//!
//! Contract, matching spans and failpoints:
//!
//! * **Off by default**; when disabled, an emission point costs one
//!   relaxed atomic load and touches no other state.
//! * **Per-thread buffers**: each thread appends to its own
//!   fixed-capacity buffer, so recording threads never contend on a
//!   shared lock (the per-track lock is uncontended while recording —
//!   the drain side only takes it in [`take`]/[`snapshot`]).
//! * **Bounded memory**: at most [`EVENT_CAP`] events per track
//!   (override with `WFMS_OBS_EVENT_CAP`); events past the cap are
//!   counted in the disclosed `dropped_events`, never silently lost.
//! * **Monotonic timestamps**: nanoseconds since the first
//!   [`enable`], from a monotonic clock, so per-track event times are
//!   non-decreasing.
//!
//! The timeline is process-global (like the failpoint registry): only
//! the global recorder's spans feed it, so unit tests driving local
//! [`Recorder`](crate::Recorder)s stay isolated.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-track event capacity. Override with the
/// `WFMS_OBS_EVENT_CAP` environment variable (read once per process).
pub const EVENT_CAP: usize = 262_144;

/// What kind of timeline event was emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelinePhase {
    /// A span opened (Chrome trace phase `B`).
    Begin,
    /// A span closed (Chrome trace phase `E`).
    End,
    /// A point event with no duration (Chrome trace phase `i`).
    Instant,
}

/// One timeline event on a thread's track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Stable event name (a span stage name or an instant-event name
    /// from the DESIGN.md §7 vocabulary).
    pub name: &'static str,
    /// Begin / End / Instant.
    pub phase: TimelinePhase,
    /// Nanoseconds since the timeline epoch (first [`enable`]).
    pub ts_ns: u64,
}

/// Everything one thread recorded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrackSnapshot {
    /// Track id, assigned in thread-registration order; doubles as the
    /// Chrome trace `tid`.
    pub track: u64,
    /// Thread name when the thread had one, else `thread-<id>`.
    pub label: String,
    /// Events in emission order (per-track timestamps non-decreasing).
    pub events: Vec<TimelineEvent>,
    /// Events dropped on this track because the cap was reached.
    pub dropped_events: u64,
}

/// A point-in-time export of every thread's track, sorted by track id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimelineSnapshot {
    /// Per-thread tracks, ascending by `track`.
    pub tracks: Vec<TrackSnapshot>,
}

impl TimelineSnapshot {
    /// Total events dropped across all tracks (0 means the export is
    /// complete).
    pub fn dropped_events(&self) -> u64 {
        self.tracks.iter().map(|t| t.dropped_events).sum()
    }

    /// Total events kept across all tracks.
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// True when nothing was recorded (and nothing was dropped).
    pub fn is_empty(&self) -> bool {
        self.event_count() == 0 && self.dropped_events() == 0
    }
}

struct Track {
    id: u64,
    label: String,
    data: Mutex<TrackData>,
}

#[derive(Default)]
struct TrackData {
    events: Vec<TimelineEvent>,
    dropped: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TRACK: AtomicU64 = AtomicU64::new(0);
// Bumped by reset(); threads re-register lazily when their cached track
// belongs to a previous generation, so a stale thread-local can never
// write into (or resurrect) a cleared registry entry.
static GENERATION: AtomicU64 = AtomicU64::new(0);
static REGISTRY: Mutex<Vec<Arc<Track>>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static LOCAL_TRACK: RefCell<Option<(u64, Arc<Track>)>> = const { RefCell::new(None) };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn event_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("WFMS_OBS_EVENT_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|cap| *cap > 0)
            .unwrap_or(EVENT_CAP)
    })
}

/// Starts collecting timeline events (process-wide).
pub fn enable() {
    let _ = epoch();
    ENABLED.store(true, Ordering::Release);
}

/// Stops collecting; already-recorded events are kept until [`take`] or
/// [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// True while the timeline is collecting. This is the single relaxed
/// atomic load every emission point pays while disabled.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drops every track (enabled state unchanged). Threads re-register on
/// their next emission.
pub fn reset() {
    GENERATION.fetch_add(1, Ordering::Relaxed);
    REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
}

fn register_thread() -> Arc<Track> {
    let id = NEXT_TRACK.fetch_add(1, Ordering::Relaxed);
    let label = std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("thread-{id}"));
    let track = Arc::new(Track {
        id,
        label,
        data: Mutex::new(TrackData::default()),
    });
    REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(Arc::clone(&track));
    track
}

/// Records an event on the current thread's track. Callers must have
/// checked [`is_enabled`] (the function re-checks, so a lost race with
/// [`disable`] merely records one trailing event).
pub(crate) fn emit(name: &'static str, phase: TimelinePhase) {
    if !is_enabled() {
        return;
    }
    let ts_ns = epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    let generation = GENERATION.load(Ordering::Relaxed);
    LOCAL_TRACK.with(|cell| {
        let mut slot = cell.borrow_mut();
        let track = match slot.as_ref() {
            Some((cached_generation, track)) if *cached_generation == generation => {
                Arc::clone(track)
            }
            _ => {
                let track = register_thread();
                *slot = Some((generation, Arc::clone(&track)));
                track
            }
        };
        let mut data = track
            .data
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if data.events.len() < event_cap() {
            data.events.push(TimelineEvent { name, phase, ts_ns });
        } else {
            data.dropped += 1;
        }
    });
}

/// Records a zero-duration marker event on the current thread's track
/// (no-op while the timeline is disabled — one relaxed atomic load).
pub fn instant(name: &'static str) {
    emit(name, TimelinePhase::Instant);
}

/// Takes every track's events, leaving the timeline empty (tracks stay
/// registered, so long-lived worker threads keep their ids).
pub fn take() -> TimelineSnapshot {
    drain(true)
}

/// Copies every track's events without clearing them.
pub fn snapshot() -> TimelineSnapshot {
    drain(false)
}

fn drain(clear: bool) -> TimelineSnapshot {
    let registry = REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut tracks: Vec<TrackSnapshot> = registry
        .iter()
        .map(|track| {
            let mut data = track
                .data
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let (events, dropped_events) = if clear {
                (
                    std::mem::take(&mut data.events),
                    std::mem::replace(&mut data.dropped, 0),
                )
            } else {
                (data.events.clone(), data.dropped)
            };
            TrackSnapshot {
                track: track.id,
                label: track.label.clone(),
                events,
                dropped_events,
            }
        })
        .collect();
    tracks.sort_by_key(|t| t.track);
    TimelineSnapshot { tracks }
}

fn escape_json(text: &str, out: &mut String) {
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders a snapshot as Chrome Trace Format JSON (the object form with
/// a `traceEvents` array), directly loadable in Perfetto. Each track
/// becomes a `tid` under `pid` 1 with a `thread_name` metadata event;
/// timestamps are microseconds with nanosecond fraction. The total
/// dropped-event count is disclosed under `otherData`.
pub fn to_chrome_trace(snapshot: &TimelineSnapshot) -> String {
    let mut out = String::with_capacity(64 + snapshot.event_count() * 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":\"");
    out.push_str(&snapshot.dropped_events().to_string());
    out.push_str("\"},\"traceEvents\":[");
    let mut first = true;
    let push_sep = |out: &mut String, first: &mut bool| {
        if *first {
            *first = false;
        } else {
            out.push(',');
        }
    };
    for track in &snapshot.tracks {
        push_sep(&mut out, &mut first);
        out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
        out.push_str(&track.track.to_string());
        out.push_str(",\"args\":{\"name\":\"");
        escape_json(&track.label, &mut out);
        out.push_str("\"}}");
        for event in &track.events {
            push_sep(&mut out, &mut first);
            out.push_str("{\"name\":\"");
            escape_json(event.name, &mut out);
            out.push_str("\",\"ph\":\"");
            out.push_str(match event.phase {
                TimelinePhase::Begin => "B",
                TimelinePhase::End => "E",
                TimelinePhase::Instant => "i",
            });
            out.push_str("\",\"ts\":");
            out.push_str(&format!(
                "{}.{:03}",
                event.ts_ns / 1_000,
                event.ts_ns % 1_000
            ));
            out.push_str(",\"pid\":1,\"tid\":");
            out.push_str(&track.track.to_string());
            if event.phase == TimelinePhase::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            out.push('}');
        }
    }
    out.push_str("]}");
    out
}
