//! Trace sinks: text tree rendering, JSON export/import, and per-stage
//! aggregation for `wfms profile` and the bench harness.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::recorder::{SpanRecord, TraceSnapshot};

/// Serialises a snapshot as pretty-printed JSON.
pub fn to_json(snapshot: &TraceSnapshot) -> String {
    serde_json::to_string_pretty(snapshot).expect("trace snapshot serialises")
}

/// Parses a snapshot previously produced by [`to_json`].
pub fn from_json(json: &str) -> Result<TraceSnapshot, String> {
    serde_json::from_str(json).map_err(|e| e.to_string())
}

fn fmt_duration_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn render_span(
    span: &SpanRecord,
    children: &BTreeMap<u64, Vec<&SpanRecord>>,
    depth: usize,
    out: &mut String,
) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(&span.name);
    out.push_str(&format!(" [{}]", fmt_duration_ns(span.duration_ns)));
    for field in &span.fields {
        out.push_str(&format!(" {}={}", field.name, field.value));
    }
    out.push('\n');
    if let Some(kids) = children.get(&span.id) {
        for child in kids {
            render_span(child, children, depth + 1, out);
        }
    }
}

/// Renders a snapshot as an indented span tree followed by the metrics,
/// for `--trace=text` output.
pub fn render_text(snapshot: &TraceSnapshot) -> String {
    let mut out = String::new();
    let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    // Spans are stored in close order; sort display by open (id) order.
    let mut by_open: Vec<&SpanRecord> = snapshot.spans.iter().collect();
    by_open.sort_by_key(|s| s.id);
    for span in &by_open {
        match span.parent {
            Some(parent) => children.entry(parent).or_default().push(span),
            None => roots.push(span),
        }
    }
    out.push_str("trace:\n");
    if roots.is_empty() && snapshot.spans.is_empty() {
        out.push_str("  (no spans recorded)\n");
    }
    for root in roots {
        render_span(root, &children, 1, &mut out);
    }
    if snapshot.dropped_spans > 0 {
        out.push_str(&format!(
            "  ({} spans dropped at cap)\n",
            snapshot.dropped_spans
        ));
    }
    if !snapshot.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &snapshot.counters {
            out.push_str(&format!("  {name} = {value}\n"));
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, value) in &snapshot.gauges {
            out.push_str(&format!("  {name} = {value:.6}\n"));
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("histograms:\n");
        for (name, hist) in &snapshot.histograms {
            out.push_str(&format!(
                "  {name}: count={} sum={} min={} max={} mean={:.2}\n",
                hist.count,
                hist.sum,
                hist.min,
                hist.max,
                hist.mean()
            ));
        }
    }
    out
}

/// Aggregated wall-time for one stage name across a snapshot, used by
/// `wfms profile` and the bench harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSummary {
    /// Stage (span) name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Total wall time across those spans, in nanoseconds. Nested
    /// same-name spans each contribute their own duration.
    pub total_ns: u64,
    /// Smallest single-span duration, in nanoseconds.
    pub min_ns: u64,
    /// Largest single-span duration, in nanoseconds.
    pub max_ns: u64,
}

impl StageSummary {
    /// Mean span duration in nanoseconds (0 when `count` is 0).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Groups a snapshot's spans by stage name, sorted by descending total
/// wall time.
pub fn aggregate_stages(snapshot: &TraceSnapshot) -> Vec<StageSummary> {
    let mut by_name: BTreeMap<&str, StageSummary> = BTreeMap::new();
    for span in &snapshot.spans {
        let entry = by_name
            .entry(span.name.as_str())
            .or_insert_with(|| StageSummary {
                name: span.name.clone(),
                count: 0,
                total_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
            });
        entry.count += 1;
        entry.total_ns = entry.total_ns.saturating_add(span.duration_ns);
        entry.min_ns = entry.min_ns.min(span.duration_ns);
        entry.max_ns = entry.max_ns.max(span.duration_ns);
    }
    let mut stages: Vec<StageSummary> = by_name.into_values().collect();
    for stage in &mut stages {
        if stage.count == 0 {
            stage.min_ns = 0;
        }
    }
    stages.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    stages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample_snapshot() -> TraceSnapshot {
        let recorder = Recorder::new();
        recorder.enable();
        {
            let mut outer = recorder.span("assess");
            outer.record("candidate", "[2, 2, 2]");
            {
                let _inner = recorder.span("mg1-waiting");
            }
        }
        recorder.counter("perf.mg1.evaluations", 3);
        recorder.gauge("markov.sor.spectral-radius-estimate", 0.42);
        recorder.histogram("markov.linear-solve.iterations", 12);
        recorder.take()
    }

    #[test]
    fn json_round_trip_preserves_snapshot() {
        let snapshot = sample_snapshot();
        let json = to_json(&snapshot);
        assert_eq!(from_json(&json).unwrap(), snapshot);
    }

    #[test]
    fn text_render_shows_tree_and_metrics() {
        let text = render_text(&sample_snapshot());
        assert!(text.contains("assess ["));
        assert!(text.contains("  mg1-waiting ["), "child indented: {text}");
        assert!(text.contains("candidate=[2, 2, 2]"));
        assert!(text.contains("perf.mg1.evaluations = 3"));
        assert!(text.contains("markov.linear-solve.iterations: count=1"));
    }

    #[test]
    fn aggregate_groups_by_stage_name() {
        let recorder = Recorder::new();
        recorder.enable();
        for _ in 0..3 {
            let _span = recorder.span("linear-solve");
        }
        {
            let _span = recorder.span("uniformize");
        }
        let stages = aggregate_stages(&recorder.take());
        assert_eq!(stages.len(), 2);
        let solve = stages.iter().find(|s| s.name == "linear-solve").unwrap();
        assert_eq!(solve.count, 3);
        assert!(solve.min_ns <= solve.max_ns);
    }
}
