//! The WFMS performability model (Sec. 6 of the EDBT 2000 paper).
//!
//! Performability combines the performance model (Sec. 4) and the
//! availability model (Sec. 5): a Markov reward model over the
//! availability CTMC whose per-state reward is the waiting-time vector of
//! the performance model evaluated *in that (possibly degraded) system
//! state*. The steady-state expectation
//!
//! ```text
//! W^Y = Σ_{i ∈ X̃} w^i · π_i
//! ```
//!
//! is "the ultimate metric for assessing the performance of a WFMS,
//! including the temporary degradation caused by failures and downtimes
//! of server replicas."
//!
//! Degraded states can saturate a server type (`ρ ≥ 1`) or take the whole
//! WFMS down; the M/G/1 waiting time is undefined there. The paper's
//! formula implicitly assumes finite rewards; this implementation makes
//! the handling explicit through [`DegradedPolicy`].

#![warn(missing_docs)]

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use wfms_avail::{AvailError, AvailabilityModel};
use wfms_markov::ctmc::SteadyStateMethod;
use wfms_perf::{waiting_times, PerfError, SystemLoad, WaitingOutcome};
use wfms_statechart::{Configuration, ServerTypeRegistry};

/// How to account for system states whose waiting time is undefined
/// (saturated or down).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum DegradedPolicy {
    /// Condition on the system *serving* (operational and all types
    /// stable): `W_x = Σ_serving w_x^i π_i / P(serving)`. The
    /// probabilities of the excluded states are reported separately. This
    /// is the default: it answers "how long do requests wait while the
    /// system is actually working", with outage mass quantified by the
    /// availability goal instead.
    #[default]
    Conditional,
    /// Substitute a fixed penalty waiting time for saturated and down
    /// states and take the unconditional expectation — the closest finite
    /// reading of the paper's raw `Σ w^i π_i`.
    Penalty {
        /// The waiting time (minutes) charged for non-serving states.
        waiting_time: f64,
    },
}

/// Per-state detail of the performability evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct StateDetail {
    /// The system-state vector `X`.
    pub state: Vec<usize>,
    /// Its stationary probability `π_i`.
    pub probability: f64,
    /// Waiting outcome per server type in this state.
    pub outcomes: Vec<WaitingOutcome>,
}

impl StateDetail {
    /// True when every server type is stable in this state.
    pub fn is_serving(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| matches!(o, WaitingOutcome::Stable { .. }))
    }
}

/// How an ε-truncated evaluation accounted for the states it skipped —
/// produced by [`fold_states_truncated`], absent (`None`) on the dense
/// path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TruncationReport {
    /// The requested tolerance: evaluation stopped once the visited
    /// states' mass reached `1 − ε`.
    pub epsilon: f64,
    /// Stationary mass of the states actually evaluated.
    pub covered_mass: f64,
    /// Residual mass of the skipped tail (`0.0` when nothing was
    /// skipped).
    pub skipped_mass: f64,
    /// Number of system states never evaluated.
    pub states_skipped: usize,
    /// Sound per-type bound on `|ΔW_x|`, the error the truncation can
    /// have introduced into `expected_waiting[x]` relative to the exact
    /// full-space fold (see [`fold_states_truncated`] for the
    /// derivation).
    pub waiting_error_bounds: Vec<f64>,
    /// Sound bound on the error any *fold-derived* availability estimate
    /// (visited serving + saturated mass vs. `1 − probability_down`)
    /// can carry: the skipped tail holds at most `σ` mass, all of which
    /// could be up or down, so `|ΔA| ≤ σ` — the availability-goal
    /// counterpart of `waiting_error_bounds`. Product-form callers
    /// compute availability in closed form from the marginals (error
    /// exactly `0`); the bound is what screening uses when only the
    /// truncated fold has been paid for. Zero when nothing was skipped.
    #[serde(default)]
    pub availability_bound: f64,
}

impl TruncationReport {
    /// The worst per-type waiting-time error bound.
    pub fn max_error_bound(&self) -> f64 {
        self.waiting_error_bounds
            .iter()
            .cloned()
            .fold(0.0, f64::max)
    }
}

/// Result of the performability evaluation for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformabilityReport {
    /// Expected waiting time `W^Y_x` per server type, per the chosen
    /// [`DegradedPolicy`].
    pub expected_waiting: Vec<f64>,
    /// Probability that the WFMS is down (some type has zero replicas up).
    pub probability_down: f64,
    /// Probability that the WFMS is up but at least one server type is
    /// saturated (offered utilization ≥ 1).
    pub probability_saturated: f64,
    /// Probability mass of serving states (complement of the above two).
    pub probability_serving: f64,
    /// Number of system states evaluated.
    pub states_evaluated: usize,
    /// Per-state detail, in state-space encoding order.
    pub details: Vec<StateDetail>,
    /// Truncation accounting when the fold was ε-truncated; `None` for
    /// the exhaustive (dense) fold.
    pub truncation: Option<TruncationReport>,
}

impl PerformabilityReport {
    /// The worst per-type expected waiting time — the entry compared
    /// against the configuration tool's tolerance threshold.
    pub fn max_expected_waiting(&self) -> f64 {
        self.expected_waiting.iter().cloned().fold(0.0, f64::max)
    }
}

/// Errors raised by the performability evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum PerformabilityError {
    /// Availability-model failure.
    Avail(AvailError),
    /// Performance-model failure.
    Perf(PerfError),
    /// Every system state is non-serving; the conditional expectation is
    /// undefined. (The offered load saturates even the full configuration.)
    NoServingStates,
    /// The penalty policy was given a non-finite or negative penalty.
    InvalidPenalty {
        /// The offending value.
        value: f64,
    },
    /// The truncated fold was given an `ε` outside `[0, 1)`.
    InvalidEpsilon {
        /// The offending value.
        value: f64,
    },
    /// A `wfms-fault` failpoint fired in error mode at the named site.
    /// Only ever produced under explicit fault injection (tests, chaos
    /// runs); carries the stable site name for assertions.
    FaultInjected {
        /// The failpoint site that fired.
        site: &'static str,
    },
}

impl std::fmt::Display for PerformabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PerformabilityError::Avail(e) => write!(f, "availability model error: {e}"),
            PerformabilityError::Perf(e) => write!(f, "performance model error: {e}"),
            PerformabilityError::NoServingStates => {
                write!(f, "no system state can serve the offered load")
            }
            PerformabilityError::InvalidPenalty { value } => {
                write!(f, "invalid penalty waiting time {value}")
            }
            PerformabilityError::InvalidEpsilon { value } => {
                write!(f, "truncation epsilon {value} outside [0, 1)")
            }
            PerformabilityError::FaultInjected { site } => {
                write!(f, "fault injected at failpoint `{site}`")
            }
        }
    }
}

impl std::error::Error for PerformabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PerformabilityError::Avail(e) => Some(e),
            PerformabilityError::Perf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AvailError> for PerformabilityError {
    fn from(e: AvailError) -> Self {
        PerformabilityError::Avail(e)
    }
}

impl From<PerfError> for PerformabilityError {
    fn from(e: PerfError) -> Self {
        PerformabilityError::Perf(e)
    }
}

/// Evaluates the performability of `config` under the aggregated `load`:
/// builds the availability CTMC, solves its steady state, evaluates the
/// performance model in every system state, and folds the waiting-time
/// rewards per `policy`.
///
/// # Errors
/// [`PerformabilityError`] on model failures, an undefined conditional
/// expectation, or an invalid penalty.
pub fn evaluate(
    registry: &ServerTypeRegistry,
    config: &Configuration,
    load: &SystemLoad,
    policy: DegradedPolicy,
) -> Result<PerformabilityReport, PerformabilityError> {
    let model = AvailabilityModel::new(registry, config)?;
    let pi = model.steady_state(SteadyStateMethod::Lu)?;
    evaluate_with_model(&model, &pi, registry, load, policy)
}

/// As [`evaluate`], but reusing an already-built availability model and
/// its stationary distribution (the configuration-search loop calls this
/// to avoid re-solving).
///
/// # Errors
/// See [`evaluate`].
pub fn evaluate_with_model(
    model: &AvailabilityModel,
    pi: &[f64],
    registry: &ServerTypeRegistry,
    load: &SystemLoad,
    policy: DegradedPolicy,
) -> Result<PerformabilityReport, PerformabilityError> {
    fold_states(
        model.distribution(pi)?,
        registry.len(),
        model.configuration().as_slice(),
        policy,
        |state| evaluate_state(load, registry, state).map(Arc::new),
    )
}

/// The performance model evaluated in one system state: the pure
/// per-state kernel of the performability reward.
///
/// For a fixed `(load, registry)` pair, this depends only on the state
/// vector `X` — not on the candidate configuration `Y` containing it —
/// which is what makes the result shareable across all candidates of a
/// configuration search (the `AssessmentEngine` in `wfms-config` caches
/// it keyed by `X`).
#[derive(Debug, Clone, PartialEq)]
pub struct StateEvaluation {
    /// Waiting outcome per server type in this state (`w^X`).
    pub outcomes: Vec<WaitingOutcome>,
    /// Some server type has zero replicas up: the WFMS is down.
    pub down: bool,
    /// The WFMS is up but at least one type is saturated (`ρ ≥ 1`).
    pub saturated: bool,
}

impl StateEvaluation {
    /// True when every server type is stable (neither down nor
    /// saturated).
    pub fn is_serving(&self) -> bool {
        !self.down && !self.saturated
    }
}

/// Evaluates the pure per-state kernel: the M/G/1 waiting-time vector
/// `w^X` and the down/saturated classification for system state `state`.
///
/// # Errors
/// [`PerformabilityError::Perf`] on a registry/load/state mismatch.
pub fn evaluate_state(
    load: &SystemLoad,
    registry: &ServerTypeRegistry,
    state: &[usize],
) -> Result<StateEvaluation, PerformabilityError> {
    // Failpoint `performability.evaluate-state`: error injection fails
    // this one state's kernel (the engine charges the state with its
    // pessimistic cap); NaN injection poisons its first stable outcome.
    let mut poison_outcome = false;
    match wfms_fault::point!("performability.evaluate-state") {
        Some(wfms_fault::Injection::Error) => {
            return Err(PerformabilityError::FaultInjected {
                site: "performability.evaluate-state",
            });
        }
        Some(wfms_fault::Injection::Nan) => poison_outcome = true,
        None => {}
    }
    let mut outcomes = waiting_times(load, registry, state)?;
    if poison_outcome {
        for o in outcomes.iter_mut() {
            if let WaitingOutcome::Stable { waiting_time, .. } = o {
                *waiting_time = f64::NAN;
                break;
            }
        }
    }
    let down = outcomes.iter().any(|o| matches!(o, WaitingOutcome::Down));
    let saturated = !down
        && outcomes
            .iter()
            .any(|o| matches!(o, WaitingOutcome::Saturated { .. }));
    Ok(StateEvaluation {
        outcomes,
        down,
        saturated,
    })
}

/// Folds per-state rewards over a stationary distribution: the Markov
/// reward accumulation of [`evaluate_with_model`], parameterised over
/// the state kernel so callers can substitute a memoised one.
///
/// `dist` yields `(state, probability)` pairs; the fold visits them in
/// iteration order (state-space encoding order when driven from
/// [`AvailabilityModel::distribution`]), so a cached kernel produces
/// bit-identical sums to the direct path.
///
/// # Errors
/// See [`evaluate`].
pub fn fold_states<I, F>(
    dist: I,
    k: usize,
    full_state: &[usize],
    policy: DegradedPolicy,
    mut eval: F,
) -> Result<PerformabilityReport, PerformabilityError>
where
    I: IntoIterator<Item = (Vec<usize>, f64)>,
    F: FnMut(&[usize]) -> Result<Arc<StateEvaluation>, PerformabilityError>,
{
    if let DegradedPolicy::Penalty { waiting_time } = policy {
        if !(waiting_time.is_finite() && waiting_time >= 0.0) {
            return Err(PerformabilityError::InvalidPenalty {
                value: waiting_time,
            });
        }
    }
    // Failpoint `performability.fold`: error injection fails the whole
    // reward accumulation; NaN injection poisons the folded waits.
    let mut poison_fold = false;
    match wfms_fault::point!("performability.fold") {
        Some(wfms_fault::Injection::Error) => {
            return Err(PerformabilityError::FaultInjected {
                site: "performability.fold",
            });
        }
        Some(wfms_fault::Injection::Nan) => poison_fold = true,
        None => {}
    }
    let mut obs_span = wfms_obs::span!("performability");
    let mut details = Vec::new();
    let mut probability_down = 0.0;
    let mut probability_saturated = 0.0;
    let mut probability_serving = 0.0;
    let mut degraded_evaluations: u64 = 0;

    for (state, probability) in dist {
        if state != full_state {
            degraded_evaluations += 1;
        }
        let evaluation = eval(&state)?;
        if evaluation.down {
            probability_down += probability;
        } else if evaluation.saturated {
            probability_saturated += probability;
        } else {
            probability_serving += probability;
        }
        details.push(StateDetail {
            state,
            probability,
            outcomes: evaluation.outcomes.clone(),
        });
    }
    obs_span.record("states", details.len() as u64);

    let mut expected_waiting = vec![0.0; k];
    match policy {
        DegradedPolicy::Conditional => {
            if probability_serving <= 0.0 {
                return Err(PerformabilityError::NoServingStates);
            }
            for d in &details {
                if d.is_serving() {
                    for (x, o) in d.outcomes.iter().enumerate() {
                        // Infallible: `is_serving()` means no outcome is
                        // Down or Saturated, so every outcome is Stable
                        // and `waiting_time()` is Some.
                        expected_waiting[x] +=
                            // audit:allow(A008, reason = "is_serving() guarantees every outcome is Stable, so waiting_time() is Some")
                            d.probability * o.waiting_time().expect("serving state is stable");
                    }
                }
            }
            for w in expected_waiting.iter_mut() {
                *w /= probability_serving;
            }
        }
        DegradedPolicy::Penalty { waiting_time } => {
            for d in &details {
                for (x, o) in d.outcomes.iter().enumerate() {
                    let w = o.waiting_time().unwrap_or(waiting_time);
                    expected_waiting[x] += d.probability * w;
                }
            }
        }
    }

    obs_span.record("degraded", degraded_evaluations);
    obs_span.record("serving", probability_serving);
    wfms_obs::counter("performability.state-evaluations", details.len() as u64);
    wfms_obs::counter("performability.degraded-evaluations", degraded_evaluations);

    if poison_fold {
        if let Some(w) = expected_waiting.first_mut() {
            *w = f64::NAN;
        }
    }
    Ok(PerformabilityReport {
        expected_waiting,
        probability_down,
        probability_saturated,
        probability_serving,
        states_evaluated: details.len(),
        details,
        truncation: None,
    })
}

/// Per-type caps on the *finite* waiting time over all system states
/// `X ≤ Y = full_state`: the supremum of `w_x` over states where type
/// `x` is stable.
///
/// The per-type M/G/1 wait depends only on the type's own up-count and
/// decreases as that count grows (each server takes a smaller share of
/// `l_x`), so the cap is the wait at the **smallest stable** up-count —
/// found by probing `X_x = 1, 2, …` with every other type at full
/// strength. A type with no stable up-count at all keeps a cap of `0.0`;
/// no serving state exists then, so the cap is never charged against a
/// finite wait.
///
/// These caps make the truncation error bounds of
/// [`fold_states_truncated`] sound: any skipped *serving* state's wait
/// is ≤ the cap.
///
/// # Errors
/// [`PerformabilityError::Perf`] on a registry/load/state mismatch.
pub fn waiting_time_caps(
    load: &SystemLoad,
    registry: &ServerTypeRegistry,
    full_state: &[usize],
) -> Result<Vec<f64>, PerformabilityError> {
    let k = registry.len();
    let mut caps = vec![0.0; k];
    for x in 0..k {
        let mut probe = full_state.to_vec();
        for up in 1..=full_state.get(x).copied().unwrap_or(0) {
            probe[x] = up;
            let outcomes = waiting_times(load, registry, &probe)?;
            if let WaitingOutcome::Stable { waiting_time, .. } = outcomes[x] {
                caps[x] = waiting_time;
                break;
            }
        }
    }
    Ok(caps)
}

/// Parameters of the ε-truncated fold ([`fold_states_truncated`]).
#[derive(Debug, Clone)]
pub struct TruncationOptions<'a> {
    /// Stop once the visited mass reaches `1 − ε`; `0.0` visits every
    /// state the iterator yields.
    pub epsilon: f64,
    /// Size of the full state space, for the skipped-state count.
    pub total_states: usize,
    /// Per-type finite-wait caps from [`waiting_time_caps`].
    pub waiting_caps: &'a [f64],
}

/// ε-truncated Markov-reward fold: consumes `(state, π)` pairs from a
/// **descending-π** iterator (e.g.
/// `wfms_avail::ProductFormModel::enumerate_descending`) only until the
/// covered mass reaches `1 − ε`, and charges the residual mass `σ ≤ ε`
/// with a sound bound instead of evaluating the tail.
///
/// With `ε = 0` every yielded state is visited and the skipped mass is
/// exactly zero; the accumulation per state is the same as
/// [`fold_states`], so the only difference from the dense path is the
/// iteration (= summation) order.
///
/// # Error bounds
///
/// Let `σ` be the skipped mass and `c_x` the per-type finite-wait caps.
///
/// * **Conditional policy** — the estimate conditions on the *covered*
///   serving mass `S`. Writing the exact value as
///   `(A + a) / (S + s)` with `a ≤ σ·c_x` and `s ≤ σ` the skipped
///   serving contributions, `|ΔW_x| ≤ σ · c_x / S` (both `A/S` and the
///   skipped waits are ≤ `c_x`). The skipped mass itself is reported in
///   the [`TruncationReport`].
/// * **Penalty policy** — each skipped state is charged the configured
///   penalty `p`: `expected_waiting` gains `σ · p` per type. A skipped
///   state's true contribution per unit mass lies in `[0, max(p, c_x)]`
///   (finite waits are ≤ `c_x`, non-serving states are charged `p` by
///   the exact fold too), so `|ΔW_x| ≤ σ · max(p, c_x)`.
///
/// The down/saturated/serving probabilities cover only the visited
/// states; each under-counts its exact value by at most `σ`.
///
/// # Errors
/// As [`fold_states`], plus [`PerformabilityError::InvalidEpsilon`] on
/// `ε ∉ [0, 1)` and a length mismatch on the caps vector.
pub fn fold_states_truncated<I, F>(
    dist: I,
    k: usize,
    full_state: &[usize],
    policy: DegradedPolicy,
    opts: &TruncationOptions<'_>,
    mut eval: F,
) -> Result<PerformabilityReport, PerformabilityError>
where
    I: IntoIterator<Item = (Vec<usize>, f64)>,
    F: FnMut(&[usize]) -> Result<Arc<StateEvaluation>, PerformabilityError>,
{
    if let DegradedPolicy::Penalty { waiting_time } = policy {
        if !(waiting_time.is_finite() && waiting_time >= 0.0) {
            return Err(PerformabilityError::InvalidPenalty {
                value: waiting_time,
            });
        }
    }
    if !(opts.epsilon.is_finite() && (0.0..1.0).contains(&opts.epsilon)) {
        return Err(PerformabilityError::InvalidEpsilon {
            value: opts.epsilon,
        });
    }
    if opts.waiting_caps.len() != k {
        return Err(PerformabilityError::Perf(PerfError::LengthMismatch {
            what: "waiting-time caps",
            expected: k,
            actual: opts.waiting_caps.len(),
        }));
    }
    // Failpoint `performability.fold`: shared with the untruncated fold.
    let mut poison_fold = false;
    match wfms_fault::point!("performability.fold") {
        Some(wfms_fault::Injection::Error) => {
            return Err(PerformabilityError::FaultInjected {
                site: "performability.fold",
            });
        }
        Some(wfms_fault::Injection::Nan) => poison_fold = true,
        None => {}
    }
    let mut obs_span = wfms_obs::span!("performability");
    let mut details = Vec::new();
    let mut probability_down = 0.0;
    let mut probability_saturated = 0.0;
    let mut probability_serving = 0.0;
    let mut degraded_evaluations: u64 = 0;
    let mut covered = 0.0;
    // ε = 0 must visit every state: never stop on accumulated float mass.
    let target = if opts.epsilon > 0.0 {
        1.0 - opts.epsilon
    } else {
        f64::INFINITY
    };

    let mut dist = dist.into_iter();
    while covered < target {
        let Some((state, probability)) = dist.next() else {
            break;
        };
        if state != full_state {
            degraded_evaluations += 1;
        }
        let evaluation = eval(&state)?;
        if evaluation.down {
            probability_down += probability;
        } else if evaluation.saturated {
            probability_saturated += probability;
        } else {
            probability_serving += probability;
        }
        covered += probability;
        details.push(StateDetail {
            state,
            probability,
            outcomes: evaluation.outcomes.clone(),
        });
    }
    let states_skipped = opts.total_states.saturating_sub(details.len());
    let skipped_mass = if states_skipped == 0 {
        0.0
    } else {
        (1.0 - covered).max(0.0)
    };
    obs_span.record("states", details.len() as u64);

    let mut expected_waiting = vec![0.0; k];
    let mut waiting_error_bounds = vec![0.0; k];
    match policy {
        DegradedPolicy::Conditional => {
            if probability_serving <= 0.0 {
                return Err(PerformabilityError::NoServingStates);
            }
            for d in &details {
                if d.is_serving() {
                    for (x, o) in d.outcomes.iter().enumerate() {
                        // Infallible: `is_serving()` means no outcome is
                        // Down or Saturated, so every outcome is Stable
                        // and `waiting_time()` is Some.
                        expected_waiting[x] +=
                            // audit:allow(A008, reason = "is_serving() guarantees every outcome is Stable, so waiting_time() is Some")
                            d.probability * o.waiting_time().expect("serving state is stable");
                    }
                }
            }
            for w in expected_waiting.iter_mut() {
                *w /= probability_serving;
            }
            for (bound, &cap) in waiting_error_bounds.iter_mut().zip(opts.waiting_caps) {
                *bound = skipped_mass * cap / probability_serving;
            }
        }
        DegradedPolicy::Penalty { waiting_time } => {
            for d in &details {
                for (x, o) in d.outcomes.iter().enumerate() {
                    let w = o.waiting_time().unwrap_or(waiting_time);
                    expected_waiting[x] += d.probability * w;
                }
            }
            for (x, w) in expected_waiting.iter_mut().enumerate() {
                *w += skipped_mass * waiting_time;
                waiting_error_bounds[x] = skipped_mass * waiting_time.max(opts.waiting_caps[x]);
            }
        }
    }

    obs_span.record("degraded", degraded_evaluations);
    obs_span.record("serving", probability_serving);
    obs_span.record("pruned", states_skipped as u64);
    wfms_obs::counter("performability.state-evaluations", details.len() as u64);
    wfms_obs::counter("performability.degraded-evaluations", degraded_evaluations);
    wfms_obs::counter("performability.pruned-states", states_skipped as u64);

    if poison_fold {
        if let Some(w) = expected_waiting.first_mut() {
            *w = f64::NAN;
        }
    }
    Ok(PerformabilityReport {
        expected_waiting,
        probability_down,
        probability_saturated,
        probability_serving,
        states_evaluated: details.len(),
        details,
        truncation: Some(TruncationReport {
            epsilon: opts.epsilon,
            covered_mass: covered,
            skipped_mass,
            states_skipped,
            waiting_error_bounds,
            availability_bound: skipped_mass,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfms_statechart::paper_section52_registry;

    fn registry() -> ServerTypeRegistry {
        paper_section52_registry()
    }

    /// A load that puts utilization `rho` on a single server of each type.
    fn load_at(rho: f64, reg: &ServerTypeRegistry) -> SystemLoad {
        let rates: Vec<f64> = reg.iter().map(|(_, t)| rho / t.service_time_mean).collect();
        SystemLoad {
            request_rates: rates,
            total_arrival_rate: 1.0,
            active_instances: vec![],
        }
    }

    #[test]
    fn performability_exceeds_failure_blind_waiting() {
        // With failures, some probability mass sits in degraded states with
        // fewer replicas and thus higher waiting times.
        let reg = registry();
        let config = Configuration::uniform(&reg, 2).unwrap();
        let load = load_at(0.6, &reg); // 2 replicas -> 30% each at full strength
        let report = evaluate(&reg, &config, &load, DegradedPolicy::Conditional).unwrap();
        let blind = waiting_times(&load, &reg, config.as_slice()).unwrap();
        for (x, (b, w_perf)) in blind.iter().zip(&report.expected_waiting).enumerate() {
            let w_blind = b.waiting_time().unwrap();
            assert!(
                w_perf > &w_blind,
                "type {x}: performability {w_perf} !> failure-blind {w_blind}"
            );
        }
    }

    #[test]
    fn least_reliable_type_degrades_most() {
        let reg = registry();
        let config = Configuration::uniform(&reg, 2).unwrap();
        let load = load_at(0.8, &reg);
        let report = evaluate(&reg, &config, &load, DegradedPolicy::Conditional).unwrap();
        let blind = waiting_times(&load, &reg, config.as_slice()).unwrap();
        // Relative degradation per type; the app server (most failure-prone)
        // must suffer the largest relative increase.
        let degradation: Vec<f64> = report
            .expected_waiting
            .iter()
            .zip(&blind)
            .map(|(w, b)| w / b.waiting_time().unwrap())
            .collect();
        assert!(degradation[2] > degradation[1]);
        assert!(degradation[1] > degradation[0]);
    }

    #[test]
    fn probabilities_partition_unity() {
        let reg = registry();
        let config = Configuration::uniform(&reg, 2).unwrap();
        let load = load_at(1.2, &reg); // 0.6 per replica at full strength
        let report = evaluate(&reg, &config, &load, DegradedPolicy::Conditional).unwrap();
        let total =
            report.probability_down + report.probability_saturated + report.probability_serving;
        assert!((total - 1.0).abs() < 1e-9);
        assert!(report.probability_down > 0.0);
        // A single failed replica concentrates rho = 1.2 on the survivor.
        assert!(report.probability_saturated > 0.0);
        assert_eq!(report.states_evaluated, 27);
    }

    #[test]
    fn light_load_has_no_saturated_states() {
        let reg = registry();
        let config = Configuration::uniform(&reg, 2).unwrap();
        let load = load_at(0.4, &reg); // even a single replica stays below 0.8
        let report = evaluate(&reg, &config, &load, DegradedPolicy::Conditional).unwrap();
        assert_eq!(report.probability_saturated, 0.0);
        assert!(report.probability_down > 0.0);
    }

    #[test]
    fn penalty_policy_interpolates_to_the_paper_formula() {
        let reg = registry();
        let config = Configuration::uniform(&reg, 2).unwrap();
        let load = load_at(0.5, &reg);
        let conditional = evaluate(&reg, &config, &load, DegradedPolicy::Conditional).unwrap();
        let low_pen = evaluate(
            &reg,
            &config,
            &load,
            DegradedPolicy::Penalty { waiting_time: 0.0 },
        )
        .unwrap();
        let high_pen = evaluate(
            &reg,
            &config,
            &load,
            DegradedPolicy::Penalty { waiting_time: 1e3 },
        )
        .unwrap();
        for x in 0..3 {
            assert!(low_pen.expected_waiting[x] <= conditional.expected_waiting[x] + 1e-12);
            assert!(high_pen.expected_waiting[x] > conditional.expected_waiting[x]);
        }
    }

    #[test]
    fn more_replicas_improve_performability() {
        let reg = registry();
        let load = load_at(0.7, &reg);
        let w2 = evaluate(
            &reg,
            &Configuration::uniform(&reg, 2).unwrap(),
            &load,
            DegradedPolicy::Conditional,
        )
        .unwrap()
        .max_expected_waiting();
        let w3 = evaluate(
            &reg,
            &Configuration::uniform(&reg, 3).unwrap(),
            &load,
            DegradedPolicy::Conditional,
        )
        .unwrap()
        .max_expected_waiting();
        assert!(w3 < w2, "3-way {w3} !< 2-way {w2}");
    }

    #[test]
    fn overloaded_system_reports_no_serving_states() {
        let reg = registry();
        let config = Configuration::minimal(&reg);
        let load = load_at(1.5, &reg); // saturates even at full strength
        assert!(matches!(
            evaluate(&reg, &config, &load, DegradedPolicy::Conditional),
            Err(PerformabilityError::NoServingStates)
        ));
        // The penalty policy still produces a number.
        let pen = evaluate(
            &reg,
            &config,
            &load,
            DegradedPolicy::Penalty { waiting_time: 60.0 },
        )
        .unwrap();
        assert!(pen.expected_waiting.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn invalid_penalty_is_rejected() {
        let reg = registry();
        let config = Configuration::minimal(&reg);
        let load = load_at(0.2, &reg);
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            assert!(matches!(
                evaluate(
                    &reg,
                    &config,
                    &load,
                    DegradedPolicy::Penalty { waiting_time: bad }
                ),
                Err(PerformabilityError::InvalidPenalty { .. })
            ));
        }
    }

    #[test]
    fn details_expose_degraded_states() {
        let reg = registry();
        let config = Configuration::uniform(&reg, 2).unwrap();
        let load = load_at(0.5, &reg);
        let report = evaluate(&reg, &config, &load, DegradedPolicy::Conditional).unwrap();
        // Find the state with one app server down: (2,2,1).
        let detail = report
            .details
            .iter()
            .find(|d| d.state == vec![2, 2, 1])
            .expect("state (2,2,1) present");
        assert!(detail.is_serving());
        // App server waiting in that state must exceed the full-state value.
        let full = report
            .details
            .iter()
            .find(|d| d.state == vec![2, 2, 2])
            .unwrap();
        let w_degraded = detail.outcomes[2].waiting_time().unwrap();
        let w_full = full.outcomes[2].waiting_time().unwrap();
        assert!(w_degraded > w_full);
        // Down state detected.
        let down = report
            .details
            .iter()
            .find(|d| d.state == vec![0, 2, 2])
            .unwrap();
        assert!(!down.is_serving());
        assert!(matches!(down.outcomes[0], WaitingOutcome::Down));
    }

    #[test]
    fn max_expected_waiting_is_the_row_maximum() {
        let report = PerformabilityReport {
            expected_waiting: vec![0.1, 0.5, 0.3],
            probability_down: 0.0,
            probability_saturated: 0.0,
            probability_serving: 1.0,
            states_evaluated: 0,
            details: vec![],
            truncation: None,
        };
        assert_eq!(report.max_expected_waiting(), 0.5);
    }

    /// A descending-π iterator over the full state space of `config`,
    /// built from the exact dense solve — lets the truncation tests run
    /// without depending on wfms-avail's product enumerator.
    fn descending_distribution(
        reg: &ServerTypeRegistry,
        config: &Configuration,
    ) -> Vec<(Vec<usize>, f64)> {
        let model = AvailabilityModel::new(reg, config).unwrap();
        let pi = model.steady_state(SteadyStateMethod::Lu).unwrap();
        let mut dist: Vec<(Vec<usize>, f64)> = model.distribution(&pi).unwrap().collect();
        dist.sort_by(|a, b| b.1.total_cmp(&a.1));
        dist
    }

    #[test]
    fn waiting_caps_bound_every_finite_state_wait() {
        let reg = registry();
        let config = Configuration::uniform(&reg, 2).unwrap();
        let load = load_at(0.8, &reg);
        let caps = waiting_time_caps(&load, &reg, config.as_slice()).unwrap();
        let report = evaluate(&reg, &config, &load, DegradedPolicy::Conditional).unwrap();
        for d in &report.details {
            for (x, o) in d.outcomes.iter().enumerate() {
                if let Some(w) = o.waiting_time() {
                    assert!(
                        w <= caps[x] + 1e-12,
                        "state {:?} type {x}: wait {w} exceeds cap {}",
                        d.state,
                        caps[x]
                    );
                }
            }
        }
        assert!(caps.iter().all(|&c| c > 0.0));
    }

    #[test]
    fn truncated_fold_with_zero_epsilon_matches_dense_bitwise() {
        let reg = registry();
        let config = Configuration::uniform(&reg, 2).unwrap();
        let load = load_at(0.7, &reg);
        let dist = descending_distribution(&reg, &config);
        let caps = waiting_time_caps(&load, &reg, config.as_slice()).unwrap();
        let dense = fold_states(
            dist.clone(),
            reg.len(),
            config.as_slice(),
            DegradedPolicy::Conditional,
            |state| evaluate_state(&load, &reg, state).map(Arc::new),
        )
        .unwrap();
        let truncated = fold_states_truncated(
            dist,
            reg.len(),
            config.as_slice(),
            DegradedPolicy::Conditional,
            &TruncationOptions {
                epsilon: 0.0,
                total_states: 27,
                waiting_caps: &caps,
            },
            |state| evaluate_state(&load, &reg, state).map(Arc::new),
        )
        .unwrap();
        // Same iterator order in, so every accumulated float agrees
        // bit-for-bit; only the truncation annotation differs.
        assert_eq!(dense.expected_waiting, truncated.expected_waiting);
        assert_eq!(dense.probability_down, truncated.probability_down);
        assert_eq!(dense.probability_serving, truncated.probability_serving);
        assert_eq!(dense.details, truncated.details);
        let t = truncated.truncation.unwrap();
        assert_eq!(t.states_skipped, 0);
        assert_eq!(t.skipped_mass, 0.0);
        assert_eq!(t.waiting_error_bounds, vec![0.0; 3]);
        assert_eq!(t.availability_bound, 0.0);
    }

    #[test]
    fn truncated_fold_error_stays_within_reported_bound() {
        let reg = registry();
        let config = Configuration::uniform(&reg, 3).unwrap();
        let load = load_at(0.9, &reg);
        let dist = descending_distribution(&reg, &config);
        let caps = waiting_time_caps(&load, &reg, config.as_slice()).unwrap();
        let exact = fold_states(
            dist.clone(),
            reg.len(),
            config.as_slice(),
            DegradedPolicy::Conditional,
            |state| evaluate_state(&load, &reg, state).map(Arc::new),
        )
        .unwrap();
        for epsilon in [1e-4, 1e-6, 1e-9] {
            let truncated = fold_states_truncated(
                dist.clone(),
                reg.len(),
                config.as_slice(),
                DegradedPolicy::Conditional,
                &TruncationOptions {
                    epsilon,
                    total_states: dist.len(),
                    waiting_caps: &caps,
                },
                |state| evaluate_state(&load, &reg, state).map(Arc::new),
            )
            .unwrap();
            let t = truncated.truncation.clone().unwrap();
            assert!(t.covered_mass >= 1.0 - epsilon);
            assert!(t.skipped_mass <= epsilon);
            // The fold-derived availability (1 − visited down mass) is
            // within the reported availability bound of the exact value.
            let delta_avail =
                ((1.0 - exact.probability_down) - (1.0 - truncated.probability_down)).abs();
            assert!(
                delta_avail <= t.availability_bound + 1e-15,
                "eps {epsilon}: |ΔA| {delta_avail:e} exceeds bound {:e}",
                t.availability_bound
            );
            for x in 0..reg.len() {
                let delta = (exact.expected_waiting[x] - truncated.expected_waiting[x]).abs();
                assert!(
                    delta <= t.waiting_error_bounds[x] + 1e-15,
                    "eps {epsilon} type {x}: |ΔW| {delta:e} exceeds bound {:e}",
                    t.waiting_error_bounds[x]
                );
            }
        }
    }

    #[test]
    fn truncated_penalty_fold_charges_skipped_mass_with_the_penalty() {
        let reg = registry();
        let config = Configuration::uniform(&reg, 3).unwrap();
        let load = load_at(0.6, &reg);
        let dist = descending_distribution(&reg, &config);
        let caps = waiting_time_caps(&load, &reg, config.as_slice()).unwrap();
        let penalty = 42.0;
        let policy = DegradedPolicy::Penalty {
            waiting_time: penalty,
        };
        let exact = fold_states(
            dist.clone(),
            reg.len(),
            config.as_slice(),
            policy,
            |state| evaluate_state(&load, &reg, state).map(Arc::new),
        )
        .unwrap();
        let truncated = fold_states_truncated(
            dist.clone(),
            reg.len(),
            config.as_slice(),
            policy,
            &TruncationOptions {
                epsilon: 1e-6,
                total_states: dist.len(),
                waiting_caps: &caps,
            },
            |state| evaluate_state(&load, &reg, state).map(Arc::new),
        )
        .unwrap();
        let t = truncated.truncation.clone().unwrap();
        assert!(t.states_skipped > 0, "ε = 1e-6 should prune the far tail");
        for x in 0..reg.len() {
            let delta = (exact.expected_waiting[x] - truncated.expected_waiting[x]).abs();
            assert!(
                delta <= t.waiting_error_bounds[x] + 1e-15,
                "type {x}: |ΔW| {delta:e} exceeds bound {:e}",
                t.waiting_error_bounds[x]
            );
        }
    }

    #[test]
    fn truncated_fold_rejects_bad_epsilon_and_caps() {
        let reg = registry();
        let config = Configuration::uniform(&reg, 2).unwrap();
        let load = load_at(0.5, &reg);
        let dist = descending_distribution(&reg, &config);
        let caps = waiting_time_caps(&load, &reg, config.as_slice()).unwrap();
        for bad in [f64::NAN, -1e-9, 1.0, 2.0] {
            assert!(matches!(
                fold_states_truncated(
                    dist.clone(),
                    reg.len(),
                    config.as_slice(),
                    DegradedPolicy::Conditional,
                    &TruncationOptions {
                        epsilon: bad,
                        total_states: dist.len(),
                        waiting_caps: &caps,
                    },
                    |state| evaluate_state(&load, &reg, state).map(Arc::new),
                ),
                Err(PerformabilityError::InvalidEpsilon { .. })
            ));
        }
        assert!(matches!(
            fold_states_truncated(
                dist.clone(),
                reg.len(),
                config.as_slice(),
                DegradedPolicy::Conditional,
                &TruncationOptions {
                    epsilon: 0.0,
                    total_states: dist.len(),
                    waiting_caps: &caps[..1],
                },
                |state| evaluate_state(&load, &reg, state).map(Arc::new),
            ),
            Err(PerformabilityError::Perf(_))
        ));
    }
}
