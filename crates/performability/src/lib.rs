//! The WFMS performability model (Sec. 6 of the EDBT 2000 paper).
//!
//! Performability combines the performance model (Sec. 4) and the
//! availability model (Sec. 5): a Markov reward model over the
//! availability CTMC whose per-state reward is the waiting-time vector of
//! the performance model evaluated *in that (possibly degraded) system
//! state*. The steady-state expectation
//!
//! ```text
//! W^Y = Σ_{i ∈ X̃} w^i · π_i
//! ```
//!
//! is "the ultimate metric for assessing the performance of a WFMS,
//! including the temporary degradation caused by failures and downtimes
//! of server replicas."
//!
//! Degraded states can saturate a server type (`ρ ≥ 1`) or take the whole
//! WFMS down; the M/G/1 waiting time is undefined there. The paper's
//! formula implicitly assumes finite rewards; this implementation makes
//! the handling explicit through [`DegradedPolicy`].

#![warn(missing_docs)]

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use wfms_avail::{AvailError, AvailabilityModel};
use wfms_markov::ctmc::SteadyStateMethod;
use wfms_perf::{waiting_times, PerfError, SystemLoad, WaitingOutcome};
use wfms_statechart::{Configuration, ServerTypeRegistry};

/// How to account for system states whose waiting time is undefined
/// (saturated or down).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum DegradedPolicy {
    /// Condition on the system *serving* (operational and all types
    /// stable): `W_x = Σ_serving w_x^i π_i / P(serving)`. The
    /// probabilities of the excluded states are reported separately. This
    /// is the default: it answers "how long do requests wait while the
    /// system is actually working", with outage mass quantified by the
    /// availability goal instead.
    #[default]
    Conditional,
    /// Substitute a fixed penalty waiting time for saturated and down
    /// states and take the unconditional expectation — the closest finite
    /// reading of the paper's raw `Σ w^i π_i`.
    Penalty {
        /// The waiting time (minutes) charged for non-serving states.
        waiting_time: f64,
    },
}

/// Per-state detail of the performability evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct StateDetail {
    /// The system-state vector `X`.
    pub state: Vec<usize>,
    /// Its stationary probability `π_i`.
    pub probability: f64,
    /// Waiting outcome per server type in this state.
    pub outcomes: Vec<WaitingOutcome>,
}

impl StateDetail {
    /// True when every server type is stable in this state.
    pub fn is_serving(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| matches!(o, WaitingOutcome::Stable { .. }))
    }
}

/// Result of the performability evaluation for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformabilityReport {
    /// Expected waiting time `W^Y_x` per server type, per the chosen
    /// [`DegradedPolicy`].
    pub expected_waiting: Vec<f64>,
    /// Probability that the WFMS is down (some type has zero replicas up).
    pub probability_down: f64,
    /// Probability that the WFMS is up but at least one server type is
    /// saturated (offered utilization ≥ 1).
    pub probability_saturated: f64,
    /// Probability mass of serving states (complement of the above two).
    pub probability_serving: f64,
    /// Number of system states evaluated.
    pub states_evaluated: usize,
    /// Per-state detail, in state-space encoding order.
    pub details: Vec<StateDetail>,
}

impl PerformabilityReport {
    /// The worst per-type expected waiting time — the entry compared
    /// against the configuration tool's tolerance threshold.
    pub fn max_expected_waiting(&self) -> f64 {
        self.expected_waiting.iter().cloned().fold(0.0, f64::max)
    }
}

/// Errors raised by the performability evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum PerformabilityError {
    /// Availability-model failure.
    Avail(AvailError),
    /// Performance-model failure.
    Perf(PerfError),
    /// Every system state is non-serving; the conditional expectation is
    /// undefined. (The offered load saturates even the full configuration.)
    NoServingStates,
    /// The penalty policy was given a non-finite or negative penalty.
    InvalidPenalty {
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for PerformabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PerformabilityError::Avail(e) => write!(f, "availability model error: {e}"),
            PerformabilityError::Perf(e) => write!(f, "performance model error: {e}"),
            PerformabilityError::NoServingStates => {
                write!(f, "no system state can serve the offered load")
            }
            PerformabilityError::InvalidPenalty { value } => {
                write!(f, "invalid penalty waiting time {value}")
            }
        }
    }
}

impl std::error::Error for PerformabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PerformabilityError::Avail(e) => Some(e),
            PerformabilityError::Perf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AvailError> for PerformabilityError {
    fn from(e: AvailError) -> Self {
        PerformabilityError::Avail(e)
    }
}

impl From<PerfError> for PerformabilityError {
    fn from(e: PerfError) -> Self {
        PerformabilityError::Perf(e)
    }
}

/// Evaluates the performability of `config` under the aggregated `load`:
/// builds the availability CTMC, solves its steady state, evaluates the
/// performance model in every system state, and folds the waiting-time
/// rewards per `policy`.
///
/// # Errors
/// [`PerformabilityError`] on model failures, an undefined conditional
/// expectation, or an invalid penalty.
pub fn evaluate(
    registry: &ServerTypeRegistry,
    config: &Configuration,
    load: &SystemLoad,
    policy: DegradedPolicy,
) -> Result<PerformabilityReport, PerformabilityError> {
    let model = AvailabilityModel::new(registry, config)?;
    let pi = model.steady_state(SteadyStateMethod::Lu)?;
    evaluate_with_model(&model, &pi, registry, load, policy)
}

/// As [`evaluate`], but reusing an already-built availability model and
/// its stationary distribution (the configuration-search loop calls this
/// to avoid re-solving).
///
/// # Errors
/// See [`evaluate`].
pub fn evaluate_with_model(
    model: &AvailabilityModel,
    pi: &[f64],
    registry: &ServerTypeRegistry,
    load: &SystemLoad,
    policy: DegradedPolicy,
) -> Result<PerformabilityReport, PerformabilityError> {
    fold_states(
        model.distribution(pi)?,
        registry.len(),
        model.configuration().as_slice(),
        policy,
        |state| evaluate_state(load, registry, state).map(Arc::new),
    )
}

/// The performance model evaluated in one system state: the pure
/// per-state kernel of the performability reward.
///
/// For a fixed `(load, registry)` pair, this depends only on the state
/// vector `X` — not on the candidate configuration `Y` containing it —
/// which is what makes the result shareable across all candidates of a
/// configuration search (the `AssessmentEngine` in `wfms-config` caches
/// it keyed by `X`).
#[derive(Debug, Clone, PartialEq)]
pub struct StateEvaluation {
    /// Waiting outcome per server type in this state (`w^X`).
    pub outcomes: Vec<WaitingOutcome>,
    /// Some server type has zero replicas up: the WFMS is down.
    pub down: bool,
    /// The WFMS is up but at least one type is saturated (`ρ ≥ 1`).
    pub saturated: bool,
}

impl StateEvaluation {
    /// True when every server type is stable (neither down nor
    /// saturated).
    pub fn is_serving(&self) -> bool {
        !self.down && !self.saturated
    }
}

/// Evaluates the pure per-state kernel: the M/G/1 waiting-time vector
/// `w^X` and the down/saturated classification for system state `state`.
///
/// # Errors
/// [`PerformabilityError::Perf`] on a registry/load/state mismatch.
pub fn evaluate_state(
    load: &SystemLoad,
    registry: &ServerTypeRegistry,
    state: &[usize],
) -> Result<StateEvaluation, PerformabilityError> {
    let outcomes = waiting_times(load, registry, state)?;
    let down = outcomes.iter().any(|o| matches!(o, WaitingOutcome::Down));
    let saturated = !down
        && outcomes
            .iter()
            .any(|o| matches!(o, WaitingOutcome::Saturated { .. }));
    Ok(StateEvaluation {
        outcomes,
        down,
        saturated,
    })
}

/// Folds per-state rewards over a stationary distribution: the Markov
/// reward accumulation of [`evaluate_with_model`], parameterised over
/// the state kernel so callers can substitute a memoised one.
///
/// `dist` yields `(state, probability)` pairs; the fold visits them in
/// iteration order (state-space encoding order when driven from
/// [`AvailabilityModel::distribution`]), so a cached kernel produces
/// bit-identical sums to the direct path.
///
/// # Errors
/// See [`evaluate`].
pub fn fold_states<I, F>(
    dist: I,
    k: usize,
    full_state: &[usize],
    policy: DegradedPolicy,
    mut eval: F,
) -> Result<PerformabilityReport, PerformabilityError>
where
    I: IntoIterator<Item = (Vec<usize>, f64)>,
    F: FnMut(&[usize]) -> Result<Arc<StateEvaluation>, PerformabilityError>,
{
    if let DegradedPolicy::Penalty { waiting_time } = policy {
        if !(waiting_time.is_finite() && waiting_time >= 0.0) {
            return Err(PerformabilityError::InvalidPenalty {
                value: waiting_time,
            });
        }
    }
    let mut obs_span = wfms_obs::span!("performability");
    let mut details = Vec::new();
    let mut probability_down = 0.0;
    let mut probability_saturated = 0.0;
    let mut probability_serving = 0.0;
    let mut degraded_evaluations: u64 = 0;

    for (state, probability) in dist {
        if state != full_state {
            degraded_evaluations += 1;
        }
        let evaluation = eval(&state)?;
        if evaluation.down {
            probability_down += probability;
        } else if evaluation.saturated {
            probability_saturated += probability;
        } else {
            probability_serving += probability;
        }
        details.push(StateDetail {
            state,
            probability,
            outcomes: evaluation.outcomes.clone(),
        });
    }
    obs_span.record("states", details.len() as u64);

    let mut expected_waiting = vec![0.0; k];
    match policy {
        DegradedPolicy::Conditional => {
            if probability_serving <= 0.0 {
                return Err(PerformabilityError::NoServingStates);
            }
            for d in &details {
                if d.is_serving() {
                    for (x, o) in d.outcomes.iter().enumerate() {
                        expected_waiting[x] +=
                            d.probability * o.waiting_time().expect("serving state is stable");
                    }
                }
            }
            for w in expected_waiting.iter_mut() {
                *w /= probability_serving;
            }
        }
        DegradedPolicy::Penalty { waiting_time } => {
            for d in &details {
                for (x, o) in d.outcomes.iter().enumerate() {
                    let w = o.waiting_time().unwrap_or(waiting_time);
                    expected_waiting[x] += d.probability * w;
                }
            }
        }
    }

    obs_span.record("degraded", degraded_evaluations);
    obs_span.record("serving", probability_serving);
    wfms_obs::counter("performability.state-evaluations", details.len() as u64);
    wfms_obs::counter("performability.degraded-evaluations", degraded_evaluations);

    Ok(PerformabilityReport {
        expected_waiting,
        probability_down,
        probability_saturated,
        probability_serving,
        states_evaluated: details.len(),
        details,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfms_statechart::paper_section52_registry;

    fn registry() -> ServerTypeRegistry {
        paper_section52_registry()
    }

    /// A load that puts utilization `rho` on a single server of each type.
    fn load_at(rho: f64, reg: &ServerTypeRegistry) -> SystemLoad {
        let rates: Vec<f64> = reg.iter().map(|(_, t)| rho / t.service_time_mean).collect();
        SystemLoad {
            request_rates: rates,
            total_arrival_rate: 1.0,
            active_instances: vec![],
        }
    }

    #[test]
    fn performability_exceeds_failure_blind_waiting() {
        // With failures, some probability mass sits in degraded states with
        // fewer replicas and thus higher waiting times.
        let reg = registry();
        let config = Configuration::uniform(&reg, 2).unwrap();
        let load = load_at(0.6, &reg); // 2 replicas -> 30% each at full strength
        let report = evaluate(&reg, &config, &load, DegradedPolicy::Conditional).unwrap();
        let blind = waiting_times(&load, &reg, config.as_slice()).unwrap();
        for (x, (b, w_perf)) in blind.iter().zip(&report.expected_waiting).enumerate() {
            let w_blind = b.waiting_time().unwrap();
            assert!(
                w_perf > &w_blind,
                "type {x}: performability {w_perf} !> failure-blind {w_blind}"
            );
        }
    }

    #[test]
    fn least_reliable_type_degrades_most() {
        let reg = registry();
        let config = Configuration::uniform(&reg, 2).unwrap();
        let load = load_at(0.8, &reg);
        let report = evaluate(&reg, &config, &load, DegradedPolicy::Conditional).unwrap();
        let blind = waiting_times(&load, &reg, config.as_slice()).unwrap();
        // Relative degradation per type; the app server (most failure-prone)
        // must suffer the largest relative increase.
        let degradation: Vec<f64> = report
            .expected_waiting
            .iter()
            .zip(&blind)
            .map(|(w, b)| w / b.waiting_time().unwrap())
            .collect();
        assert!(degradation[2] > degradation[1]);
        assert!(degradation[1] > degradation[0]);
    }

    #[test]
    fn probabilities_partition_unity() {
        let reg = registry();
        let config = Configuration::uniform(&reg, 2).unwrap();
        let load = load_at(1.2, &reg); // 0.6 per replica at full strength
        let report = evaluate(&reg, &config, &load, DegradedPolicy::Conditional).unwrap();
        let total =
            report.probability_down + report.probability_saturated + report.probability_serving;
        assert!((total - 1.0).abs() < 1e-9);
        assert!(report.probability_down > 0.0);
        // A single failed replica concentrates rho = 1.2 on the survivor.
        assert!(report.probability_saturated > 0.0);
        assert_eq!(report.states_evaluated, 27);
    }

    #[test]
    fn light_load_has_no_saturated_states() {
        let reg = registry();
        let config = Configuration::uniform(&reg, 2).unwrap();
        let load = load_at(0.4, &reg); // even a single replica stays below 0.8
        let report = evaluate(&reg, &config, &load, DegradedPolicy::Conditional).unwrap();
        assert_eq!(report.probability_saturated, 0.0);
        assert!(report.probability_down > 0.0);
    }

    #[test]
    fn penalty_policy_interpolates_to_the_paper_formula() {
        let reg = registry();
        let config = Configuration::uniform(&reg, 2).unwrap();
        let load = load_at(0.5, &reg);
        let conditional = evaluate(&reg, &config, &load, DegradedPolicy::Conditional).unwrap();
        let low_pen = evaluate(
            &reg,
            &config,
            &load,
            DegradedPolicy::Penalty { waiting_time: 0.0 },
        )
        .unwrap();
        let high_pen = evaluate(
            &reg,
            &config,
            &load,
            DegradedPolicy::Penalty { waiting_time: 1e3 },
        )
        .unwrap();
        for x in 0..3 {
            assert!(low_pen.expected_waiting[x] <= conditional.expected_waiting[x] + 1e-12);
            assert!(high_pen.expected_waiting[x] > conditional.expected_waiting[x]);
        }
    }

    #[test]
    fn more_replicas_improve_performability() {
        let reg = registry();
        let load = load_at(0.7, &reg);
        let w2 = evaluate(
            &reg,
            &Configuration::uniform(&reg, 2).unwrap(),
            &load,
            DegradedPolicy::Conditional,
        )
        .unwrap()
        .max_expected_waiting();
        let w3 = evaluate(
            &reg,
            &Configuration::uniform(&reg, 3).unwrap(),
            &load,
            DegradedPolicy::Conditional,
        )
        .unwrap()
        .max_expected_waiting();
        assert!(w3 < w2, "3-way {w3} !< 2-way {w2}");
    }

    #[test]
    fn overloaded_system_reports_no_serving_states() {
        let reg = registry();
        let config = Configuration::minimal(&reg);
        let load = load_at(1.5, &reg); // saturates even at full strength
        assert!(matches!(
            evaluate(&reg, &config, &load, DegradedPolicy::Conditional),
            Err(PerformabilityError::NoServingStates)
        ));
        // The penalty policy still produces a number.
        let pen = evaluate(
            &reg,
            &config,
            &load,
            DegradedPolicy::Penalty { waiting_time: 60.0 },
        )
        .unwrap();
        assert!(pen.expected_waiting.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn invalid_penalty_is_rejected() {
        let reg = registry();
        let config = Configuration::minimal(&reg);
        let load = load_at(0.2, &reg);
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            assert!(matches!(
                evaluate(
                    &reg,
                    &config,
                    &load,
                    DegradedPolicy::Penalty { waiting_time: bad }
                ),
                Err(PerformabilityError::InvalidPenalty { .. })
            ));
        }
    }

    #[test]
    fn details_expose_degraded_states() {
        let reg = registry();
        let config = Configuration::uniform(&reg, 2).unwrap();
        let load = load_at(0.5, &reg);
        let report = evaluate(&reg, &config, &load, DegradedPolicy::Conditional).unwrap();
        // Find the state with one app server down: (2,2,1).
        let detail = report
            .details
            .iter()
            .find(|d| d.state == vec![2, 2, 1])
            .expect("state (2,2,1) present");
        assert!(detail.is_serving());
        // App server waiting in that state must exceed the full-state value.
        let full = report
            .details
            .iter()
            .find(|d| d.state == vec![2, 2, 2])
            .unwrap();
        let w_degraded = detail.outcomes[2].waiting_time().unwrap();
        let w_full = full.outcomes[2].waiting_time().unwrap();
        assert!(w_degraded > w_full);
        // Down state detected.
        let down = report
            .details
            .iter()
            .find(|d| d.state == vec![0, 2, 2])
            .unwrap();
        assert!(!down.is_serving());
        assert!(matches!(down.outcomes[0], WaitingOutcome::Down));
    }

    #[test]
    fn max_expected_waiting_is_the_row_maximum() {
        let report = PerformabilityReport {
            expected_waiting: vec![0.1, 0.5, 0.3],
            probability_down: 0.0,
            probability_saturated: 0.0,
            probability_serving: 1.0,
            states_evaluated: 0,
            details: vec![],
        };
        assert_eq!(report.max_expected_waiting(), 0.5);
    }
}
