//! Adversarial-transport tests against an in-process daemon: oversized
//! and malformed request lines, split and pipelined writes, mid-request
//! disconnects, slow-loris and idle deadlines, the per-request compute
//! deadline, and the per-tenant circuit breaker over TCP. The clean
//! lifecycle path is covered by the CLI crate's tests against the
//! spawned binary; these tests bind port 0 in-process so each case can
//! pick its own deadlines without subprocess plumbing.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use serde_json::Value;
use wfms_proto::{
    HealthResult, Request, Response, ERR_BAD_REQUEST, ERR_DEADLINE_EXCEEDED, ERR_INVALID_PARAMS,
    ERR_UNAVAILABLE, METHOD_ASSESS, METHOD_HEALTH, METHOD_METRICS, METHOD_SHUTDOWN,
    PROTOCOL_VERSION,
};
use wfms_serve::{serve, ServeError, ServeOptions};

/// A `Write` sink forwarding complete lines over a channel, so the test
/// can observe the ready and stop lines of a daemon running in-process.
struct LineSink {
    tx: mpsc::Sender<String>,
    buf: Vec<u8>,
}

impl Write for LineSink {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        while let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=nl).collect();
            let _ = self
                .tx
                .send(String::from_utf8_lossy(&line).trim_end().to_string());
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct TestDaemon {
    addr: String,
    lines: mpsc::Receiver<String>,
    handle: thread::JoinHandle<Result<(), ServeError>>,
}

/// Boots `serve` on port 0 in a background thread and waits for the
/// ready line to learn the actual address.
fn start(mut opts: ServeOptions) -> TestDaemon {
    opts.listen = "127.0.0.1:0".to_string();
    let (tx, lines) = mpsc::channel();
    let handle = thread::spawn(move || {
        let mut sink = LineSink {
            tx,
            buf: Vec::new(),
        };
        serve(&opts, &mut sink)
    });
    let ready = lines
        .recv_timeout(Duration::from_secs(10))
        .expect("ready line");
    assert!(
        ready.starts_with("wfms serve: listening on "),
        "unexpected ready line: {ready:?}"
    );
    let addr = ready
        .trim_start_matches("wfms serve: listening on ")
        .split_whitespace()
        .next()
        .expect("ready line carries the address")
        .to_string();
    TestDaemon {
        addr,
        lines,
        handle,
    }
}

impl TestDaemon {
    fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(&self.addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("set read timeout");
        stream
    }

    /// One request line on a fresh connection, one response line back.
    fn roundtrip(&self, request: &Request) -> Response {
        let mut stream = self.connect();
        let line = serde_json::to_string(request).expect("serialize request");
        stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("send request");
        read_response(&mut BufReader::new(stream))
    }

    /// Graceful shutdown: ack, clean `serve` return, stop line.
    fn shutdown(self) {
        let ack = self.roundtrip(&Request::new(METHOD_SHUTDOWN, Value::Null));
        assert!(ack.ok, "shutdown is acknowledged: {:?}", ack.error);
        self.handle
            .join()
            .expect("daemon thread")
            .expect("serve returns cleanly");
        let stop = self
            .lines
            .recv_timeout(Duration::from_secs(5))
            .expect("stop line");
        assert_eq!(stop, "wfms serve: stopped");
    }
}

fn read_response(reader: &mut impl BufRead) -> Response {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    serde_json::from_str(&line).expect("response parses")
}

fn error_kind(response: &Response) -> &str {
    assert!(!response.ok, "expected a failure response");
    response
        .error
        .as_ref()
        .map(|e| e.kind.as_str())
        .expect("failure carries an error body")
}

fn error_message(response: &Response) -> String {
    response
        .error
        .as_ref()
        .map(|e| e.message.clone())
        .expect("failure carries an error body")
}

fn spec(file: &str) -> Value {
    let path = format!(
        "{}/../../examples/specs/ep/{file}",
        env!("CARGO_MANIFEST_DIR")
    );
    let raw = std::fs::read_to_string(&path).expect("read spec fixture");
    serde_json::from_str(&raw).expect("spec fixture parses")
}

fn request(method: &str, tenant: &str, params: Value) -> Request {
    Request {
        v: PROTOCOL_VERSION,
        id: Some(format!("{method}-{tenant}")),
        tenant: Some(tenant.to_string()),
        method: method.to_string(),
        params,
    }
}

fn json<T: serde::Serialize>(value: T) -> Value {
    serde_json::to_value(value).expect("encode test value")
}

fn assess_request(tenant: &str) -> Request {
    let mut params = serde_json::Map::new();
    params.insert("registry".to_string(), spec("registry.json"));
    params.insert("workload".to_string(), spec("workload.json"));
    params.insert("config".to_string(), json(vec![2u64, 2, 2]));
    params.insert("max_wait".to_string(), json(0.05));
    request(METHOD_ASSESS, tenant, Value::Object(params))
}

#[test]
fn oversized_request_line_is_rejected_typed_and_the_connection_closes() {
    let daemon = start(ServeOptions {
        max_line_bytes: 128,
        ..ServeOptions::default()
    });

    let mut stream = daemon.connect();
    // 300 bytes and no newline: the length bound must fire without
    // waiting for a line terminator that may never come.
    stream.write_all(&[b'a'; 300]).expect("send oversized line");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let response = read_response(&mut reader);
    assert_eq!(error_kind(&response), ERR_BAD_REQUEST);
    assert!(
        error_message(&response).contains("exceeds 128 bytes"),
        "names the bound: {response:?}"
    );
    // The connection closes after the rejection.
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("drain");
    assert!(rest.is_empty(), "connection must be closed: {rest:?}");

    daemon.shutdown();
}

#[test]
fn garbage_bytes_get_bad_request_and_the_connection_survives() {
    let daemon = start(ServeOptions::default());

    let mut stream = daemon.connect();
    stream
        .write_all(b"\x00\xffthis is not json\n")
        .expect("send garbage");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let response = read_response(&mut reader);
    assert_eq!(error_kind(&response), ERR_BAD_REQUEST);
    assert!(
        error_message(&response).contains("malformed request line"),
        "got: {response:?}"
    );

    // The same connection still serves well-formed requests.
    let line = serde_json::to_string(&Request::new(METHOD_METRICS, Value::Null)).expect("encode");
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("send metrics");
    let response = read_response(&mut reader);
    assert!(response.ok, "metrics after garbage: {:?}", response.error);

    daemon.shutdown();
}

#[test]
fn split_writes_reassemble_into_one_request() {
    let daemon = start(ServeOptions::default());

    let line = serde_json::to_string(&request(METHOD_METRICS, "split", Value::Null))
        .expect("encode request");
    let bytes = format!("{line}\n").into_bytes();
    let mut stream = daemon.connect();
    let third = bytes.len() / 3;
    for chunk in [
        &bytes[..third],
        &bytes[third..2 * third],
        &bytes[2 * third..],
    ] {
        stream.write_all(chunk).expect("send chunk");
        stream.flush().expect("flush chunk");
        thread::sleep(Duration::from_millis(50));
    }
    let response = read_response(&mut BufReader::new(stream));
    assert!(response.ok, "split request served: {:?}", response.error);
    assert_eq!(response.id.as_deref(), Some("metrics-split"));

    daemon.shutdown();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let daemon = start(ServeOptions::default());

    let mut first = request(METHOD_METRICS, "pipe", Value::Null);
    first.id = Some("m-1".to_string());
    let mut second = request(METHOD_HEALTH, "pipe", Value::Null);
    second.id = Some("m-2".to_string());
    let batch = format!(
        "{}\n{}\n",
        serde_json::to_string(&first).expect("encode"),
        serde_json::to_string(&second).expect("encode"),
    );
    let mut stream = daemon.connect();
    stream.write_all(batch.as_bytes()).expect("send batch");
    let mut reader = BufReader::new(stream);
    let one = read_response(&mut reader);
    let two = read_response(&mut reader);
    assert!(one.ok && two.ok, "both served: {one:?} {two:?}");
    assert_eq!(one.id.as_deref(), Some("m-1"), "responses keep order");
    assert_eq!(two.id.as_deref(), Some("m-2"), "responses keep order");

    daemon.shutdown();
}

#[test]
fn mid_request_disconnect_leaves_the_daemon_healthy() {
    let daemon = start(ServeOptions::default());

    for _ in 0..4 {
        let mut stream = daemon.connect();
        stream
            .write_all(b"{\"v\":1,\"method\":\"ass")
            .expect("send partial request");
        drop(stream);
    }
    // The torn connections are contained; a fresh client is served.
    let response = daemon.roundtrip(&Request::new(METHOD_METRICS, Value::Null));
    assert!(
        response.ok,
        "daemon survives torn clients: {:?}",
        response.error
    );

    daemon.shutdown();
}

#[test]
fn slow_loris_line_is_timed_out_typed() {
    let daemon = start(ServeOptions {
        line_timeout: Duration::from_millis(400),
        ..ServeOptions::default()
    });

    let mut stream = daemon.connect();
    stream.write_all(b"{").expect("send first byte");
    // Dribble nothing further: the per-line deadline must fire even
    // though the connection is not idle.
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let response = read_response(&mut reader);
    assert_eq!(error_kind(&response), ERR_BAD_REQUEST);
    assert_eq!(
        error_message(&response),
        "request line timed out after 400ms"
    );
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("drain");
    assert!(rest.is_empty(), "connection must be closed: {rest:?}");

    daemon.shutdown();
}

#[test]
fn idle_connection_is_timed_out_typed() {
    let daemon = start(ServeOptions {
        io_timeout: Duration::from_millis(300),
        ..ServeOptions::default()
    });

    let stream = daemon.connect();
    let mut reader = BufReader::new(stream);
    let response = read_response(&mut reader);
    assert_eq!(error_kind(&response), ERR_BAD_REQUEST);
    assert_eq!(
        error_message(&response),
        "idle connection timed out after 300ms"
    );

    daemon.shutdown();
}

#[test]
fn compute_deadline_answers_deadline_exceeded() {
    // A 1ms compute deadline: the cold assess (an engine build plus
    // solves) can never finish in time, so the typed deadline answer is
    // deterministic. The daemon is deliberately leaked instead of
    // drained — its own shutdown ack would race the same 1ms deadline.
    let daemon = start(ServeOptions {
        request_deadline: Some(Duration::from_millis(1)),
        ..ServeOptions::default()
    });

    let response = daemon.roundtrip(&assess_request("deadline"));
    assert_eq!(error_kind(&response), ERR_DEADLINE_EXCEEDED);
    assert!(
        error_message(&response).contains("1ms compute deadline"),
        "names the deadline: {response:?}"
    );

    // The worker that answered is back in the pool: cheap requests
    // eventually land inside even this deadline.
    let alive = (0..50).any(|_| {
        daemon
            .roundtrip(&request(METHOD_HEALTH, "deadline", Value::Null))
            .ok
    });
    assert!(alive, "daemon keeps serving after a deadline overrun");
}

#[test]
fn open_breaker_sheds_one_tenant_while_another_is_served() {
    let daemon = start(ServeOptions {
        breaker_threshold: 1,
        breaker_cooldown: Duration::from_millis(400),
        ..ServeOptions::default()
    });

    // One guarded failure (undecodable assess params) opens the
    // threshold-1 breaker for tenant "flaky".
    let mut undecodable = serde_json::Map::new();
    undecodable.insert("registry".to_string(), json(42u64));
    let bad = daemon.roundtrip(&request(METHOD_ASSESS, "flaky", Value::Object(undecodable)));
    assert_eq!(error_kind(&bad), ERR_INVALID_PARAMS);

    // A well-formed request on the open tenant is shed with the typed
    // `unavailable` answer and a retry hint...
    let shed = daemon.roundtrip(&assess_request("flaky"));
    assert_eq!(error_kind(&shed), ERR_UNAVAILABLE);
    assert!(
        error_message(&shed).contains("retry after"),
        "carries the retry hint: {shed:?}"
    );

    // ...while a second tenant completes normally, and the cheap
    // introspection methods stay reachable for everyone.
    let other = daemon.roundtrip(&assess_request("steady"));
    assert!(other.ok, "second tenant unaffected: {:?}", other.error);
    let health = daemon.roundtrip(&request(METHOD_HEALTH, "flaky", Value::Null));
    assert!(health.ok, "health answers with a breaker open");
    let health: HealthResult =
        serde_json::from_value(health.result.expect("result populated")).expect("typed result");
    assert_eq!(health.state, "ready");
    let flaky = health
        .breakers
        .iter()
        .find(|b| b.tenant == "flaky")
        .expect("flaky breaker reported");
    assert_eq!(flaky.state, "open");

    // After the cooldown the half-open probe is admitted; its success
    // closes the breaker.
    thread::sleep(Duration::from_millis(600));
    let probe = daemon.roundtrip(&assess_request("flaky"));
    assert!(probe.ok, "half-open probe served: {:?}", probe.error);
    let health = daemon.roundtrip(&request(METHOD_HEALTH, "flaky", Value::Null));
    let health: HealthResult =
        serde_json::from_value(health.result.expect("result populated")).expect("typed result");
    let flaky = health
        .breakers
        .iter()
        .find(|b| b.tenant == "flaky")
        .expect("flaky breaker reported");
    assert_eq!(flaky.state, "closed", "probe success closes the breaker");
    assert_eq!(flaky.consecutive_failures, 0);

    daemon.shutdown();
}
