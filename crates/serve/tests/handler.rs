//! Integration tests for the shared request handler: warm/cold
//! byte-identity, the per-tenant LRU bound, and the typed error
//! vocabulary — everything short of the TCP transport, which the CLI
//! crate's lifecycle tests cover against the spawned binary.

use std::time::{Duration, Instant};

use serde_json::Value;
use wfms_proto::{
    AssessResult, HealthResult, MetricsResult, PerTypeWait, Request, Response, ShutdownResult,
    ERR_INVALID_PARAMS, ERR_UNAVAILABLE, ERR_UNKNOWN_METHOD, ERR_UNSUPPORTED_VERSION,
    METHOD_ASSESS, METHOD_HEALTH, METHOD_LINT, METHOD_METRICS, METHOD_RECOMMEND, METHOD_SHUTDOWN,
    PROTOCOL_VERSION,
};
use wfms_serve::{BreakerPolicy, Handler};

fn spec(scenario: &str, file: &str) -> Value {
    let path = format!(
        "{}/../../examples/specs/{scenario}/{file}",
        env!("CARGO_MANIFEST_DIR")
    );
    let raw = std::fs::read_to_string(&path).expect("read spec fixture");
    serde_json::from_str(&raw).expect("spec fixture parses")
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    let mut map = serde_json::Map::new();
    for (key, value) in pairs {
        map.insert(key.to_string(), value);
    }
    Value::Object(map)
}

/// Encodes a plain Rust value through the vendored serializer.
fn json<T: serde::Serialize>(value: T) -> Value {
    serde_json::to_value(value).expect("encode test value")
}

fn assess_params(scenario: &str, config: &[u64]) -> Value {
    obj(vec![
        ("registry", spec(scenario, "registry.json")),
        ("workload", spec(scenario, "workload.json")),
        ("config", json(config.to_vec())),
        ("max_wait", json(0.05)),
        ("min_availability", json(0.9999)),
    ])
}

fn request(method: &str, tenant: &str, params: Value) -> Request {
    Request {
        v: PROTOCOL_VERSION,
        id: Some(format!("{method}-{tenant}")),
        tenant: Some(tenant.to_string()),
        method: method.to_string(),
        params,
    }
}

fn error_kind(response: &Response) -> &str {
    assert!(!response.ok, "expected a failure response");
    response
        .error
        .as_ref()
        .map(|e| e.kind.as_str())
        .expect("failure carries an error body")
}

#[test]
fn warm_repeat_is_byte_identical_and_hits_the_engine_cache() {
    let handler = Handler::new(4);
    let req = request(METHOD_ASSESS, "acme", assess_params("ep", &[2, 2, 2]));

    let cold = handler.handle(&req);
    assert!(cold.ok, "cold assess succeeds: {:?}", cold.error);
    let warm = handler.handle(&req);
    assert!(warm.ok, "warm assess succeeds: {:?}", warm.error);

    // The serving contract: a warm repeat of the same request yields a
    // byte-identical response line...
    let cold_line = serde_json::to_string(&cold).expect("serialize");
    let warm_line = serde_json::to_string(&warm).expect("serialize");
    assert_eq!(cold_line, warm_line, "warm and cold answers must agree");

    // ...while actually replaying the warm engine's memo caches.
    let hits = handler
        .tenant_cache_hits("acme")
        .expect("tenant engine is warm");
    assert!(hits > 0, "warm repeat must hit the engine cache");

    let result: AssessResult =
        serde_json::from_value(warm.result.expect("result populated")).expect("typed result");
    assert_eq!(result.server_types.len(), 3);
    assert!(result.configuration.starts_with("Y("));
    assert_eq!(result.turnarounds.len(), 1);
    assert!(result.turnarounds[0].mean_minutes > 0.0);
    assert!(result.turnarounds[0].p90_minutes >= result.turnarounds[0].mean_minutes);
}

#[test]
fn changed_inputs_rebuild_the_tenant_engine_cold() {
    let handler = Handler::new(4);
    let loose = handler.handle(&request(
        METHOD_ASSESS,
        "acme",
        assess_params("ep", &[2, 2, 2]),
    ));
    assert!(loose.ok);

    // Same tenant, different goals: the fingerprint changes, so the
    // slot is rebuilt rather than silently answering from stale state.
    let mut params = assess_params("ep", &[2, 2, 2]);
    if let Value::Object(map) = &mut params {
        map.insert("max_wait".to_string(), json(0.0001));
    }
    let tight = handler.handle(&request(METHOD_ASSESS, "acme", params));
    assert!(tight.ok, "rebuilt tenant succeeds: {:?}", tight.error);
    assert_eq!(handler.tenant_count(), 1, "rebuild replaces, not adds");
    assert_ne!(
        serde_json::to_string(&loose).expect("serialize"),
        serde_json::to_string(&tight).expect("serialize"),
        "different goals must change the goal-check surface"
    );
}

#[test]
fn tenant_slots_are_lru_bounded() {
    let handler = Handler::new(2);
    for tenant in ["t1", "t2", "t3"] {
        let resp = handler.handle(&request(
            METHOD_ASSESS,
            tenant,
            assess_params("ep", &[2, 2, 2]),
        ));
        assert!(resp.ok, "assess for {tenant}: {:?}", resp.error);
    }
    assert_eq!(handler.tenant_count(), 2, "LRU cap must bound the map");
    // t1 was least recently used; its warm engine is gone.
    assert_eq!(handler.tenant_cache_hits("t1"), None);
    assert!(handler.tenant_cache_hits("t3").is_some());
}

#[test]
fn recommend_greedy_returns_a_typed_result() {
    let handler = Handler::new(2);
    let params = obj(vec![
        ("registry", spec("ep", "registry.json")),
        ("workload", spec("ep", "workload.json")),
        ("max_wait", json(0.05)),
        ("min_availability", json(0.9999)),
    ]);
    let resp = handler.handle(&request(METHOD_RECOMMEND, "acme", params));
    assert!(resp.ok, "greedy recommend succeeds: {:?}", resp.error);
    let result: wfms_proto::RecommendResult =
        serde_json::from_value(resp.result.expect("result populated")).expect("typed result");
    assert_eq!(result.search, "greedy");
    assert!(result.evaluations > 0);
    assert!(result.configuration.starts_with("Y("));
}

#[test]
fn unknown_search_strategy_is_an_invalid_params_error() {
    let handler = Handler::new(2);
    let params = obj(vec![
        ("registry", spec("ep", "registry.json")),
        ("workload", spec("ep", "workload.json")),
        ("search", Value::String("simulated-annealing!".to_string())),
        ("max_wait", json(0.05)),
    ]);
    let resp = handler.handle(&request(METHOD_RECOMMEND, "acme", params));
    assert_eq!(error_kind(&resp), ERR_INVALID_PARAMS);
    let message = resp.error.expect("error body").message;
    assert!(message.contains("unknown search"), "got: {message}");
}

#[test]
fn lint_reports_findings_for_an_inline_model() {
    let handler = Handler::new(2);
    let params = obj(vec![
        ("registry", spec("ep", "registry.json")),
        ("workload", spec("ep", "workload.json")),
        ("max_wait", json(0.05)),
        ("min_availability", json(0.9999)),
    ]);
    let resp = handler.handle(&request(METHOD_LINT, "acme", params));
    assert!(resp.ok, "lint succeeds: {:?}", resp.error);
    let result: wfms_proto::LintResult =
        serde_json::from_value(resp.result.expect("result populated")).expect("typed result");
    assert_eq!(result.errors, 0, "the shipped EP spec lints clean");
    assert!(!result.summary.is_empty());
}

#[test]
fn metrics_reports_tenant_and_queue_gauges() {
    let handler = Handler::new(4);
    handler.queue().configure(64, 4);
    let assess = handler.handle(&request(
        METHOD_ASSESS,
        "acme",
        assess_params("ep", &[2, 2, 2]),
    ));
    assert!(assess.ok);
    let warm = handler.handle(&request(
        METHOD_ASSESS,
        "acme",
        assess_params("ep", &[2, 2, 2]),
    ));
    assert!(warm.ok);

    let resp = handler.handle(&request(METHOD_METRICS, "acme", Value::Null));
    assert!(resp.ok, "metrics succeeds: {:?}", resp.error);
    let result: MetricsResult =
        serde_json::from_value(resp.result.expect("result populated")).expect("typed result");
    assert_eq!(result.tenants.len(), 1);
    assert_eq!(result.tenants[0].tenant, "acme");
    assert!(result.tenants[0].cache_hits > 0, "warm repeat shows up");
    assert!(result.tenants[0].state_entries > 0);
    assert_eq!(result.queue.capacity, 64);
    assert_eq!(result.queue.workers, 4);
    assert_eq!(result.queue.overloaded, 0);
}

#[test]
fn shutdown_is_acknowledged() {
    let handler = Handler::new(1);
    let resp = handler.handle(&request(METHOD_SHUTDOWN, "acme", Value::Null));
    assert!(resp.ok);
    let result: ShutdownResult =
        serde_json::from_value(resp.result.expect("result populated")).expect("typed result");
    assert!(result.stopping);
}

#[test]
fn protocol_errors_use_the_stable_vocabulary() {
    let handler = Handler::new(1);

    let mut wrong_version = request(METHOD_METRICS, "acme", Value::Null);
    wrong_version.v = 99;
    let resp = handler.handle(&wrong_version);
    assert_eq!(error_kind(&resp), ERR_UNSUPPORTED_VERSION);
    assert_eq!(resp.id.as_deref(), Some("metrics-acme"), "id echoes back");

    let resp = handler.handle(&request("frobnicate", "acme", Value::Null));
    assert_eq!(error_kind(&resp), ERR_UNKNOWN_METHOD);
    let message = resp.error.expect("error body").message;
    assert!(message.contains("assess"), "lists the methods: {message}");

    let resp = handler.handle(&request(METHOD_ASSESS, "acme", obj(vec![])));
    assert_eq!(error_kind(&resp), ERR_INVALID_PARAMS);

    // Model-level failures carry the exact tool error text under the
    // `tool` kind: a replica vector of the wrong length is an
    // architecture error, not a panic.
    let resp = handler.handle(&request(METHOD_ASSESS, "acme", assess_params("ep", &[2])));
    assert_eq!(error_kind(&resp), wfms_proto::ERR_TOOL);
}

#[test]
fn sparse_client_json_decodes_with_defaults() {
    // A hand-written daemon client sending only the required fields
    // must get the same answer as one spelling out every null.
    let handler = Handler::new(2);
    let sparse = handler.handle(&request(
        METHOD_ASSESS,
        "acme",
        obj(vec![
            ("registry", spec("ep", "registry.json")),
            ("workload", spec("ep", "workload.json")),
            ("config", json(vec![2u64, 2, 2])),
            ("max_wait", json(0.05)),
        ]),
    ));
    assert!(sparse.ok, "sparse params succeed: {:?}", sparse.error);
    let result: AssessResult =
        serde_json::from_value(sparse.result.expect("result populated")).expect("typed result");
    assert_eq!(result.server_types.len(), 3);

    // Omitting every goal is rejected with the exact one-shot CLI
    // message, under the `tool` kind — not a decode error.
    let no_goals = handler.handle(&request(
        METHOD_ASSESS,
        "acme",
        obj(vec![
            ("registry", spec("ep", "registry.json")),
            ("workload", spec("ep", "workload.json")),
            ("config", json(vec![2u64, 2, 2])),
        ]),
    ));
    assert_eq!(error_kind(&no_goals), wfms_proto::ERR_TOOL);
    let message = no_goals.error.expect("error body").message;
    assert_eq!(message, "no performability goal specified");
}

/// Per-type goal entries for the wire payload (`per_type_max_wait`).
fn per_type(entries: &[(&str, f64)]) -> Value {
    json(
        entries
            .iter()
            .map(|(name, max_wait)| PerTypeWait {
                server_type: name.to_string(),
                max_wait: *max_wait,
            })
            .collect::<Vec<_>>(),
    )
}

#[test]
fn per_type_waiting_goal_names_resolve_against_the_registry() {
    let handler = Handler::new(4);

    // An unknown server-type name is an invalid-params error listing
    // the registered names, so clients can self-correct.
    let mut params = assess_params("ep", &[2, 2, 2]);
    if let Value::Object(map) = &mut params {
        map.insert(
            "per_type_max_wait".to_string(),
            per_type(&[("frobnicator", 0.05)]),
        );
    }
    let resp = handler.handle(&request(METHOD_ASSESS, "acme", params));
    assert_eq!(error_kind(&resp), ERR_INVALID_PARAMS);
    let message = resp.error.expect("error body").message;
    assert!(
        message.contains("frobnicator") && message.contains("registered:"),
        "lists the registered names: {message}"
    );
    assert!(
        message.contains("workflow-engine"),
        "names come from the registry document: {message}"
    );
}

#[test]
fn per_type_waiting_goal_changes_the_goal_check_deterministically() {
    let handler = Handler::new(4);

    let with_goal = |max_wait: f64| {
        let mut params = assess_params("ep", &[2, 2, 2]);
        if let Value::Object(map) = &mut params {
            map.insert(
                "per_type_max_wait".to_string(),
                per_type(&[("workflow-engine", max_wait)]),
            );
        }
        handler.handle(&request(METHOD_ASSESS, "acme", params))
    };

    // A generous per-type bound and an impossible one must both
    // succeed as assessments but disagree on the goal surface.
    let generous = with_goal(10.0);
    assert!(generous.ok, "generous per-type goal: {:?}", generous.error);
    let impossible = with_goal(1e-9);
    assert!(
        impossible.ok,
        "impossible per-type goal still assesses: {:?}",
        impossible.error
    );
    assert_ne!(
        serde_json::to_string(&generous).expect("serialize"),
        serde_json::to_string(&impossible).expect("serialize"),
        "the per-type bound must reach the goal check"
    );

    // Determinism carries over: a warm repeat with the same per-type
    // goal is byte-identical.
    let repeat = with_goal(10.0);
    assert_eq!(
        serde_json::to_string(&generous).expect("serialize"),
        serde_json::to_string(&repeat).expect("serialize"),
    );
}

#[test]
fn open_breaker_sheds_fast_and_recovers_through_the_half_open_probe() {
    let handler = Handler::new(4);
    handler.set_breaker_policy(BreakerPolicy {
        threshold: 1,
        cooldown: Duration::from_millis(100),
    });

    // One guarded failure opens the threshold-1 breaker.
    let resp = handler.handle(&request(METHOD_ASSESS, "flaky", obj(vec![])));
    assert_eq!(error_kind(&resp), ERR_INVALID_PARAMS);

    // The shed path never touches an engine: the acceptance budget is
    // 10ms for the typed answer (in practice it is microseconds).
    let valid = request(METHOD_ASSESS, "flaky", assess_params("ep", &[2, 2, 2]));
    let started = Instant::now();
    let shed = handler.handle(&valid);
    let elapsed = started.elapsed();
    assert_eq!(error_kind(&shed), ERR_UNAVAILABLE);
    assert!(
        error_message_of(&shed).contains("retry after"),
        "carries the retry hint: {shed:?}"
    );
    assert!(
        elapsed < Duration::from_millis(10),
        "open-breaker shed must answer fast, took {elapsed:?}"
    );

    // Another tenant is admitted normally while "flaky" is open.
    let other = handler.handle(&request(
        METHOD_ASSESS,
        "steady",
        assess_params("ep", &[2, 2, 2]),
    ));
    assert!(other.ok, "other tenants unaffected: {:?}", other.error);

    // After the cooldown, the half-open probe is admitted and its
    // success closes the breaker again.
    std::thread::sleep(Duration::from_millis(150));
    let probe = handler.handle(&valid);
    assert!(probe.ok, "half-open probe served: {:?}", probe.error);
    let after = handler.handle(&valid);
    assert!(
        after.ok,
        "breaker closed after the probe: {:?}",
        after.error
    );
}

fn error_message_of(response: &Response) -> String {
    response
        .error
        .as_ref()
        .map(|e| e.message.clone())
        .expect("failure carries an error body")
}

#[test]
fn health_reports_serving_state_without_touching_engines() {
    let handler = Handler::new(2);
    handler.queue().configure(16, 2);

    let resp = handler.handle(&request(METHOD_HEALTH, "acme", Value::Null));
    assert!(resp.ok, "health succeeds: {:?}", resp.error);
    let health: HealthResult =
        serde_json::from_value(resp.result.expect("result populated")).expect("typed result");
    assert_eq!(health.state, "ready");
    assert_eq!(health.queue.capacity, 16);
    assert_eq!(health.worker_panics, 0);
    assert!(
        health.breakers.is_empty(),
        "breakers disabled by default: {:?}",
        health.breakers
    );
    assert_eq!(handler.tenant_count(), 0, "health builds no engine");

    // Watchdog and drain state surface through the same probe.
    handler.note_worker_panic();
    handler.set_draining(true);
    let resp = handler.handle(&request(METHOD_HEALTH, "acme", Value::Null));
    let health: HealthResult =
        serde_json::from_value(resp.result.expect("result populated")).expect("typed result");
    assert_eq!(health.state, "draining");
    assert_eq!(health.worker_panics, 1);
}

#[test]
fn recommend_incremental_and_screened_match_the_baseline_winner() {
    // Satellite contract: the incremental delta-assessment path must be
    // byte-identical to the from-scratch path on the wire, and the
    // adaptive-e screen may change how much work the search pays but
    // never which winner it returns. The CLI inherits this for free —
    // `wfms recommend` dispatches through this same shared handler.
    let handler = Handler::new(4);
    let recommend = |tenant: &str, extra: Vec<(&str, Value)>| {
        let mut pairs = vec![
            ("registry", spec("ep", "registry.json")),
            ("workload", spec("ep", "workload.json")),
            ("max_wait", json(0.05)),
            ("min_availability", json(0.9999)),
            ("avail_backend", Value::String("product".to_string())),
            ("epsilon", json(1e-9)),
        ];
        pairs.extend(extra);
        handler.handle(&request(METHOD_RECOMMEND, tenant, obj(pairs)))
    };

    let baseline = recommend("t-baseline", vec![("incremental", json(false))]);
    assert!(baseline.ok, "baseline recommend: {:?}", baseline.error);
    let incremental = recommend("t-incremental", vec![("incremental", json(true))]);
    assert!(
        incremental.ok,
        "incremental recommend: {:?}",
        incremental.error
    );

    // The no-screen incremental leg is bit-identical end to end.
    let baseline_bytes =
        serde_json::to_string(&baseline.result).expect("serialize baseline result");
    let incremental_bytes =
        serde_json::to_string(&incremental.result).expect("serialize incremental result");
    assert_eq!(baseline_bytes, incremental_bytes);

    // The screened leg may skip exact assessments but must land on the
    // same winner with a bitwise-equal winning assessment.
    let screened = recommend(
        "t-screened",
        vec![("screen_epsilon", json(1e-2)), ("rank_moves", json(false))],
    );
    assert!(screened.ok, "screened recommend: {:?}", screened.error);
    let base: wfms_proto::RecommendResult =
        serde_json::from_value(baseline.result.expect("baseline result")).expect("typed baseline");
    let scr: wfms_proto::RecommendResult =
        serde_json::from_value(screened.result.expect("screened result")).expect("typed screened");
    assert_eq!(base.configuration, scr.configuration);
    assert_eq!(
        serde_json::to_string(&base.assessment).expect("baseline assessment"),
        serde_json::to_string(&scr.assessment).expect("screened assessment"),
    );
}
