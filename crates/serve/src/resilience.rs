//! Per-tenant circuit breakers (DESIGN.md §13, resilience contract).
//!
//! One bad tenant spec must not burn worker time on every retry while
//! healthy tenants wait. Each tenant key owns a breaker: consecutive
//! handler failures up to a threshold open it, open-state requests are
//! shed fast with a typed `unavailable` response carrying a retry-after
//! hint, and after a cooldown exactly one half-open probe is admitted —
//! its success closes the breaker, its failure re-opens it.
//!
//! The registry is cheap when disabled (threshold `0`): every check is
//! one map lookup under the handler's existing locking discipline, and
//! no breaker state is ever created, so the one-shot in-process CLI
//! path is untouched.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use wfms_proto::BreakerStatus;

/// Breaker policy: how many consecutive failures open a tenant's
/// breaker, and how long it stays open before admitting the half-open
/// probe. `threshold == 0` disables breakers entirely.
#[derive(Debug, Clone, Copy)]
pub struct BreakerPolicy {
    /// Consecutive handler failures that open the breaker; `0` disables.
    pub threshold: u32,
    /// Open-state cooldown before one half-open probe is admitted.
    pub cooldown: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> BreakerPolicy {
        BreakerPolicy {
            threshold: 0,
            cooldown: Duration::from_millis(1000),
        }
    }
}

/// One tenant's breaker state machine.
#[derive(Debug)]
enum BreakerState {
    /// Normal service; counts consecutive failures.
    Closed { failures: u32 },
    /// Shedding fast until the cooldown elapses.
    Open { since: Instant },
    /// One probe is in flight; its outcome decides the next state.
    HalfOpen,
}

/// The admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Serve the request normally.
    Serve,
    /// Serve it as the half-open probe (outcome decides the breaker).
    Probe,
    /// Shed it with `unavailable`; retry after the carried hint.
    Shed {
        /// Milliseconds until the half-open probe will be admitted.
        retry_after_ms: u64,
    },
}

/// All tenants' breakers, keyed by tenant id. Deterministic iteration
/// (BTreeMap) keeps the `health` report byte-stable.
#[derive(Debug, Default)]
pub struct BreakerRegistry {
    policy: Mutex<BreakerPolicy>,
    tenants: Mutex<BTreeMap<String, BreakerState>>,
}

/// Locks a registry mutex, riding through poisoning (a panicking worker
/// must not wedge the daemon).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl BreakerRegistry {
    /// Installs the breaker policy; `threshold == 0` keeps breakers
    /// disabled (the default).
    pub fn set_policy(&self, policy: BreakerPolicy) {
        *lock(&self.policy) = policy;
    }

    /// The installed policy.
    pub fn policy(&self) -> BreakerPolicy {
        *lock(&self.policy)
    }

    /// True when the policy enables breakers.
    pub fn enabled(&self) -> bool {
        self.policy().threshold > 0
    }

    /// Decides admission for one request of `tenant`, transitioning an
    /// open breaker to half-open when its cooldown has elapsed.
    pub fn admit(&self, tenant: &str) -> Admission {
        let policy = self.policy();
        if policy.threshold == 0 {
            return Admission::Serve;
        }
        let mut tenants = lock(&self.tenants);
        let Some(state) = tenants.get_mut(tenant) else {
            return Admission::Serve;
        };
        match state {
            BreakerState::Closed { .. } => Admission::Serve,
            BreakerState::HalfOpen => {
                // A probe is already in flight; keep shedding until its
                // outcome lands (the probe itself reports the cooldown
                // as the hint — deterministic, not clock-derived).
                Admission::Shed {
                    retry_after_ms: policy.cooldown.as_millis() as u64,
                }
            }
            BreakerState::Open { since } => {
                let elapsed = since.elapsed();
                if elapsed >= policy.cooldown {
                    *state = BreakerState::HalfOpen;
                    Admission::Probe
                } else {
                    let remaining = policy.cooldown - elapsed;
                    Admission::Shed {
                        // Round up so a client sleeping exactly the hint
                        // lands after the cooldown, not just short of it.
                        retry_after_ms: remaining.as_millis() as u64 + 1,
                    }
                }
            }
        }
    }

    /// Records a handler failure for `tenant`. Returns `true` when this
    /// failure opened (or re-opened) the breaker — the caller emits the
    /// `serve.breaker-open` counter on that edge.
    pub fn note_failure(&self, tenant: &str) -> bool {
        let policy = self.policy();
        if policy.threshold == 0 {
            return false;
        }
        let mut tenants = lock(&self.tenants);
        let state = tenants
            .entry(tenant.to_string())
            .or_insert(BreakerState::Closed { failures: 0 });
        match state {
            BreakerState::Closed { failures } => {
                *failures += 1;
                if *failures >= policy.threshold {
                    *state = BreakerState::Open {
                        since: Instant::now(),
                    };
                    return true;
                }
                false
            }
            // The half-open probe failed: re-open for a fresh cooldown.
            BreakerState::HalfOpen => {
                *state = BreakerState::Open {
                    since: Instant::now(),
                };
                true
            }
            BreakerState::Open { .. } => false,
        }
    }

    /// Records a handler success for `tenant`: closes a half-open
    /// breaker, resets a closed one's failure run.
    pub fn note_success(&self, tenant: &str) {
        if !self.enabled() {
            return;
        }
        let mut tenants = lock(&self.tenants);
        if let Some(state) = tenants.get_mut(tenant) {
            match state {
                BreakerState::Closed { failures } => *failures = 0,
                BreakerState::HalfOpen => *state = BreakerState::Closed { failures: 0 },
                // A success racing an open breaker (admitted before it
                // opened) does not close it; the probe decides.
                BreakerState::Open { .. } => {}
            }
        }
    }

    /// Per-tenant breaker states for the `health` method, in tenant
    /// order.
    pub fn statuses(&self) -> Vec<BreakerStatus> {
        let policy = self.policy();
        lock(&self.tenants)
            .iter()
            .map(|(tenant, state)| {
                let (state_name, failures, retry_after_ms) = match state {
                    BreakerState::Closed { failures } => ("closed", u64::from(*failures), 0),
                    BreakerState::HalfOpen => ("half-open", u64::from(policy.threshold), 0),
                    BreakerState::Open { since } => {
                        let remaining = policy.cooldown.saturating_sub(since.elapsed());
                        (
                            "open",
                            u64::from(policy.threshold),
                            remaining.as_millis() as u64,
                        )
                    }
                };
                BreakerStatus {
                    tenant: tenant.clone(),
                    state: state_name.to_string(),
                    consecutive_failures: failures,
                    retry_after_ms,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(threshold: u32, cooldown_ms: u64) -> BreakerPolicy {
        BreakerPolicy {
            threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        }
    }

    #[test]
    fn disabled_registry_always_serves() {
        let reg = BreakerRegistry::default();
        assert_eq!(reg.admit("t"), Admission::Serve);
        assert!(!reg.note_failure("t"));
        assert_eq!(reg.admit("t"), Admission::Serve);
        assert!(reg.statuses().is_empty());
    }

    #[test]
    fn consecutive_failures_open_then_probe_closes() {
        let reg = BreakerRegistry::default();
        reg.set_policy(policy(2, 10));
        assert!(!reg.note_failure("t"));
        assert_eq!(reg.admit("t"), Admission::Serve);
        assert!(reg.note_failure("t"), "second failure opens");
        match reg.admit("t") {
            Admission::Shed { retry_after_ms } => assert!(retry_after_ms >= 1),
            other => panic!("expected shed, got {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(reg.admit("t"), Admission::Probe);
        // While the probe is out, further requests shed.
        assert!(matches!(reg.admit("t"), Admission::Shed { .. }));
        reg.note_success("t");
        assert_eq!(reg.admit("t"), Admission::Serve);
        assert_eq!(reg.statuses()[0].state, "closed");
    }

    #[test]
    fn failed_probe_reopens() {
        let reg = BreakerRegistry::default();
        reg.set_policy(policy(1, 10));
        assert!(reg.note_failure("t"));
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(reg.admit("t"), Admission::Probe);
        assert!(reg.note_failure("t"), "failed probe re-opens");
        assert!(matches!(reg.admit("t"), Admission::Shed { .. }));
        assert_eq!(reg.statuses()[0].state, "open");
    }

    #[test]
    fn success_resets_a_failure_run() {
        let reg = BreakerRegistry::default();
        reg.set_policy(policy(2, 10));
        assert!(!reg.note_failure("t"));
        reg.note_success("t");
        assert!(!reg.note_failure("t"), "run restarted, not continued");
        assert_eq!(reg.admit("t"), Admission::Serve);
    }

    #[test]
    fn tenants_are_isolated() {
        let reg = BreakerRegistry::default();
        reg.set_policy(policy(1, 1000));
        assert!(reg.note_failure("bad"));
        assert!(matches!(reg.admit("bad"), Admission::Shed { .. }));
        assert_eq!(reg.admit("good"), Admission::Serve);
    }
}
