//! The line-JSON-over-TCP transport (DESIGN.md §13).
//!
//! One request per line, one response line per request, deterministic
//! key order. Admission control is a bounded queue: the accept loop
//! `try_send`s each connection to a fixed worker pool and sheds with an
//! `overloaded` error response when the queue is full — memory stays
//! bounded no matter how fast clients arrive.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;

use wfms_proto::{Request, Response, ERR_BAD_REQUEST, ERR_OVERLOADED, METHOD_SHUTDOWN};

use crate::handler::Handler;

/// Options of one `wfms serve` run.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to bind, e.g. `127.0.0.1:7414`. Port `0` picks a free
    /// port; the ready line reports the actual address.
    pub listen: String,
    /// Warm tenant engines kept at most (LRU-evicted beyond this).
    pub tenants: usize,
    /// Bounded connection-queue capacity; connections arriving while it
    /// is full are shed with an `overloaded` response.
    pub queue_depth: usize,
    /// Worker threads serving admitted connections.
    pub workers: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            listen: "127.0.0.1:7414".to_string(),
            tenants: 8,
            queue_depth: 64,
            workers: 4,
        }
    }
}

/// A daemon-level failure (the per-request failures travel back to the
/// client as typed error responses instead).
#[derive(Debug)]
pub enum ServeError {
    /// The listen address could not be bound (already in use, bad
    /// address, …). A second daemon on the same port fails here — the
    /// duplicate-bind refusal.
    Bind {
        /// The requested listen address.
        addr: String,
        /// The OS error text.
        message: String,
    },
    /// Writing the ready line or stop line failed.
    Io {
        /// The OS error text.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, message } => {
                write!(f, "cannot listen on {addr}: {message}")
            }
            ServeError::Io { message } => write!(f, "serve i/o error: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// State shared between the accept loop and the workers.
struct Shared {
    handler: Handler,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// Locks a mutex, riding through poisoning (a panicking worker must not
/// wedge the daemon).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs the daemon until a `shutdown` request arrives. Writes the ready
/// line (`wfms serve: listening on <addr> …`) to `out` once the socket
/// is bound, and a stop line after a graceful shutdown.
///
/// The global `wfms-obs` recorder is reset and enabled for the process
/// lifetime, so the `metrics` method serves live counters (notably the
/// engine's `engine.cache-hit`).
///
/// # Errors
/// [`ServeError::Bind`] when the address cannot be bound;
/// [`ServeError::Io`] when the ready/stop lines cannot be written.
pub fn serve(opts: &ServeOptions, out: &mut impl Write) -> Result<(), ServeError> {
    let listener = TcpListener::bind(&opts.listen).map_err(|e| ServeError::Bind {
        addr: opts.listen.clone(),
        message: e.to_string(),
    })?;
    let addr = listener.local_addr().map_err(|e| ServeError::Bind {
        addr: opts.listen.clone(),
        message: e.to_string(),
    })?;
    let tenants = opts.tenants.max(1);
    let queue_depth = opts.queue_depth.max(1);
    let workers = opts.workers.max(1);

    wfms_obs::global().reset();
    wfms_obs::enable();

    let shared = Arc::new(Shared {
        handler: Handler::new(tenants),
        shutdown: AtomicBool::new(false),
        addr,
    });
    shared
        .handler
        .queue()
        .configure(queue_depth as u64, workers as u64);

    writeln!(
        out,
        "wfms serve: listening on {addr} (tenants {tenants}, queue {queue_depth}, workers {workers})"
    )
    .and_then(|()| out.flush())
    .map_err(|e| ServeError::Io {
        message: e.to_string(),
    })?;

    let (tx, rx) = sync_channel::<TcpStream>(queue_depth);
    let rx = Arc::new(Mutex::new(rx));
    let mut pool = Vec::with_capacity(workers);
    for _ in 0..workers {
        let shared = Arc::clone(&shared);
        let rx = Arc::clone(&rx);
        pool.push(thread::spawn(move || loop {
            // Standard shared-receiver pattern: the lock is held only
            // while blocked in `recv`; serving happens unlocked.
            let conn = lock(&rx).recv();
            match conn {
                Ok(stream) => {
                    shared.handler.queue().dequeued();
                    serve_connection(&shared, stream);
                }
                Err(_) => break,
            }
        }));
    }

    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        match tx.try_send(stream) {
            Ok(()) => shared.handler.queue().enqueued(),
            Err(TrySendError::Full(stream)) => {
                shared.handler.queue().shed();
                shed(stream);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }

    // Closing the sender lets each worker's `recv` fail once the queue
    // drains; join so in-flight responses finish before exit.
    drop(tx);
    for worker in pool {
        let _ = worker.join();
    }
    writeln!(out, "wfms serve: stopped")
        .and_then(|()| out.flush())
        .map_err(|e| ServeError::Io {
            message: e.to_string(),
        })?;
    Ok(())
}

/// Serves every request line on one admitted connection.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let Ok(clone) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(clone);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<Request>(&line) {
            Ok(request) => {
                let response = shared.handler.handle(&request);
                if request.method == METHOD_SHUTDOWN && response.ok {
                    // Honor the stop before attempting the ack: a
                    // client that disconnects right after asking for
                    // shutdown must still get one.
                    shared.shutdown.store(true, Ordering::SeqCst);
                    drop(write_line(&mut writer, &response));
                    // The accept loop is blocked in `accept`; a
                    // self-connection wakes it so it observes the flag.
                    drop(TcpStream::connect(shared.addr));
                    return;
                }
                if write_line(&mut writer, &response).is_err() {
                    return;
                }
            }
            Err(e) => {
                let response = Response::failure_for_id(
                    None,
                    ERR_BAD_REQUEST,
                    format!("malformed request line: {e}"),
                );
                if write_line(&mut writer, &response).is_err() {
                    return;
                }
            }
        }
    }
}

/// Sheds a connection the bounded queue had no room for: one
/// `overloaded` error line, then the connection closes. The client is
/// expected to back off and retry.
fn shed(mut stream: TcpStream) {
    let response = Response::failure_for_id(
        None,
        ERR_OVERLOADED,
        "connection queue is full; retry later",
    );
    drop(write_line(&mut stream, &response));
}

/// Writes one response as a compact JSON line.
fn write_line(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let text = serde_json::to_string(response)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    stream.write_all(text.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}
