//! The line-JSON-over-TCP transport (DESIGN.md §13).
//!
//! One request per line, one response line per request, deterministic
//! key order. Admission control is a bounded queue: the accept loop
//! `try_send`s each connection to a fixed worker pool and sheds with an
//! `overloaded` error response when the queue is full — memory stays
//! bounded no matter how fast clients arrive.
//!
//! On top of that sits the resilience layer (DESIGN.md §13, resilience
//! contract):
//!
//! * **I/O deadlines** — every connection reads and writes under
//!   timeouts, request lines are length-bounded (typed `bad-request`
//!   beyond the cap), and a slow-loris client dribbling a line is timed
//!   out by an overall per-line deadline, so no client can pin a worker.
//! * **A worker watchdog** — each connection is served inside
//!   `catch_unwind`; a panicking request is contained, counted
//!   (`serve.worker-panic`), and the worker rejoins the pool at full
//!   strength. An optional per-request compute deadline abandons an
//!   overrunning handler and answers `deadline-exceeded`.
//! * **Off-thread shedding** — `overloaded` responses are written by a
//!   dedicated shed thread under a short write timeout, so a shed
//!   client that never reads cannot stall admission
//!   (`serve.shed-undelivered` counts the ones that never got the
//!   response).
//! * **Accept-error backoff** — transient accept failures are counted
//!   (`serve.accept-error`) and retried under bounded exponential
//!   backoff instead of being silently swallowed.
//! * **Graceful drain** — shutdown stops accepting, finishes in-flight
//!   work up to `--drain-timeout`, and sheds the rest with a typed
//!   `unavailable` response.
//!
//! All of it is off the clean path: with no fault injected and no
//! deadline tripped, responses and the ready/stop lines are
//! byte-identical to the pre-resilience daemon.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, sync_channel, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use wfms_proto::{
    Request, Response, ERR_BAD_REQUEST, ERR_DEADLINE_EXCEEDED, ERR_OVERLOADED, ERR_UNAVAILABLE,
    METHOD_SHUTDOWN,
};

use crate::handler::Handler;
use crate::resilience::BreakerPolicy;

/// Options of one `wfms serve` run.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to bind, e.g. `127.0.0.1:7414`. Port `0` picks a free
    /// port; the ready line reports the actual address.
    pub listen: String,
    /// Warm tenant engines kept at most (LRU-evicted beyond this).
    pub tenants: usize,
    /// Bounded connection-queue capacity; connections arriving while it
    /// is full are shed with an `overloaded` response.
    pub queue_depth: usize,
    /// Worker threads serving admitted connections.
    pub workers: usize,
    /// Idle-connection limit: a connection quiet for longer is closed.
    /// Also the per-syscall write timeout.
    pub io_timeout: Duration,
    /// Overall deadline to receive one full request line once its first
    /// byte arrived (the slow-loris guard).
    pub line_timeout: Duration,
    /// Maximum request-line length; longer lines are rejected with a
    /// typed `bad-request` and the connection closes.
    pub max_line_bytes: usize,
    /// Per-request compute deadline: an overrunning handler is
    /// abandoned and answered with `deadline-exceeded`. `None` (the
    /// default) disables the deadline — the clean path spawns no
    /// per-request thread.
    pub request_deadline: Option<Duration>,
    /// Consecutive handler failures that open a tenant's circuit
    /// breaker; `0` disables breakers.
    pub breaker_threshold: u32,
    /// Open-breaker cooldown before the half-open probe is admitted.
    pub breaker_cooldown: Duration,
    /// After shutdown, in-flight work may finish for at most this long;
    /// connections still queued past the deadline are shed typed.
    pub drain_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            listen: "127.0.0.1:7414".to_string(),
            tenants: 8,
            queue_depth: 64,
            workers: 4,
            io_timeout: Duration::from_secs(30),
            line_timeout: Duration::from_secs(60),
            max_line_bytes: 16 * 1024 * 1024,
            request_deadline: None,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_millis(1000),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// A daemon-level failure (the per-request failures travel back to the
/// client as typed error responses instead).
#[derive(Debug)]
pub enum ServeError {
    /// The listen address could not be bound (already in use, bad
    /// address, …). A second daemon on the same port fails here — the
    /// duplicate-bind refusal.
    Bind {
        /// The requested listen address.
        addr: String,
        /// The OS error text.
        message: String,
    },
    /// Writing the ready line or stop line failed.
    Io {
        /// The OS error text.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, message } => {
                write!(f, "cannot listen on {addr}: {message}")
            }
            ServeError::Io { message } => write!(f, "serve i/o error: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// How long the shed thread will wait on a client that never reads its
/// `overloaded` response before giving up on it.
const SHED_WRITE_TIMEOUT: Duration = Duration::from_millis(1000);

/// Pending sheds the shed thread will buffer; beyond this, shed
/// connections are dropped undelivered (and counted).
const SHED_QUEUE_DEPTH: usize = 32;

/// Per-syscall read-poll granularity: short enough that drain and
/// deadline checks stay responsive, invisible to well-behaved clients.
const READ_POLL: Duration = Duration::from_millis(250);

/// Consecutive accept failures tolerated before the daemon gives up
/// (a persistent accept error means the socket is gone).
const MAX_ACCEPT_FAILURES: u32 = 100;

/// State shared between the accept loop and the workers.
struct Shared {
    handler: Handler,
    shutdown: AtomicBool,
    addr: SocketAddr,
    io_timeout: Duration,
    line_timeout: Duration,
    max_line_bytes: usize,
    request_deadline: Option<Duration>,
    drain_timeout: Duration,
    drain_deadline: Mutex<Option<Instant>>,
}

impl Shared {
    /// Begins the drain phase (idempotent): the handler reports
    /// `draining` and in-flight work gets until the deadline.
    fn start_drain(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.handler.set_draining(true);
        let mut deadline = lock(&self.drain_deadline);
        if deadline.is_none() {
            *deadline = Some(Instant::now() + self.drain_timeout);
        }
    }

    /// True once the drain deadline has passed (never true before the
    /// drain started).
    fn past_drain_deadline(&self) -> bool {
        lock(&self.drain_deadline).is_some_and(|d| Instant::now() >= d)
    }
}

/// Locks a mutex, riding through poisoning (a panicking worker must not
/// wedge the daemon).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs the daemon until a `shutdown` request arrives. Writes the ready
/// line (`wfms serve: listening on <addr> …`) to `out` once the socket
/// is bound, and a stop line after a graceful shutdown.
///
/// The global `wfms-obs` recorder is reset and enabled for the process
/// lifetime, so the `metrics` method serves live counters (notably the
/// engine's `engine.cache-hit`).
///
/// # Errors
/// [`ServeError::Bind`] when the address cannot be bound;
/// [`ServeError::Io`] when the ready/stop lines cannot be written.
pub fn serve(opts: &ServeOptions, out: &mut impl Write) -> Result<(), ServeError> {
    let listener = TcpListener::bind(&opts.listen).map_err(|e| ServeError::Bind {
        addr: opts.listen.clone(),
        message: e.to_string(),
    })?;
    let addr = listener.local_addr().map_err(|e| ServeError::Bind {
        addr: opts.listen.clone(),
        message: e.to_string(),
    })?;
    let tenants = opts.tenants.max(1);
    let queue_depth = opts.queue_depth.max(1);
    let workers = opts.workers.max(1);

    wfms_obs::global().reset();
    wfms_obs::enable();

    let handler = Handler::new(tenants);
    handler.set_breaker_policy(BreakerPolicy {
        threshold: opts.breaker_threshold,
        cooldown: opts.breaker_cooldown,
    });
    let shared = Arc::new(Shared {
        handler,
        shutdown: AtomicBool::new(false),
        addr,
        io_timeout: opts.io_timeout,
        line_timeout: opts.line_timeout,
        max_line_bytes: opts.max_line_bytes.max(1),
        request_deadline: opts.request_deadline,
        drain_timeout: opts.drain_timeout,
        drain_deadline: Mutex::new(None),
    });
    shared
        .handler
        .queue()
        .configure(queue_depth as u64, workers as u64);

    writeln!(
        out,
        "wfms serve: listening on {addr} (tenants {tenants}, queue {queue_depth}, workers {workers})"
    )
    .and_then(|()| out.flush())
    .map_err(|e| ServeError::Io {
        message: e.to_string(),
    })?;

    // The shed lane: `overloaded` responses are written off the accept
    // thread under a short write timeout, so a shed client that never
    // reads cannot stall admission for everyone else.
    let (shed_tx, shed_rx) = sync_channel::<TcpStream>(SHED_QUEUE_DEPTH);
    let shed_thread = thread::spawn(move || {
        while let Ok(stream) = shed_rx.recv() {
            if shed(stream).is_err() {
                wfms_obs::counter("serve.shed-undelivered", 1);
            }
        }
    });

    let (tx, rx) = sync_channel::<TcpStream>(queue_depth);
    let rx = Arc::new(Mutex::new(rx));
    let mut pool = Vec::with_capacity(workers);
    for _ in 0..workers {
        let shared = Arc::clone(&shared);
        let rx = Arc::clone(&rx);
        pool.push(thread::spawn(move || loop {
            // Standard shared-receiver pattern: the lock is held only
            // while blocked in `recv`; serving happens unlocked.
            let conn = lock(&rx).recv();
            match conn {
                Ok(stream) => {
                    shared.handler.queue().dequeued();
                    // The watchdog: a panicking request (e.g. the
                    // `serve.handle` error fault) is contained here, so
                    // the pool never shrinks — the worker rejoins at
                    // full strength for the next connection.
                    let outcome =
                        catch_unwind(AssertUnwindSafe(|| serve_connection(&shared, stream)));
                    if outcome.is_err() {
                        shared.handler.note_worker_panic();
                    }
                }
                Err(_) => break,
            }
        }));
    }

    let mut accept_failures: u32 = 0;
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(stream) => {
                accept_failures = 0;
                stream
            }
            Err(_) => {
                // Transient accept failures (EMFILE, ECONNABORTED, …)
                // are counted and retried under bounded backoff instead
                // of being silently swallowed; a persistent run means
                // the socket is gone and the daemon drains.
                wfms_obs::counter("serve.accept-error", 1);
                accept_failures += 1;
                if accept_failures >= MAX_ACCEPT_FAILURES {
                    break;
                }
                let shift = accept_failures.min(7);
                thread::sleep(Duration::from_millis(1u64 << shift));
                continue;
            }
        };
        match tx.try_send(stream) {
            Ok(()) => shared.handler.queue().enqueued(),
            Err(TrySendError::Full(stream)) => {
                shared.handler.queue().shed();
                if shed_tx.try_send(stream).is_err() {
                    // The shed lane itself is saturated: close the
                    // connection without a response rather than block.
                    wfms_obs::counter("serve.shed-undelivered", 1);
                }
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }

    // Drain: stop accepting, let in-flight work finish up to the drain
    // deadline (workers shed connections they pick up past it), then
    // join so every delivered response is flushed before exit.
    shared.start_drain();
    drop(tx);
    drop(shed_tx);
    for worker in pool {
        let _ = worker.join();
    }
    let _ = shed_thread.join();
    writeln!(out, "wfms serve: stopped")
        .and_then(|()| out.flush())
        .map_err(|e| ServeError::Io {
            message: e.to_string(),
        })?;
    Ok(())
}

/// Outcome of reading one request line under the I/O deadlines.
enum ReadOutcome {
    /// A complete line (without its terminator).
    Line(String),
    /// Clean end of stream, a connection error, or an injected
    /// `serve.read` fault — close without a response.
    Closed,
    /// The line exceeded `max_line_bytes`.
    TooLong,
    /// The idle or per-line deadline expired.
    TimedOut {
        /// Which deadline fired, for the diagnostic message.
        what: &'static str,
        /// The deadline that was exceeded.
        limit: Duration,
    },
    /// The daemon is draining and no request is in flight on this
    /// connection — close quietly.
    Draining,
}

/// A length-bounded, deadline-aware line reader. Reads with a short
/// poll timeout so drain and deadline checks stay responsive; carries
/// leftover bytes across calls so pipelined requests are preserved.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    max_line_bytes: usize,
    /// When the first byte of the pending line arrived (the slow-loris
    /// clock); `None` while the buffer is empty.
    line_start: Option<Instant>,
}

impl LineReader {
    fn new(stream: TcpStream, max_line_bytes: usize) -> LineReader {
        LineReader {
            stream,
            buf: Vec::new(),
            max_line_bytes,
            line_start: None,
        }
    }

    /// Pops a complete line off the buffer, if one is there.
    fn pop_line(&mut self) -> Option<String> {
        let nl = self.buf.iter().position(|&b| b == b'\n')?;
        let mut line: Vec<u8> = self.buf.drain(..=nl).collect();
        line.pop(); // the \n
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        self.line_start = if self.buf.is_empty() {
            None
        } else {
            Some(Instant::now())
        };
        Some(String::from_utf8_lossy(&line).into_owned())
    }

    /// Reads the next request line under the connection's deadlines.
    fn read_line(&mut self, shared: &Shared) -> ReadOutcome {
        if wfms_fault::point!("serve.read").is_some() {
            // An injected read fault behaves like a torn connection.
            return ReadOutcome::Closed;
        }
        if let Some(line) = self.pop_line() {
            return ReadOutcome::Line(line);
        }
        let idle_start = Instant::now();
        let mut chunk = [0u8; 4096];
        loop {
            if shared.handler.is_draining() {
                if self.buf.is_empty() {
                    // Idle between requests: nothing in flight to finish.
                    return ReadOutcome::Draining;
                }
                if shared.past_drain_deadline() {
                    return ReadOutcome::Draining;
                }
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadOutcome::Closed,
                Ok(n) => {
                    if self.buf.is_empty() {
                        self.line_start = Some(Instant::now());
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                    if let Some(line) = self.pop_line() {
                        return ReadOutcome::Line(line);
                    }
                    if self.buf.len() > self.max_line_bytes {
                        return ReadOutcome::TooLong;
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if self.buf.is_empty() {
                        if idle_start.elapsed() >= shared.io_timeout {
                            return ReadOutcome::TimedOut {
                                what: "idle connection",
                                limit: shared.io_timeout,
                            };
                        }
                    } else if self
                        .line_start
                        .is_some_and(|s| s.elapsed() >= shared.line_timeout)
                    {
                        return ReadOutcome::TimedOut {
                            what: "request line",
                            limit: shared.line_timeout,
                        };
                    }
                }
                Err(_) => return ReadOutcome::Closed,
            }
        }
    }
}

/// Serves every request line on one admitted connection.
fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    if shared.handler.is_draining() && shared.past_drain_deadline() {
        // Queued behind the drain deadline: shed typed instead of
        // serving work the shutdown no longer has time for.
        let mut writer = stream;
        let _ = writer.set_write_timeout(Some(SHED_WRITE_TIMEOUT));
        let response = Response::failure_for_id(
            None,
            ERR_UNAVAILABLE,
            "server is draining; connection shed past the drain deadline",
        );
        drop(write_line(&mut writer, &response));
        return;
    }
    let Ok(clone) = stream.try_clone() else {
        return;
    };
    // I/O deadlines: short read polls (the reader enforces the real
    // idle/line deadlines), bounded writes.
    drop(clone.set_read_timeout(Some(READ_POLL)));
    let mut writer = stream;
    drop(writer.set_write_timeout(Some(shared.io_timeout)));
    let mut reader = LineReader::new(clone, shared.max_line_bytes);
    loop {
        let line = match reader.read_line(shared) {
            ReadOutcome::Line(line) => line,
            ReadOutcome::Closed | ReadOutcome::Draining => return,
            ReadOutcome::TooLong => {
                let response = Response::failure_for_id(
                    None,
                    ERR_BAD_REQUEST,
                    format!(
                        "request line exceeds {} bytes; the connection is closed",
                        shared.max_line_bytes
                    ),
                );
                drop(write_line(&mut writer, &response));
                return;
            }
            ReadOutcome::TimedOut { what, limit } => {
                let response = Response::failure_for_id(
                    None,
                    ERR_BAD_REQUEST,
                    format!("{what} timed out after {}ms", limit.as_millis()),
                );
                drop(write_line(&mut writer, &response));
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<Request>(&line) {
            Ok(request) => {
                let response = handle_request(shared, &request);
                if request.method == METHOD_SHUTDOWN && response.ok {
                    // Honor the stop before attempting the ack: a
                    // client that disconnects right after asking for
                    // shutdown must still get one.
                    shared.start_drain();
                    drop(write_line(&mut writer, &response));
                    // The accept loop is blocked in `accept`; a
                    // self-connection wakes it so it observes the flag.
                    drop(TcpStream::connect(shared.addr));
                    return;
                }
                if write_line(&mut writer, &response).is_err() {
                    return;
                }
            }
            Err(e) => {
                let response = Response::failure_for_id(
                    None,
                    ERR_BAD_REQUEST,
                    format!("malformed request line: {e}"),
                );
                if write_line(&mut writer, &response).is_err() {
                    return;
                }
            }
        }
    }
}

/// Dispatches one request, honoring the `serve.handle` fault site and
/// the optional per-request compute deadline.
fn handle_request(shared: &Arc<Shared>, request: &Request) -> Response {
    // The error mode of `serve.handle` panics on purpose: it is the
    // deterministic trigger for the worker watchdog (delay mode simply
    // slows the handler, which is what trips the compute deadline).
    if wfms_fault::point!("serve.handle").is_some() {
        panic!("injected handler panic (serve.handle)");
    }
    let Some(deadline) = shared.request_deadline else {
        return shared.handler.handle(request);
    };
    let (tx, rx) = channel();
    let worker_shared = Arc::clone(shared);
    let worker_request = request.clone();
    let spawned = thread::Builder::new()
        .name("wfms-serve-deadline".to_string())
        .spawn(move || {
            let response = worker_shared.handler.handle(&worker_request);
            let _ = tx.send(response);
        });
    if spawned.is_err() {
        // Thread exhaustion: serve inline rather than fail the request.
        return shared.handler.handle(request);
    }
    match rx.recv_timeout(deadline) {
        Ok(response) => response,
        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
            wfms_obs::counter("serve.deadline-exceeded", 1);
            let tenant = request.tenant.as_deref().unwrap_or("default");
            shared.handler.charge_breaker_failure(tenant);
            Response::failure(
                request,
                ERR_DEADLINE_EXCEEDED,
                format!(
                    "request exceeded the {}ms compute deadline",
                    deadline.as_millis()
                ),
            )
        }
    }
}

/// Sheds a connection the bounded queue had no room for: one
/// `overloaded` error line under a short write timeout, then the
/// connection closes. The client is expected to back off and retry.
fn shed(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_write_timeout(Some(SHED_WRITE_TIMEOUT))?;
    let response = Response::failure_for_id(
        None,
        ERR_OVERLOADED,
        "connection queue is full; retry later",
    );
    write_line(&mut stream, &response)
}

/// Writes one response as a compact JSON line.
fn write_line(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    if wfms_fault::point!("serve.write").is_some() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            "injected write fault (serve.write)",
        ));
    }
    let text = serde_json::to_string(response)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    stream.write_all(text.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}
